//! Contract tests for every baseline imputer, run through the shared
//! `Imputer` trait object exactly as the bench harness uses them.

use pristi_suite::st_baselines::batf::BatfImputer;
use pristi_suite::st_baselines::brits::{BritsConfig, BritsImputer};
use pristi_suite::st_baselines::gpvae::{GpvaeConfig, GpvaeImputer};
use pristi_suite::st_baselines::grin::{GrinConfig, GrinImputer};
use pristi_suite::st_baselines::kalman::KalmanImputer;
use pristi_suite::st_baselines::mice::MiceImputer;
use pristi_suite::st_baselines::rgain::{RgainConfig, RgainImputer};
use pristi_suite::st_baselines::simple::{
    DailyAverageImputer, KnnImputer, LinearImputer, MeanImputer,
};
use pristi_suite::st_baselines::trmf::TrmfImputer;
use pristi_suite::st_baselines::var::VarImputer;
use pristi_suite::st_baselines::vrin::{VrinConfig, VrinImputer};
use pristi_suite::st_baselines::{visible, Imputer, ProbabilisticImputer};
use pristi_suite::st_data::generators::{generate_air_quality, AirQualityConfig};
use pristi_suite::st_data::missing::inject_point_missing;
use pristi_suite::st_data::SpatioTemporalDataset;

fn dataset() -> SpatioTemporalDataset {
    let mut d = generate_air_quality(&AirQualityConfig {
        n_nodes: 6,
        n_days: 6,
        seed: 9,
        ..Default::default()
    });
    d.eval_mask = inject_point_missing(&d.observed_mask, 0.2, 10);
    d
}

fn all_imputers() -> Vec<Box<dyn Imputer>> {
    let deep = |w: usize| (3usize, w, w); // (epochs, window, stride)
    let (e, w, s) = deep(12);
    vec![
        Box::new(MeanImputer),
        Box::new(DailyAverageImputer),
        Box::new(KnnImputer::default()),
        Box::new(LinearImputer),
        Box::new(KalmanImputer::default()),
        Box::new(MiceImputer::default()),
        Box::new(VarImputer::default()),
        Box::new(TrmfImputer { iters: 4, ..Default::default() }),
        Box::new(BatfImputer { iters: 3, ..Default::default() }),
        Box::new(BritsImputer::new(BritsConfig {
            epochs: e,
            window_len: w,
            window_stride: s,
            hidden: 8,
            ..Default::default()
        })),
        Box::new(GrinImputer::new(GrinConfig {
            epochs: e,
            window_len: w,
            window_stride: s,
            hidden: 8,
            ..Default::default()
        })),
        Box::new(RgainImputer::new(RgainConfig {
            epochs: e,
            window_len: w,
            window_stride: s,
            hidden: 8,
            ..Default::default()
        })),
        Box::new(VrinImputer::new(VrinConfig {
            epochs: e,
            window_len: w,
            window_stride: s,
            hidden: 8,
            latent: 4,
            ..Default::default()
        })),
        Box::new(GpvaeImputer::new(GpvaeConfig {
            epochs: e,
            window_len: w,
            window_stride: s,
            hidden: 8,
            latent: 4,
            ..Default::default()
        })),
    ]
}

/// Every imputer must fill every position with finite values and must never
/// alter a visible value.
#[test]
fn every_imputer_fills_finite_and_preserves_visible() {
    let d = dataset();
    let (vals, mask) = visible(&d);
    for mut imp in all_imputers() {
        let panel = imp.fit_impute(&d);
        assert_eq!(panel.shape(), d.values.shape(), "{} shape", imp.name());
        assert!(
            panel.data().iter().all(|v| v.is_finite()),
            "{} produced non-finite values",
            imp.name()
        );
        for i in 0..panel.numel() {
            if mask.data()[i] > 0.0 {
                assert_eq!(
                    panel.data()[i],
                    vals.data()[i],
                    "{} altered a visible value at {i}",
                    imp.name()
                );
            }
        }
    }
}

/// Names are unique and stable (the bench tables key on them).
#[test]
fn imputer_names_unique() {
    let names: Vec<&str> = all_imputers().iter().map(|i| i.name()).collect();
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate imputer names: {names:?}");
}

/// Probabilistic imputers produce the requested number of finite sample
/// panels with actual spread at hidden positions.
#[test]
fn probabilistic_imputers_sample_properly() {
    let d = dataset();
    let mut vrin = VrinImputer::new(VrinConfig {
        epochs: 3,
        window_len: 12,
        window_stride: 12,
        hidden: 8,
        latent: 4,
        ..Default::default()
    });
    let mut gpvae = GpvaeImputer::new(GpvaeConfig {
        epochs: 3,
        window_len: 12,
        window_stride: 12,
        hidden: 8,
        latent: 4,
        ..Default::default()
    });
    let probs: Vec<&mut dyn ProbabilisticImputer> = vec![&mut vrin, &mut gpvae];
    for p in probs {
        let samples = p.sample_ensemble(&d, 3, 42);
        assert_eq!(samples.len(), 3, "{}", p.name());
        for s in &samples {
            assert!(s.data().iter().all(|v| v.is_finite()), "{}", p.name());
        }
        let spread = samples[0]
            .data()
            .iter()
            .zip(samples[1].data())
            .zip(d.eval_mask.data())
            .filter(|&((_, _), &m)| m > 0.0)
            .map(|((a, b), _)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(spread > 1e-6, "{} ensemble has no spread", p.name());
    }
}
