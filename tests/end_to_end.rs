//! Cross-crate integration tests: the full pipeline from synthetic data
//! through training to evaluated imputation, exercising every workspace
//! crate together at smoke scale.

use pristi_suite::pristi_core::train::{train, MaskStrategyKind, TrainConfig};
use pristi_suite::pristi_core::{impute, ImputeOptions, ModelVariant, PristiConfig, Sampler};
use pristi_suite::st_baselines::simple::LinearImputer;
use pristi_suite::st_baselines::{evaluate_panel, visible, Imputer};
use pristi_suite::st_data::dataset::Split;
use pristi_suite::st_data::generators::{generate_air_quality, AirQualityConfig};
use pristi_suite::st_data::missing::inject_point_missing;
use pristi_suite::st_metrics::masked_mae;
use st_rand::StdRng;
use st_rand::SeedableRng;

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 16;
    c.heads = 4;
    c.layers = 1;
    c.t_steps = 16;
    c.time_emb_dim = 16;
    c.node_emb_dim = 4;
    c.step_emb_dim = 16;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

fn tiny_dataset(seed: u64) -> pristi_suite::st_data::SpatioTemporalDataset {
    // episode-free panel: smooth and learnable at smoke budgets
    let mut d = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 12,
        seed,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, seed + 1);
    d
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 40,
        batch_size: 4,
        lr: 2e-3,
        window_len: 12,
        window_stride: 6,
        strategy: MaskStrategyKind::Point,
        seed: 3,
        ..Default::default()
    }
}

/// Training must strictly improve imputation over the untrained model
/// (whose zero-initialised head makes the reverse process emit pure noise),
/// and the trained model must beat naive zero-filling. Paper-level method
/// orderings are asserted in the bench harness where budgets allow.
#[test]
fn training_improves_imputation_end_to_end() {
    let data = tiny_dataset(100);
    let tc = train_cfg();
    let trained = train(&data, tiny_cfg(), &tc).unwrap();
    let untrained = train(&data, tiny_cfg(), &TrainConfig { epochs: 0, ..tc.clone() }).unwrap();

    let impute_mae = |model: &pristi_suite::pristi_core::TrainedModel| -> f64 {
        let (mut panel, mask) = visible(&data);
        let mut rng = StdRng::seed_from_u64(5);
        let (s, e) = data.split_range(Split::Test);
        let n = data.n_nodes();
        let mut t0 = s;
        while t0 + 12 <= e {
            let w = data.window_at(t0, 12);
            let res = impute(
                model,
                &w,
                &ImputeOptions { n_samples: 8, sampler: Sampler::Ddpm },
                &mut rng,
            )
            .unwrap();
            let med = res.median();
            for l in 0..12 {
                for i in 0..n {
                    let idx = (t0 + l) * n + i;
                    if mask.data()[idx] == 0.0 {
                        panel.data_mut()[idx] = med.at(&[i, l]);
                    }
                }
            }
            t0 += 12;
        }
        evaluate_panel(&data, &panel, Split::Test).mae()
    };

    let mae_trained = impute_mae(&trained);
    let mae_untrained = impute_mae(&untrained);
    assert!(
        mae_trained < mae_untrained,
        "training should improve imputation: trained {mae_trained:.2} vs untrained {mae_untrained:.2}"
    );
    // zero-fill in raw units is far off the data scale (PM2.5-like values)
    let (zero_panel, _) = visible(&data);
    let mae_zero = evaluate_panel(&data, &zero_panel, Split::Test).mae();
    assert!(
        mae_trained < mae_zero,
        "trained model {mae_trained:.2} should beat zero-fill {mae_zero:.2}"
    );
}

/// Training stability contract at smoke scale: both the full model and the
/// mix-STI ablation train without divergence. (The ε-prediction loss is not
/// a clean quality signal at tiny budgets — the small-t steps have an
/// irreducible noise-amplified floor — so quality comparisons live in the
/// bench harness, not here.)
#[test]
fn pristi_and_mix_sti_train_stably() {
    let data = tiny_dataset(200);
    let tc = TrainConfig { epochs: 10, ..train_cfg() };
    for variant in [ModelVariant::Pristi, ModelVariant::MixSti] {
        let trained = train(&data, tiny_cfg().with_variant(variant), &tc).unwrap();
        for (e, &l) in trained.epoch_losses.iter().enumerate() {
            assert!(l.is_finite(), "{variant:?} diverged at epoch {e}");
            assert!(l < 1.6, "{variant:?} loss {l:.3} at epoch {e} above the noise floor band");
        }
    }
}

/// Checkpoint round-trip: parameters survive serialisation and produce
/// identical predictions.
#[test]
fn checkpoint_round_trip_preserves_predictions() {
    use pristi_suite::st_tensor::{NdArray, ParamStore};
    let data = tiny_dataset(300);
    let trained = train(&data, tiny_cfg(), &TrainConfig { epochs: 2, ..train_cfg() }).unwrap();
    let blob = trained.model.store.to_bytes();
    let restored = ParamStore::from_bytes(&blob).expect("checkpoint parses");
    assert_eq!(restored.numel(), trained.model.store.numel());
    for (name, value) in trained.model.store.iter() {
        assert_eq!(restored.get(name), Some(value), "parameter {name} changed");
    }
    // predictions from the restored store must match
    let mut rng = StdRng::seed_from_u64(4);
    let noisy = NdArray::randn(&[1, 8, 12], &mut rng);
    let cond = NdArray::randn(&[1, 8, 12], &mut rng);
    let before = trained.model.predict_eps_eval(&noisy, &cond, 3);
    // rebuild model around restored store by swapping in place
    let mut model2 = train(&data, tiny_cfg(), &TrainConfig { epochs: 0, ..train_cfg() }).unwrap();
    model2.model.store = restored;
    let after = model2.model.predict_eps_eval(&noisy, &cond, 3);
    assert_eq!(before, after);
}

/// Interpolation (the conditioner) must agree with the Lin-ITP baseline on
/// the same inputs — they share one implementation by design.
#[test]
fn conditioner_and_linitp_agree() {
    let data = tiny_dataset(400);
    let panel = LinearImputer.fit_impute(&data);
    // manual per-window interpolation through the same code path
    let (vals, mask) = visible(&data);
    let vt = vals.transpose2d();
    let mt = mask.transpose2d();
    let manual = pristi_suite::st_data::linear_interpolate(&vt, &mt, 0.0).transpose2d();
    for (i, (&a, &b)) in panel.data().iter().zip(manual.data()).enumerate() {
        if mask.data()[i] == 0.0 {
            assert!((a - b).abs() < 1e-6, "conditioner/baseline disagree at {i}");
        }
    }
}

/// Probabilistic imputation is better-than-trivially calibrated: the 5–95 %
/// band covers well above half of the hidden truths.
#[test]
fn quantile_band_covers_majority_of_truths() {
    let data = tiny_dataset(500);
    let trained = train(&data, tiny_cfg(), &train_cfg()).unwrap();
    let w = &data.windows(Split::Test, 12, 12)[0];
    let mut rng = StdRng::seed_from_u64(6);
    let res = impute(
        &trained,
        w,
        &ImputeOptions { n_samples: 16, sampler: Sampler::Ddpm },
        &mut rng,
    )
    .unwrap();
    let q05 = res.quantile(0.05);
    let q95 = res.quantile(0.95);
    let mut inside = 0.0;
    let mut total = 0.0;
    for i in 0..w.values.numel() {
        if w.eval.data()[i] > 0.0 {
            total += 1.0;
            if w.values.data()[i] >= q05.data()[i] && w.values.data()[i] <= q95.data()[i] {
                inside += 1.0;
            }
        }
    }
    assert!(total > 0.0);
    assert!(
        inside / total > 0.5,
        "5-95% band covers only {:.0}% of hidden truths",
        100.0 * inside / total
    );
}

/// Metrics sanity across crates: imputing the exact truth gives MAE 0 and
/// maximal CRPS sharpness.
#[test]
fn perfect_imputation_scores_zero() {
    let data = tiny_dataset(600);
    let err = evaluate_panel(&data, &data.values, Split::Test);
    assert_eq!(err.mae(), 0.0);
    assert_eq!(err.mse(), 0.0);
    let window = &data.windows(Split::Test, 12, 12)[0];
    let mae = masked_mae(window.values.data(), window.values.data(), window.eval.data());
    assert_eq!(mae, 0.0);
}
