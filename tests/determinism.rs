//! End-to-end determinism contract for the hermetic workspace.
//!
//! With every random draw routed through the in-repo `st-rand` generator,
//! a fixed `TrainConfig::seed` must make the entire pipeline — data
//! generation, training, and probabilistic imputation — bitwise
//! reproducible, and a different seed must actually change the results.

use pristi_suite::pristi_core::train::{train, MaskStrategyKind, Reporter, TrainConfig};
use pristi_suite::pristi_core::{impute, ImputeOptions, PristiConfig, Sampler, TrainedModel};
use pristi_suite::st_data::generators::{generate_air_quality, AirQualityConfig};
use pristi_suite::st_data::missing::inject_point_missing;
use pristi_suite::st_data::SpatioTemporalDataset;
use st_rand::SeedableRng;
use st_rand::StdRng;

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 2;
    c.adaptive_dim = 2;
    c
}

fn tiny_dataset() -> SpatioTemporalDataset {
    let mut d = generate_air_quality(&AirQualityConfig {
        n_nodes: 5,
        n_days: 4,
        seed: 7,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    d.eval_mask = inject_point_missing(&d.observed_mask, 0.2, 8);
    d
}

fn train_cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 2,
        lr: 1e-3,
        window_len: 8,
        window_stride: 8,
        strategy: MaskStrategyKind::Point,
        seed,
        ..Default::default()
    }
}

/// Run the short pipeline: train, then impute one window with `imp_seed`.
fn run(train_seed: u64, imp_seed: u64) -> (TrainedModel, Vec<f64>, Vec<f32>) {
    let data = tiny_dataset();
    let trained = train(&data, tiny_cfg(), &train_cfg(train_seed)).unwrap();
    let w = data.window_at(0, 8);
    let mut rng = StdRng::seed_from_u64(imp_seed);
    let res = impute(
        &trained,
        &w,
        &ImputeOptions { n_samples: 4, sampler: Sampler::Ddpm },
        &mut rng,
    )
    .unwrap();
    let losses = trained.epoch_losses.clone();
    let samples = res.samples_flat();
    (trained, losses, samples)
}

#[test]
fn same_seed_is_bitwise_identical() {
    let (m1, losses1, samples1) = run(42, 9);
    let (m2, losses2, samples2) = run(42, 9);

    // losses compare as raw bits — "close" is not good enough
    assert_eq!(losses1.len(), losses2.len());
    for (e, (a, b)) in losses1.iter().zip(&losses2).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch {e} loss differs: {a} vs {b}");
    }

    // every learned parameter is bitwise identical
    assert_eq!(m1.model.store.to_bytes(), m2.model.store.to_bytes());

    // and so is every imputation sample
    assert_eq!(samples1.len(), samples2.len());
    for (i, (a, b)) in samples1.iter().zip(&samples2).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "sample value {i} differs: {a} vs {b}");
    }
}

#[test]
fn different_train_seed_changes_results() {
    let (_, losses1, _) = run(1, 9);
    let (_, losses2, _) = run(2, 9);
    assert_ne!(losses1, losses2, "distinct training seeds must give distinct loss curves");
}

/// The `Reporter::Jsonl` telemetry stream is part of the determinism
/// contract: two same-seed runs must produce byte-identical JSONL once the
/// wall-clock fields (`t_ns`, `wps`, …) are stripped with
/// [`st_obs::strip_timing`]. The writer is per-run (its own file and epoch),
/// so this test is independent of any globally installed recorder.
#[test]
fn same_seed_jsonl_reports_identical_after_timing_strip() {
    let dir = std::env::temp_dir();
    let paths = [
        dir.join(format!("pristi_det_report_a_{}.jsonl", std::process::id())),
        dir.join(format!("pristi_det_report_b_{}.jsonl", std::process::id())),
    ];
    let data = tiny_dataset();
    for p in &paths {
        let mut tc = train_cfg(42);
        tc.reporter = Reporter::Jsonl(p.clone());
        train(&data, tiny_cfg(), &tc).unwrap();
    }
    let a = std::fs::read_to_string(&paths[0]).unwrap();
    let b = std::fs::read_to_string(&paths[1]).unwrap();
    let (a_lines, b_lines): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    // header + one epoch event per epoch
    assert_eq!(a_lines.len(), 1 + train_cfg(42).epochs);
    assert_eq!(a_lines.len(), b_lines.len());
    for (i, (x, y)) in a_lines.iter().zip(&b_lines).enumerate() {
        let sx = st_obs::strip_timing(x).unwrap_or_else(|e| panic!("line {i}: {e}"));
        let sy = st_obs::strip_timing(y).unwrap_or_else(|e| panic!("line {i}: {e}"));
        assert_eq!(sx, sy, "JSONL line {i} differs between same-seed runs");
    }
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn different_imputation_seed_changes_samples() {
    let data = tiny_dataset();
    let trained = train(&data, tiny_cfg(), &train_cfg(5)).unwrap();
    let w = data.window_at(0, 8);
    let s1 = {
        let mut rng = StdRng::seed_from_u64(1);
        impute(&trained, &w, &ImputeOptions { n_samples: 4, sampler: Sampler::Ddpm }, &mut rng)
            .unwrap()
            .samples_flat()
    };
    let s2 = {
        let mut rng = StdRng::seed_from_u64(2);
        impute(&trained, &w, &ImputeOptions { n_samples: 4, sampler: Sampler::Ddpm }, &mut rng)
            .unwrap()
            .samples_flat()
    };
    assert_ne!(s1, s2, "distinct sampling seeds must give distinct imputations");
}
