//! End-to-end observability smoke test: install a global `st-obs` recorder,
//! run a tiny train + impute pipeline, and validate the resulting JSONL
//! telemetry stream — schema, parseability, span coverage, op-kind coverage,
//! wall-clock attribution, and (timing aside) byte-for-byte determinism.
//!
//! The recorder is process-global, so every test here serialises behind one
//! mutex; this file is its own test binary, so other test processes are
//! unaffected (no recorder is installed there, and the disabled fast path is
//! inert).

use pristi_suite::pristi_core::train::{train, MaskStrategyKind, TrainConfig};
use pristi_suite::pristi_core::{impute, ImputeOptions, PristiConfig, Sampler, TrainedModel};
use pristi_suite::st_data::generators::{generate_air_quality, AirQualityConfig};
use pristi_suite::st_data::missing::inject_point_missing;
use pristi_suite::st_data::SpatioTemporalDataset;
use st_obs::json::Json;
use st_rand::SeedableRng;
use st_rand::StdRng;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Serialise every test in this binary: the st-obs recorder is process-global.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 2;
    c.adaptive_dim = 2;
    c
}

fn tiny_dataset() -> SpatioTemporalDataset {
    let mut d = generate_air_quality(&AirQualityConfig {
        n_nodes: 5,
        n_days: 4,
        seed: 7,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    d.eval_mask = inject_point_missing(&d.observed_mask, 0.2, 8);
    d
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 2,
        lr: 1e-3,
        window_len: 8,
        window_stride: 8,
        strategy: MaskStrategyKind::Point,
        seed: 42,
        ..Default::default()
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pristi_obs_smoke_{tag}_{}.jsonl", std::process::id()))
}

/// Train + impute one window under an installed recorder writing to `path`.
/// Returns `(line count after the post-train flush, trained model)` so
/// callers can split the stream into a train part and an impute part.
fn run_recorded(path: &PathBuf) -> (usize, TrainedModel) {
    run_recorded_with_threads(path, 0)
}

/// [`run_recorded`] with an explicit `st-par` pool size (`TrainConfig::
/// threads`, which `train` applies process-wide — the imputation after it
/// runs at the same setting).
fn run_recorded_with_threads(path: &PathBuf, threads: usize) -> (usize, TrainedModel) {
    let data = tiny_dataset();
    let guard = st_obs::install(vec![Box::new(st_obs::JsonlSink::create(path).unwrap())]);
    let trained = train(&data, tiny_cfg(), &TrainConfig { threads, ..train_cfg() }).unwrap();
    // Aggregated op stats are emitted as deltas at each flush: everything up
    // to this line count is training telemetry, the rest is imputation.
    st_obs::flush();
    let train_lines = std::fs::read_to_string(path).unwrap().lines().count();
    let w = data.window_at(0, 8);
    let mut rng = StdRng::seed_from_u64(9);
    let _ = impute(
        &trained,
        &w,
        &ImputeOptions { n_samples: 4, sampler: Sampler::Ddpm },
        &mut rng,
    )
    .unwrap();
    drop(guard);
    (train_lines, trained)
}

fn parse_lines(path: &PathBuf) -> Vec<Json> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(|l| st_obs::json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect()
}

fn str_field<'a>(e: &'a Json, key: &str) -> &'a str {
    e.get(key).and_then(Json::as_str).unwrap_or_else(|| panic!("missing {key:?} in {e:?}"))
}

#[test]
fn telemetry_stream_covers_the_whole_pipeline() {
    let _g = lock();
    let path = temp_path("coverage");
    let (train_lines, _) = run_recorded(&path);
    let events = parse_lines(&path);
    assert!(train_lines > 1 && train_lines < events.len(), "flush split point must be interior");

    // Header first, schema-versioned.
    assert_eq!(str_field(&events[0], "ev"), "header");
    assert_eq!(str_field(&events[0], "schema"), st_obs::SCHEMA);

    // Monotonic relative timestamps over the whole stream.
    let mut last = 0u64;
    for e in &events {
        let t = e.get("t_ns").and_then(Json::as_u64).expect("t_ns on every event");
        assert!(t >= last, "t_ns must be monotonic");
        last = t;
    }

    // Epoch events: one per epoch, strictly increasing epoch numbers, sane fields.
    let epochs: Vec<&Json> = events.iter().filter(|e| str_field(e, "ev") == "epoch").collect();
    assert_eq!(epochs.len(), train_cfg().epochs, "one epoch event per epoch");
    for (i, e) in epochs.iter().enumerate() {
        assert_eq!(e.get("epoch").and_then(Json::as_u64), Some(i as u64));
        let loss = e.get("loss").and_then(Json::as_f64).expect("loss field");
        assert!(loss.is_finite() && loss > 0.0, "epoch {i} loss {loss}");
        assert!(e.get("grad_norm").and_then(Json::as_f64).expect("grad_norm") > 0.0);
        assert!(e.get("lr").and_then(Json::as_f64).expect("lr") > 0.0);
        assert!(e.get("wps").and_then(Json::as_f64).expect("wps") > 0.0);
    }

    // Span coverage: every level of the stack shows up, with nested paths.
    let span_names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| str_field(e, "ev") == "span")
        .map(|e| str_field(e, "name"))
        .collect();
    for name in [
        "train", "epoch", "train_step", "batch_prep", "forward", "backward", "optimizer",
        "impute", "denoise_step",
    ] {
        assert!(span_names.contains(name), "missing span {name:?}; saw {span_names:?}");
    }
    assert!(
        events.iter().any(|e| str_field(e, "ev") == "span"
            && str_field(e, "path") == "train/epoch/train_step/forward"),
        "span paths must nest"
    );

    // Op-kind coverage: every expected (phase, kind) pair appears at least once.
    let op_keys: std::collections::BTreeSet<(String, String)> = events
        .iter()
        .filter(|e| str_field(e, "ev") == "op")
        .map(|e| (str_field(e, "phase").to_string(), str_field(e, "kind").to_string()))
        .collect();
    let expect_fwd = [
        "input", "param", "add", "scale", "matmul", "batch_matmul", "batch_matmul_transb",
        "shared_left_matmul", "permute", "reshape", "concat_last", "softmax_last", "relu",
        "mse_masked", "attention_qk", "mpnn", "q_sample", "p_sample_step",
    ];
    for kind in expect_fwd {
        assert!(
            op_keys.contains(&("fwd".to_string(), kind.to_string())),
            "missing fwd op kind {kind:?}; saw {op_keys:?}"
        );
    }
    for kind in ["add", "batch_matmul", "softmax_last", "relu", "mse_masked"] {
        assert!(
            op_keys.contains(&("bwd".to_string(), kind.to_string())),
            "missing bwd op kind {kind:?}"
        );
    }
    for kind in ["adam_step", "clip_grad_norm"] {
        assert!(
            op_keys.contains(&("opt".to_string(), kind.to_string())),
            "missing opt op kind {kind:?}"
        );
    }

    // Every op aggregate carries calls and element counts.
    for e in events.iter().filter(|e| str_field(e, "ev") == "op") {
        assert!(e.get("calls").and_then(Json::as_u64).expect("calls") > 0);
        assert!(e.get("elements").and_then(Json::as_u64).is_some());
    }

    // st-obs/2 span tree: unique sids, self time bounded by duration, and
    // every `parent` id refers to a span that was actually emitted.
    let mut sids = std::collections::BTreeSet::new();
    for e in events.iter().filter(|e| str_field(e, "ev") == "span") {
        let sid = e.get("sid").and_then(Json::as_u64).expect("sid on every span");
        assert!(sids.insert(sid), "duplicate span id {sid}");
        let dur = e.get("dur_ns").and_then(Json::as_u64).expect("dur_ns");
        let self_ns = e.get("self_ns").and_then(Json::as_u64).expect("self_ns");
        assert!(self_ns <= dur, "self_ns {self_ns} > dur_ns {dur}");
    }
    for e in events.iter().filter(|e| str_field(e, "ev") == "span") {
        if let Some(parent) = e.get("parent").and_then(Json::as_u64) {
            assert!(sids.contains(&parent), "span parent {parent} never emitted");
        }
    }

    let _ = std::fs::remove_file(&path);
}

/// The aggregated per-op timings must explain the bulk of the wall-clock the
/// forward / backward / optimizer spans measure. The composite kinds
/// (`attention_qk`, `mpnn`) deliberately overlap the primitives inside them,
/// so they are excluded from the attribution sum. The bound here is
/// conservative (tiny tensors make tape bookkeeping relatively expensive and
/// CI machines are noisy); at realistic model sizes attribution is ≥ 90 %.
#[test]
fn op_timings_attribute_span_wall_clock() {
    let _g = lock();
    let path = temp_path("attribution");
    let (train_lines, _) = run_recorded(&path);
    let events = parse_lines(&path);
    let train_events = &events[..train_lines];

    let span_ns: u64 = train_events
        .iter()
        .filter(|e| str_field(e, "ev") == "span")
        .filter(|e| {
            let p = str_field(e, "path");
            p.ends_with("/forward") || p.ends_with("/backward") || p.ends_with("/optimizer")
        })
        .map(|e| e.get("dur_ns").and_then(Json::as_u64).expect("dur_ns"))
        .sum();
    let op_ns: u64 = train_events
        .iter()
        .filter(|e| str_field(e, "ev") == "op")
        .filter(|e| !matches!(str_field(e, "kind"), "attention_qk" | "mpnn" | "q_sample"))
        .map(|e| e.get("total_ns").and_then(Json::as_u64).expect("total_ns"))
        .sum();
    assert!(span_ns > 0, "forward/backward/optimizer spans must be measured");
    let ratio = op_ns as f64 / span_ns as f64;
    assert!(
        ratio > 0.5,
        "op timings attribute only {:.1}% of fwd/bwd/opt span wall-clock",
        100.0 * ratio
    );

    let _ = std::fs::remove_file(&path);
}

/// Two same-seed recorded runs must produce byte-identical streams once the
/// timing fields (`*_ns`, `wps`) are stripped: event order, counts, losses,
/// op aggregates and element totals are all deterministic.
#[test]
fn same_seed_streams_identical_after_timing_strip() {
    let _g = lock();
    let p1 = temp_path("det_a");
    let p2 = temp_path("det_b");
    run_recorded(&p1);
    run_recorded(&p2);
    let a = std::fs::read_to_string(&p1).unwrap();
    let b = std::fs::read_to_string(&p2).unwrap();
    let a_lines: Vec<&str> = a.lines().collect();
    let b_lines: Vec<&str> = b.lines().collect();
    assert_eq!(a_lines.len(), b_lines.len(), "same-seed runs must emit the same event count");
    for (i, (x, y)) in a_lines.iter().zip(&b_lines).enumerate() {
        let sx = st_obs::strip_timing(x).unwrap_or_else(|e| panic!("line {i}: {e}"));
        let sy = st_obs::strip_timing(y).unwrap_or_else(|e| panic!("line {i}: {e}"));
        assert_eq!(sx, sy, "line {i} differs after timing strip:\nA: {x}\nB: {y}");
    }
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}

/// The stripped stream must be invariant not just across same-seed runs but
/// across `st-par` pool sizes: telemetry is aggregated and flushed in sorted
/// order precisely so that 1-thread and 4-thread runs emit the same events
/// in the same order (only the values inside timing fields may differ).
#[test]
fn streams_identical_across_thread_counts_after_timing_strip() {
    let _g = lock();
    let p1 = temp_path("thr1");
    let p4 = temp_path("thr4");
    run_recorded_with_threads(&p1, 1);
    run_recorded_with_threads(&p4, 4);
    let a = std::fs::read_to_string(&p1).unwrap();
    let b = std::fs::read_to_string(&p4).unwrap();
    let a_lines: Vec<&str> = a.lines().collect();
    let b_lines: Vec<&str> = b.lines().collect();
    assert_eq!(
        a_lines.len(),
        b_lines.len(),
        "1-thread and 4-thread runs must emit the same event count"
    );
    for (i, (x, y)) in a_lines.iter().zip(&b_lines).enumerate() {
        let sx = st_obs::strip_timing(x).unwrap_or_else(|e| panic!("line {i}: {e}"));
        let sy = st_obs::strip_timing(y).unwrap_or_else(|e| panic!("line {i}: {e}"));
        assert_eq!(sx, sy, "line {i} differs across thread counts:\n1: {x}\n4: {y}");
    }
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p4);
}

/// Request-scoped tracing through the serving stack: every submitted request
/// gets a `trace` event linking its request trace to the batch trace, the
/// worker's `serve_batch` span carries that batch trace, and so do the
/// `denoise_step` spans of the imputation run inside the batch.
#[test]
fn serve_requests_carry_trace_ids_into_denoise_steps() {
    let _g = lock();
    let data = tiny_dataset();
    let trained = train(&data, tiny_cfg(), &train_cfg()).unwrap();
    let path = temp_path("serve_trace");
    {
        let _guard = st_obs::install(vec![Box::new(st_obs::JsonlSink::create(&path).unwrap())]);
        let service = st_serve::ImputeService::start(
            trained,
            st_serve::ServeConfig { workers: 1, base_seed: 3, ..Default::default() },
        )
        .unwrap();
        for id in [5001u64, 5002] {
            let w = data.window_at(0, 8);
            service
                .submit(st_serve::ImputeRequest {
                    id,
                    window: w,
                    n_samples: 2,
                    sampler: Sampler::Ddpm,
                    tier: st_serve::AdmissionTier::Interactive,
                    deadline: None,
                })
                .unwrap();
        }
        service.shutdown();
    }
    let events = parse_lines(&path);

    let traces: Vec<&Json> = events.iter().filter(|e| str_field(e, "ev") == "trace").collect();
    assert_eq!(traces.len(), 2, "one trace link event per request");
    let mut request_traces = std::collections::BTreeSet::new();
    for (expected_id, e) in [5001u64, 5002].iter().zip(&traces) {
        assert_eq!(e.get("request").and_then(Json::as_u64), Some(*expected_id));
        let req_trace = e.get("trace").and_then(Json::as_u64).expect("request trace id");
        let batch_trace = e.get("batch").and_then(Json::as_u64).expect("batch trace id");
        assert!(request_traces.insert(req_trace), "request trace ids must be unique");
        let batch_spans: Vec<&Json> = events
            .iter()
            .filter(|s| {
                str_field(s, "ev") == "span"
                    && str_field(s, "name") == "serve_batch"
                    && s.get("trace").and_then(Json::as_u64) == Some(batch_trace)
            })
            .collect();
        assert_eq!(batch_spans.len(), 1, "exactly one serve_batch span per batch trace");
        let denoise_in_batch = events.iter().any(|s| {
            str_field(s, "ev") == "span"
                && str_field(s, "name") == "denoise_step"
                && s.get("trace").and_then(Json::as_u64) == Some(batch_trace)
        });
        assert!(denoise_in_batch, "denoise_step spans must carry the batch trace id");
    }
    let _ = std::fs::remove_file(&path);
}

/// With no recorder installed, training must run exactly as before — the
/// disabled fast path must not change results (guards the "near-zero overhead
/// when disabled" contract at the behavioural level).
#[test]
fn disabled_recorder_changes_nothing() {
    let _g = lock();
    let data = tiny_dataset();
    assert!(!st_obs::is_enabled());
    let quiet = train(&data, tiny_cfg(), &train_cfg()).unwrap();
    let path = temp_path("inert");
    {
        let _guard = st_obs::install(vec![Box::new(st_obs::JsonlSink::create(&path).unwrap())]);
        let recorded = train(&data, tiny_cfg(), &train_cfg()).unwrap();
        assert_eq!(
            quiet.model.store.to_bytes(),
            recorded.model.store.to_bytes(),
            "recording must not perturb training"
        );
    }
    let _ = std::fs::remove_file(&path);
}
