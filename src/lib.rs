//! # pristi-suite
//!
//! Umbrella crate for the PriSTI-rs workspace: re-exports the public
//! surfaces of every member crate so the examples and the workspace-level
//! integration tests (`tests/`) have one import root.
//!
//! See the individual crates for the real APIs:
//! [`st_tensor`], [`st_graph`], [`st_data`], [`st_metrics`], [`st_diffusion`],
//! [`pristi_core`], [`st_baselines`], [`st_forecast`].

pub use pristi_core;
pub use st_baselines;
pub use st_data;
pub use st_diffusion;
pub use st_forecast;
pub use st_graph;
pub use st_metrics;
pub use st_tensor;
