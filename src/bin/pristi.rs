//! `pristi` — command-line spatiotemporal imputation on CSV files.
//!
//! ```text
//! pristi generate --kind aqi --out panel.csv --coords-out coords.csv
//! pristi impute   --data panel.csv --coords coords.csv --out imputed.csv \
//!                 [--epochs 30] [--samples 16] [--window 24] [--ddim 8] \
//!                 [--quantiles lo.csv,hi.csv] [--steps-per-day 24]
//! ```
//!
//! `impute` trains PriSTI on the visible values of the panel (self-supervised
//! re-masking, Algorithm 1), imputes every missing cell, and writes the
//! completed panel back as CSV. With `--quantiles` it also writes the 5 % and
//! 95 % ensemble quantiles for uncertainty-aware downstream use.

use pristi_core::train::{train, MaskStrategyKind, Reporter, TrainConfig};
use pristi_core::{impute_window, impute_window_fast, PristiConfig};
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_baselines::visible;
use st_data::generators::{generate_air_quality, generate_traffic, AirQualityConfig, TrafficConfig};
use st_data::io::{load_dataset, panel_to_csv};
use st_data::SpatioTemporalDataset;
use st_tensor::NdArray;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("impute") => run_impute(parse_flags(&args[1..])),
        Some("generate") => run_generate(parse_flags(&args[1..])),
        _ => {
            eprintln!("usage: pristi <impute|generate> [--flag value]...");
            eprintln!("  pristi generate --kind aqi|metr-la|pems-bay --out panel.csv --coords-out coords.csv");
            eprintln!("  pristi impute --data panel.csv --coords coords.csv --out imputed.csv");
            eprintln!("                [--epochs N] [--samples S] [--window L] [--ddim K]");
            eprintln!("                [--steps-per-day N] [--quantiles lo.csv,hi.csv] [--seed N]");
            ExitCode::from(2)
        }
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        eprintln!("warning: ignoring stray argument `{}`", args[i]);
        i += 1;
    }
    out
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn run_generate(flags: HashMap<String, String>) -> ExitCode {
    let kind = flags.get("kind").map(String::as_str).unwrap_or("aqi");
    let out = flags.get("out").map(String::as_str).unwrap_or("panel.csv");
    let coords_out = flags.get("coords-out").map(String::as_str).unwrap_or("coords.csv");
    let seed = get_usize(&flags, "seed", 2023) as u64;
    let data: SpatioTemporalDataset = match kind {
        "aqi" => generate_air_quality(&AirQualityConfig { seed, n_days: 28, ..Default::default() }),
        "metr-la" => generate_traffic(&TrafficConfig { seed, ..TrafficConfig::metr_la() }),
        "pems-bay" => generate_traffic(&TrafficConfig { seed, ..TrafficConfig::pems_bay() }),
        other => {
            eprintln!("unknown --kind `{other}` (expected aqi|metr-la|pems-bay)");
            return ExitCode::from(2);
        }
    };
    let sensors: Vec<String> = (0..data.n_nodes()).map(|i| format!("s{i}")).collect();
    // write panel with original missing as empty cells
    let (t, n) = (data.n_steps(), data.n_nodes());
    let mut csv = String::from("time");
    for s in &sensors {
        csv.push(',');
        csv.push_str(s);
    }
    csv.push('\n');
    for ti in 0..t {
        csv.push_str(&ti.to_string());
        for i in 0..n {
            let idx = ti * n + i;
            if data.observed_mask.data()[idx] > 0.0 {
                csv.push_str(&format!(",{:.4}", data.values.data()[idx]));
            } else {
                csv.push(',');
            }
        }
        csv.push('\n');
    }
    let mut coords = String::from("sensor,x,y\n");
    for (i, c) in data.graph.coords.iter().enumerate() {
        coords.push_str(&format!("s{i},{:.4},{:.4}\n", c.x, c.y));
    }
    if let Err(e) = std::fs::write(out, csv).and_then(|_| std::fs::write(coords_out, coords)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "generated {kind}-like panel: {t} steps x {n} sensors -> {out}, coordinates -> {coords_out}"
    );
    ExitCode::SUCCESS
}

fn run_impute(flags: HashMap<String, String>) -> ExitCode {
    let Some(data_path) = flags.get("data") else {
        eprintln!("--data <panel.csv> is required");
        return ExitCode::from(2);
    };
    let Some(coords_path) = flags.get("coords") else {
        eprintln!("--coords <coords.csv> is required");
        return ExitCode::from(2);
    };
    let out_path = flags.get("out").map(String::as_str).unwrap_or("imputed.csv");
    let steps_per_day = get_usize(&flags, "steps-per-day", 24);
    let epochs = get_usize(&flags, "epochs", 30);
    let n_samples = get_usize(&flags, "samples", 16);
    let window = get_usize(&flags, "window", 24);
    let ddim = flags.get("ddim").and_then(|v| v.parse::<usize>().ok());
    let seed = get_usize(&flags, "seed", 7) as u64;

    let data = match load_dataset(Path::new(data_path), Path::new(coords_path), steps_per_day) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("failed to load dataset: {e}");
            return ExitCode::FAILURE;
        }
    };
    let missing = 1.0
        - data.observed_mask.data().iter().map(|&v| v as f64).sum::<f64>()
            / data.observed_mask.numel() as f64;
    println!(
        "loaded {}: {} steps x {} sensors, {:.1}% missing",
        data.name,
        data.n_steps(),
        data.n_nodes(),
        100.0 * missing
    );
    if data.n_steps() < 2 * window {
        eprintln!("panel too short for --window {window}");
        return ExitCode::FAILURE;
    }

    let mut cfg = PristiConfig::small();
    cfg.virtual_nodes = cfg.virtual_nodes.min(data.n_nodes());
    let tc = TrainConfig {
        epochs,
        window_len: window,
        window_stride: (window / 2).max(1),
        strategy: MaskStrategyKind::HybridBlock,
        seed,
        reporter: Reporter::Stderr,
        ..Default::default()
    };
    println!("training PriSTI ({epochs} epochs, window {window})...");
    let trained = train(&data, cfg, &tc);
    println!("trained {} parameters", trained.model.n_params());

    // Impute the whole panel window by window.
    let (mut panel, mask) = visible(&data);
    let mut lo = panel.clone();
    let mut hi = panel.clone();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let (t_len, n) = (data.n_steps(), data.n_nodes());
    let mut starts: Vec<usize> = (0..=(t_len - window)).step_by(window).collect();
    if starts.last() != Some(&(t_len - window)) {
        starts.push(t_len - window);
    }
    for (wi, &t0) in starts.iter().enumerate() {
        let w = data.window_at(t0, window);
        let res = match ddim {
            Some(k) => impute_window_fast(&trained, &w, n_samples, k, &mut rng),
            None => impute_window(&trained, &w, n_samples, &mut rng),
        };
        let med = res.median();
        let q05 = res.quantile(0.05);
        let q95 = res.quantile(0.95);
        write_window(&mut panel, &mask, &med, t0, n, window);
        write_window(&mut lo, &mask, &q05, t0, n, window);
        write_window(&mut hi, &mask, &q95, t0, n, window);
        println!("  window {}/{} imputed", wi + 1, starts.len());
    }

    let sensors: Vec<String> = panel_sensor_names(data_path, n);
    if let Err(e) = std::fs::write(out_path, panel_to_csv(&panel, &sensors)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("imputed panel -> {out_path}");
    if let Some(q) = flags.get("quantiles") {
        if let Some((lo_path, hi_path)) = q.split_once(',') {
            let r = std::fs::write(lo_path, panel_to_csv(&lo, &sensors))
                .and_then(|_| std::fs::write(hi_path, panel_to_csv(&hi, &sensors)));
            match r {
                Ok(()) => println!("quantile bands -> {lo_path}, {hi_path}"),
                Err(e) => {
                    eprintln!("quantile write failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!("--quantiles expects `lo.csv,hi.csv`");
        }
    }
    ExitCode::SUCCESS
}

fn write_window(panel: &mut NdArray, mask: &NdArray, win: &NdArray, t0: usize, n: usize, l: usize) {
    for li in 0..l {
        for i in 0..n {
            let idx = (t0 + li) * n + i;
            if mask.data()[idx] == 0.0 {
                panel.data_mut()[idx] = win.data()[i * l + li];
            }
        }
    }
}

fn panel_sensor_names(path: &str, n: usize) -> Vec<String> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| {
            let header = text.lines().next()?.to_string();
            let names: Vec<String> =
                header.split(',').skip(1).map(|s| s.trim().to_string()).collect();
            (names.len() == n).then_some(names)
        })
        .unwrap_or_else(|| (0..n).map(|i| format!("s{i}")).collect())
}
