//! `pristi` — command-line spatiotemporal imputation on CSV files.
//!
//! ```text
//! pristi generate --kind aqi --out panel.csv --coords-out coords.csv
//! pristi impute   --data panel.csv --coords coords.csv --out imputed.csv \
//!                 [--epochs 30] [--samples 16] [--window 24] \
//!                 [--sampler SPEC | --ddim 8] \
//!                 [--quantiles lo.csv,hi.csv] [--steps-per-day 24]
//! pristi checkpoint save        --data panel.csv --coords coords.csv --out model.ckpt \
//!                               [--epochs 30] [--window 24] [--seed N] [--steps-per-day 24]
//! pristi checkpoint load-verify --ckpt model.ckpt
//! pristi serve    --ckpt model.ckpt [--samples 8] [--sampler SPEC | --ddim K] \
//!                 [--batch 32] [--deadline-ms 30000] [--seed N] [--workers N]
//! pristi serve    --stream --ckpt model.ckpt [--samples 8] [--sampler SPEC] \
//!                 [--horizon H] [--seed N] [--workers N]
//! pristi loadtest [--seed N] [--clients C] [--requests R] [--workers 1,4] \
//!                 [--out BENCH_serve.json] [--ckpt model.ckpt] [--quick] [--stream]
//! pristi profile  [--seed N] [--out PROFILE.json] [--folded PROFILE_folded.txt] [--quick]
//! pristi bench    --compare OLD,NEW [--threshold-pct P]
//! pristi bench    --sweep [--quick] [--seed N] [--out results/steps_vs_crps.csv]
//! pristi bench    --filter <substr> [--quick] [--json]
//! ```
//!
//! `impute` trains PriSTI on the visible values of the panel (self-supervised
//! re-masking, Algorithm 1), imputes every missing cell, and writes the
//! completed panel back as CSV. With `--quantiles` it also writes the 5 % and
//! 95 % ensemble quantiles for uncertainty-aware downstream use.
//!
//! `checkpoint save` trains the same way and persists the model as an
//! `st-ckpt/1` file; `checkpoint load-verify` proves a file parses, verifies
//! its checksum, and rebuilds the model. `serve` loads a checkpoint into a
//! micro-batching [`st_serve::ImputeService`] and answers JSONL requests from
//! stdin with one JSON response per line on stdout:
//!
//! ```text
//! request:  {"id": 1, "values": [[1.0, null, ...], ...N rows of L cells...],
//!            "n_samples": 8, "ddim_steps": 4}
//! response: {"id": 1, "ok": true, "median": [[...]], "q05": [[...]], "q95": [[...]]}
//! failure:  {"id": 1, "ok": false, "error": {"kind": "shape_mismatch",
//!            "detail": "shape mismatch for ...", "line": 1}}
//! ```
//!
//! Failures share one typed shape across request and stream modes:
//! `error.kind` is the stable machine-readable label
//! ([`pristi_core::PristiError::kind`] for service errors, `bad_json` /
//! `bad_request` for parse failures), `error.detail` the human-readable
//! message, and `error.line` the 1-based stdin line that caused it.
//!
//! `serve --stream` switches the same binary into sliding-window streaming:
//! JSONL *ticks* in (one column of sensor readings per line), revised
//! quantiles for still-open gaps out, with the conditional prior updated
//! incrementally between ticks — see [`st_serve::stream`] for the wire
//! format and README §Streaming for a runnable example.
//!
//! `null` cells are the missing values to impute; a `"sampler"` spec string
//! (`"ddpm"`, `"ddim:K[:ETA]"`, `"pndm:K[:ORDER]"`, `"refine:K[:STRENGTH]"` —
//! the same grammar as the `--sampler` flag) picks the reverse-process solver
//! per request, with the older `"ddim_steps": K` integer kept as an alias for
//! `"ddim:K"` (and an optional `"tier"` of `"interactive"` or `"best_effort"`
//! selects the admission-control tier). Requests batch together exactly when
//! their sampler specs are equal. Responses reproduce bit-for-bit for the
//! same checkpoint, `--seed`, and request `id`, regardless of batching or
//! `--workers` count.
//!
//! `loadtest` drives the same service with a seeded closed-loop schedule and
//! writes `BENCH_serve.json` (see the [`loadtest`] module docs).

use pristi_core::train::{train, MaskStrategyKind, Reporter, TrainConfig};
use pristi_core::{impute, ImputeOptions, PristiConfig, Sampler};
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_baselines::visible;
use st_data::dataset::Window;
use st_data::generators::{generate_air_quality, generate_traffic, AirQualityConfig, TrafficConfig};
use st_data::io::{load_dataset, panel_to_csv};
use st_data::SpatioTemporalDataset;
use st_obs::json::{self, Json};
use st_serve::stream::error_line;
use st_serve::{
    load_checkpoint, run_stream, save_checkpoint, AdmissionTier, ImputeRequest, ImputeService,
    ServeConfig, StreamConfig, StreamServerConfig,
};
use st_tensor::NdArray;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

// A crate root's submodules resolve beside it (`src/bin/`), where any `.rs`
// file would be auto-discovered as another binary — park it a level down.
#[path = "pristi/loadtest.rs"]
mod loadtest;
#[path = "pristi/profile.rs"]
mod profile;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("impute") => run_impute(parse_flags(&args[1..])),
        Some("generate") => run_generate(parse_flags(&args[1..])),
        Some("serve") => {
            // `--stream` is a boolean mode switch, not a `--key value` pair.
            let mut rest: Vec<String> = args[1..].to_vec();
            let stream = match rest.iter().position(|a| a == "--stream") {
                Some(pos) => {
                    rest.remove(pos);
                    true
                }
                None => false,
            };
            if stream {
                run_serve_stream(parse_flags(&rest))
            } else {
                run_serve(parse_flags(&rest))
            }
        }
        Some("loadtest") => loadtest::run(&args[1..]),
        Some("profile") => profile::run(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("checkpoint") => match args.get(1).map(String::as_str) {
            Some("save") => run_checkpoint_save(parse_flags(&args[2..])),
            Some("load-verify") => run_checkpoint_verify(parse_flags(&args[2..])),
            _ => {
                eprintln!("usage: pristi checkpoint <save|load-verify> [--flag value]...");
                eprintln!("  pristi checkpoint save --data panel.csv --coords coords.csv --out model.ckpt");
                eprintln!("                         [--epochs N] [--window L] [--steps-per-day N] [--seed N]");
                eprintln!("  pristi checkpoint load-verify --ckpt model.ckpt");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: pristi <impute|generate|checkpoint|serve|loadtest> [--flag value]...");
            eprintln!("  pristi generate --kind aqi|metr-la|pems-bay --out panel.csv --coords-out coords.csv");
            eprintln!("  pristi impute --data panel.csv --coords coords.csv --out imputed.csv");
            eprintln!("                [--epochs N] [--samples S] [--window L]");
            eprintln!("                [--sampler ddpm|ddim:K[:ETA]|pndm:K[:ORDER]|refine:K[:STRENGTH] | --ddim K]");
            eprintln!("                [--steps-per-day N] [--quantiles lo.csv,hi.csv] [--seed N]");
            eprintln!("  pristi checkpoint save --data panel.csv --coords coords.csv --out model.ckpt");
            eprintln!("  pristi checkpoint load-verify --ckpt model.ckpt");
            eprintln!("  pristi serve --ckpt model.ckpt [--samples S] [--sampler SPEC | --ddim K]");
            eprintln!("               [--batch S_max] [--deadline-ms N] [--seed N] [--workers N]");
            eprintln!("               (JSONL requests on stdin)");
            eprintln!("  pristi serve --stream --ckpt model.ckpt [--samples S] [--sampler SPEC]");
            eprintln!("               [--horizon H] [--seed N] [--workers N]");
            eprintln!("               (JSONL ticks on stdin, revised imputations out)");
            eprintln!("  pristi loadtest [--seed N] [--clients C] [--requests R] [--workers 1,4]");
            eprintln!("                  [--out BENCH_serve.json] [--ckpt model.ckpt] [--quick]");
            eprintln!("                  [--stream]");
            eprintln!("  pristi profile  [--seed N] [--out PROFILE.json] [--folded PROFILE_folded.txt]");
            eprintln!("                  [--quick]");
            eprintln!("  pristi bench --compare OLD,NEW [--threshold-pct P]");
            eprintln!("  pristi bench --sweep [--quick] [--seed N] [--out PATH]");
            eprintln!("  pristi bench --filter <substr> [--quick] [--json]");
            ExitCode::from(2)
        }
    }
}

/// `pristi bench` dispatcher:
///
/// * `--compare OLD,NEW [--threshold-pct P]` — diff two bench reports;
/// * `--sweep [--quick] [--seed N] [--out PATH]` — the steps-vs-CRPS solver
///   accuracy sweep (exits nonzero when a gated few-step configuration
///   drifts from the 50-step reference);
/// * `--filter <substr> [--quick] [--json]` — run the matching subset of the
///   micro-benchmark cases in-process, so a kernel iteration doesn't require
///   running the full `cargo bench` suite.
fn run_bench(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--compare") {
        run_bench_compare(args)
    } else if args.iter().any(|a| a == "--sweep") {
        run_bench_sweep(args)
    } else {
        run_bench_filter(args)
    }
}

/// `pristi bench --sweep [--quick] [--seed N] [--out PATH]` — train a seeded
/// `T = 50` model and score every solver × step-count configuration against
/// the 50-step DDIM reference (see `pristi_bench::sweep`). Writes the CSV to
/// `--out` (default `results/steps_vs_crps.csv`) and fails when a gated spec
/// exceeds the pinned CRPS/MAE ratio tolerances.
fn run_bench_sweep(args: &[String]) -> ExitCode {
    let mut opts = pristi_bench::SweepOpts::default();
    let mut out = "results/steps_vs_crps.csv".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sweep" => i += 1,
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--seed needs a number");
                    return ExitCode::from(2);
                };
                opts.seed = v;
                i += 2;
            }
            "--out" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: pristi bench --sweep [--quick] [--seed N] [--out PATH]");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!(
        "sweep: training T=50 model and scoring solvers ({} mode)...",
        if opts.quick { "quick" } else { "full" }
    );
    let report = match pristi_bench::run_sweep(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_table());
    if let Err(e) = std::fs::write(&out, report.to_csv()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("sweep table -> {out}");
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("SWEEP GATE VIOLATION: {v}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `pristi bench --filter <substr> [--quick] [--json]` — time only the micro
/// cases whose name contains `<substr>` (the same case set and timing loop as
/// `cargo bench -p pristi-bench`; `--json` rewrites `BENCH_micro.json` with
/// just the matched entries, so leave it off when iterating on one kernel).
fn run_bench_filter(args: &[String]) -> ExitCode {
    let mut filter: Option<String> = None;
    let mut quick = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--filter" => {
                let Some(value) = args.get(i + 1).filter(|a| !a.starts_with("--")) else {
                    eprintln!("--filter needs a substring");
                    eprintln!("usage: pristi bench --filter <substr> [--quick] [--json]");
                    return ExitCode::from(2);
                };
                filter = Some(value.clone());
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: pristi bench --compare OLD,NEW [--threshold-pct P]");
                eprintln!("       pristi bench --filter <substr> [--quick] [--json]");
                return ExitCode::from(2);
            }
        }
    }
    let mut h = pristi_bench::micro::MicroHarness::new(filter, quick);
    pristi_bench::micro::run_all(&mut h);
    if h.results().is_empty() {
        eprintln!("no bench case matched the filter");
        return ExitCode::FAILURE;
    }
    if json {
        let path = pristi_bench::micro::JSON_PATH;
        if let Err(e) = std::fs::write(path, h.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} entries to {path}", h.results().len());
    }
    ExitCode::SUCCESS
}

/// `pristi bench --compare OLD,NEW [--threshold-pct P]` — diff two bench
/// reports (`st-bench/1` or `st-serve-bench/1`, auto-detected) and exit
/// nonzero when any entry regressed beyond the threshold or went missing.
/// `OLD NEW` as two separate arguments is accepted too.
fn run_bench_compare(args: &[String]) -> ExitCode {
    let mut old_path: Option<String> = None;
    let mut new_path: Option<String> = None;
    let mut threshold_pct = 25.0f64;
    let usage = || {
        eprintln!("usage: pristi bench --compare OLD,NEW [--threshold-pct P]");
        ExitCode::from(2)
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--compare" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--compare needs OLD,NEW report paths");
                    return usage();
                };
                if let Some((old, new)) = value.split_once(',') {
                    old_path = Some(old.to_string());
                    new_path = Some(new.to_string());
                    i += 2;
                } else {
                    let Some(new) = args.get(i + 2).filter(|a| !a.starts_with("--")) else {
                        eprintln!("--compare needs two report paths (OLD,NEW or OLD NEW)");
                        return usage();
                    };
                    old_path = Some(value.clone());
                    new_path = Some(new.clone());
                    i += 3;
                }
            }
            "--threshold-pct" => {
                let parsed = args.get(i + 1).and_then(|v| v.parse::<f64>().ok());
                let Some(p) = parsed else {
                    eprintln!("--threshold-pct needs a numeric percentage");
                    return usage();
                };
                threshold_pct = p;
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let (Some(old_path), Some(new_path)) = (old_path, new_path) else {
        return usage();
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))
    };
    let outcome = read(&old_path)
        .and_then(|old| read(&new_path).map(|new| (old, new)))
        .and_then(|(old, new)| pristi_bench::compare_reports(&old, &new, threshold_pct));
    match outcome {
        Ok(out) => {
            print!("{}", out.render_table());
            if out.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench compare failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        eprintln!("warning: ignoring stray argument `{}`", args[i]);
        i += 1;
    }
    out
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Resolve the sampler from `--sampler SPEC` (the shared spec grammar:
/// `ddpm`, `ddim:K[:ETA]`, `pndm:K[:ORDER]`, `refine:K[:STRENGTH]`) with
/// `--ddim K` kept as a back-compat alias for `ddim:K`. Neither flag means
/// `default` (full DDPM for the CLI entry points).
fn parse_sampler_flags(
    flags: &HashMap<String, String>,
    default: Sampler,
) -> Result<Sampler, String> {
    match (flags.get("sampler"), flags.get("ddim")) {
        (Some(_), Some(_)) => Err("--sampler and --ddim are mutually exclusive".into()),
        (Some(spec), None) => spec.parse::<Sampler>().map_err(|e| e.to_string()),
        (None, Some(k)) => {
            let steps = k.parse::<usize>().map_err(|_| format!("bad --ddim value `{k}`"))?;
            Ok(Sampler::Ddim { steps, eta: 0.0 })
        }
        (None, None) => Ok(default),
    }
}

fn run_generate(flags: HashMap<String, String>) -> ExitCode {
    let kind = flags.get("kind").map(String::as_str).unwrap_or("aqi");
    let out = flags.get("out").map(String::as_str).unwrap_or("panel.csv");
    let coords_out = flags.get("coords-out").map(String::as_str).unwrap_or("coords.csv");
    let seed = get_usize(&flags, "seed", 2023) as u64;
    let data: SpatioTemporalDataset = match kind {
        "aqi" => generate_air_quality(&AirQualityConfig { seed, n_days: 28, ..Default::default() }),
        "metr-la" => generate_traffic(&TrafficConfig { seed, ..TrafficConfig::metr_la() }),
        "pems-bay" => generate_traffic(&TrafficConfig { seed, ..TrafficConfig::pems_bay() }),
        other => {
            eprintln!("unknown --kind `{other}` (expected aqi|metr-la|pems-bay)");
            return ExitCode::from(2);
        }
    };
    let sensors: Vec<String> = (0..data.n_nodes()).map(|i| format!("s{i}")).collect();
    // write panel with original missing as empty cells
    let (t, n) = (data.n_steps(), data.n_nodes());
    let mut csv = String::from("time");
    for s in &sensors {
        csv.push(',');
        csv.push_str(s);
    }
    csv.push('\n');
    for ti in 0..t {
        csv.push_str(&ti.to_string());
        for i in 0..n {
            let idx = ti * n + i;
            if data.observed_mask.data()[idx] > 0.0 {
                csv.push_str(&format!(",{:.4}", data.values.data()[idx]));
            } else {
                csv.push(',');
            }
        }
        csv.push('\n');
    }
    let mut coords = String::from("sensor,x,y\n");
    for (i, c) in data.graph.coords.iter().enumerate() {
        coords.push_str(&format!("s{i},{:.4},{:.4}\n", c.x, c.y));
    }
    if let Err(e) = std::fs::write(out, csv).and_then(|_| std::fs::write(coords_out, coords)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "generated {kind}-like panel: {t} steps x {n} sensors -> {out}, coordinates -> {coords_out}"
    );
    ExitCode::SUCCESS
}

fn run_impute(flags: HashMap<String, String>) -> ExitCode {
    let Some(data_path) = flags.get("data") else {
        eprintln!("--data <panel.csv> is required");
        return ExitCode::from(2);
    };
    let Some(coords_path) = flags.get("coords") else {
        eprintln!("--coords <coords.csv> is required");
        return ExitCode::from(2);
    };
    let out_path = flags.get("out").map(String::as_str).unwrap_or("imputed.csv");
    let steps_per_day = get_usize(&flags, "steps-per-day", 24);
    let epochs = get_usize(&flags, "epochs", 30);
    let n_samples = get_usize(&flags, "samples", 16);
    let window = get_usize(&flags, "window", 24);
    let sampler = match parse_sampler_flags(&flags, Sampler::Ddpm) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let seed = get_usize(&flags, "seed", 7) as u64;

    let data = match load_dataset(Path::new(data_path), Path::new(coords_path), steps_per_day) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("failed to load dataset: {e}");
            return ExitCode::FAILURE;
        }
    };
    let missing = 1.0
        - data.observed_mask.data().iter().map(|&v| v as f64).sum::<f64>()
            / data.observed_mask.numel() as f64;
    println!(
        "loaded {}: {} steps x {} sensors, {:.1}% missing",
        data.name,
        data.n_steps(),
        data.n_nodes(),
        100.0 * missing
    );
    if data.n_steps() < 2 * window {
        eprintln!("panel too short for --window {window}");
        return ExitCode::FAILURE;
    }

    let mut cfg = PristiConfig::small();
    cfg.virtual_nodes = cfg.virtual_nodes.min(data.n_nodes());
    let tc = TrainConfig {
        epochs,
        window_len: window,
        window_stride: (window / 2).max(1),
        strategy: MaskStrategyKind::HybridBlock,
        seed,
        reporter: Reporter::Stderr,
        ..Default::default()
    };
    println!("training PriSTI ({epochs} epochs, window {window})...");
    let trained = match train(&data, cfg, &tc) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("trained {} parameters", trained.model.n_params());

    // Impute the whole panel window by window.
    let (mut panel, mask) = visible(&data);
    let mut lo = panel.clone();
    let mut hi = panel.clone();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let (t_len, n) = (data.n_steps(), data.n_nodes());
    let mut starts: Vec<usize> = (0..=(t_len - window)).step_by(window).collect();
    if starts.last() != Some(&(t_len - window)) {
        starts.push(t_len - window);
    }
    for (wi, &t0) in starts.iter().enumerate() {
        let w = data.window_at(t0, window);
        let res = match impute(&trained, &w, &ImputeOptions { n_samples, sampler }, &mut rng) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("imputation failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let med = res.median();
        let q05 = res.quantile(0.05);
        let q95 = res.quantile(0.95);
        write_window(&mut panel, &mask, &med, t0, n, window);
        write_window(&mut lo, &mask, &q05, t0, n, window);
        write_window(&mut hi, &mask, &q95, t0, n, window);
        println!("  window {}/{} imputed", wi + 1, starts.len());
    }

    let sensors: Vec<String> = panel_sensor_names(data_path, n);
    if let Err(e) = std::fs::write(out_path, panel_to_csv(&panel, &sensors)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("imputed panel -> {out_path}");
    if let Some(q) = flags.get("quantiles") {
        if let Some((lo_path, hi_path)) = q.split_once(',') {
            let r = std::fs::write(lo_path, panel_to_csv(&lo, &sensors))
                .and_then(|_| std::fs::write(hi_path, panel_to_csv(&hi, &sensors)));
            match r {
                Ok(()) => println!("quantile bands -> {lo_path}, {hi_path}"),
                Err(e) => {
                    eprintln!("quantile write failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!("--quantiles expects `lo.csv,hi.csv`");
        }
    }
    ExitCode::SUCCESS
}

/// Train exactly as `pristi impute` would, then persist the model as an
/// `st-ckpt/1` file instead of imputing.
fn run_checkpoint_save(flags: HashMap<String, String>) -> ExitCode {
    let Some(data_path) = flags.get("data") else {
        eprintln!("--data <panel.csv> is required");
        return ExitCode::from(2);
    };
    let Some(coords_path) = flags.get("coords") else {
        eprintln!("--coords <coords.csv> is required");
        return ExitCode::from(2);
    };
    let out_path = flags.get("out").map(String::as_str).unwrap_or("model.ckpt");
    let steps_per_day = get_usize(&flags, "steps-per-day", 24);
    let epochs = get_usize(&flags, "epochs", 30);
    let window = get_usize(&flags, "window", 24);
    let seed = get_usize(&flags, "seed", 7) as u64;

    let data = match load_dataset(Path::new(data_path), Path::new(coords_path), steps_per_day) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("failed to load dataset: {e}");
            return ExitCode::FAILURE;
        }
    };
    if data.n_steps() < 2 * window {
        eprintln!("panel too short for --window {window}");
        return ExitCode::FAILURE;
    }
    let mut cfg = PristiConfig::small();
    cfg.virtual_nodes = cfg.virtual_nodes.min(data.n_nodes());
    let tc = TrainConfig {
        epochs,
        window_len: window,
        window_stride: (window / 2).max(1),
        strategy: MaskStrategyKind::HybridBlock,
        seed,
        reporter: Reporter::Stderr,
        ..Default::default()
    };
    println!("training PriSTI ({epochs} epochs, window {window})...");
    let trained = match train(&data, cfg, &tc) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match save_checkpoint(&trained, Path::new(out_path)) {
        Ok(()) => {
            println!(
                "checkpoint ({} parameters, {} sensors, window {}) -> {out_path}",
                trained.model.n_params(),
                trained.model.n_nodes(),
                trained.model.window_len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("checkpoint save failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Load a checkpoint end to end — header, checksum, config validation, and
/// full model rebuild — and print what it holds. A valid file exits 0.
fn run_checkpoint_verify(flags: HashMap<String, String>) -> ExitCode {
    let Some(ckpt_path) = flags.get("ckpt") else {
        eprintln!("--ckpt <model.ckpt> is required");
        return ExitCode::from(2);
    };
    match load_checkpoint(Path::new(ckpt_path)) {
        Ok(trained) => {
            println!("checkpoint OK: {ckpt_path}");
            println!("  parameters: {}", trained.model.n_params());
            println!("  sensors:    {}", trained.model.n_nodes());
            println!("  window:     {}", trained.model.window_len());
            println!("  t_steps:    {}", trained.schedule.betas().len());
            match trained.epoch_losses.last() {
                Some(last) => println!(
                    "  training:   {} epochs, final loss {last:.6}",
                    trained.epoch_losses.len()
                ),
                None => println!("  training:   no recorded epochs"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("checkpoint verify failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Serve a checkpoint over a stdin/stdout JSONL loop (one request per line,
/// one response per line; see the module docs for the wire format).
fn run_serve(flags: HashMap<String, String>) -> ExitCode {
    let Some(ckpt_path) = flags.get("ckpt") else {
        eprintln!("--ckpt <model.ckpt> is required");
        return ExitCode::from(2);
    };
    let default_samples = get_usize(&flags, "samples", 8);
    let default_sampler = match parse_sampler_flags(&flags, Sampler::Ddpm) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cfg = ServeConfig {
        max_batch_samples: get_usize(&flags, "batch", 32),
        workers: get_usize(&flags, "workers", 1),
        default_deadline: Duration::from_millis(get_usize(&flags, "deadline-ms", 30_000) as u64),
        base_seed: get_usize(&flags, "seed", 0) as u64,
        ..Default::default()
    };
    let trained = match load_checkpoint(Path::new(ckpt_path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load checkpoint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (n_nodes, window_len) = (trained.model.n_nodes(), trained.model.window_len());
    let service = match ImputeService::start(trained, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start service: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serving {ckpt_path} ({n_nodes} sensors, window {window_len}); \
         reading JSONL requests from stdin"
    );

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let mut line_no = 0u64;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        line_no += 1;
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line, default_samples, default_sampler) {
            Ok(req) => {
                let id = req.id;
                match service.submit(req) {
                    Ok(res) => {
                        let med = res.median();
                        let q05 = res.quantile(0.05);
                        let q95 = res.quantile(0.95);
                        format!(
                            "{{\"id\":{id},\"ok\":true,\"median\":{},\"q05\":{},\"q95\":{}}}",
                            grid_json(&med),
                            grid_json(&q05),
                            grid_json(&q95)
                        )
                    }
                    Err(e) => error_line(Some(id), e.kind(), &e.to_string(), line_no),
                }
            }
            Err((kind, detail)) => error_line(None, kind, &detail, line_no),
        };
        // Piped stdout is block-buffered; a serving loop must flush per line
        // or clients waiting on a response deadlock.
        if writeln!(stdout, "{response}").and_then(|()| stdout.flush()).is_err() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `pristi serve --stream`: a sliding-window streaming loop over stdin
/// JSONL ticks (see [`st_serve::stream`] for the wire format and the
/// incremental-prior design, and README §Streaming for a quickstart).
fn run_serve_stream(flags: HashMap<String, String>) -> ExitCode {
    let Some(ckpt_path) = flags.get("ckpt") else {
        eprintln!("--ckpt <model.ckpt> is required");
        return ExitCode::from(2);
    };
    // Streaming revises gaps every tick, so the default solver is the
    // few-step `pndm:4` rather than full DDPM.
    let default_sampler = match parse_sampler_flags(&flags, Sampler::Pndm { steps: 4, order: 4 }) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cfg = StreamServerConfig {
        session: StreamConfig {
            n_samples: get_usize(&flags, "samples", 8),
            sampler: default_sampler,
            horizon: get_usize(&flags, "horizon", 4),
            base_seed: get_usize(&flags, "seed", 0) as u64,
        },
        workers: get_usize(&flags, "workers", 1),
    };
    let trained = match load_checkpoint(Path::new(ckpt_path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load checkpoint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (n_nodes, window_len) = (trained.model.n_nodes(), trained.model.window_len());
    eprintln!(
        "streaming {ckpt_path} ({n_nodes} sensors, window {window_len}, horizon {}, \
         sampler {default_sampler}); reading JSONL ticks from stdin",
        cfg.session.horizon
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout().lock();
    match run_stream(std::sync::Arc::new(trained), &cfg, stdin.lock(), stdout) {
        Ok(summary) => {
            eprintln!(
                "stream closed: {} ok ({} imputed, {} skipped), {} errors",
                summary.ok, summary.imputes, summary.skips, summary.errors
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stream I/O failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse one JSONL request line into an [`ImputeRequest`]. `null` cells are
/// missing; everything shape-related is left to the service's validation.
///
/// The sampler comes from the `"sampler"` spec string (shared grammar, e.g.
/// `"pndm:6"`), with the pre-spec `"ddim_steps"` integer field kept as an
/// alias for `ddim:K`; with neither the serve-level default applies.
fn parse_request(
    line: &str,
    default_samples: usize,
    default_sampler: Sampler,
) -> Result<ImputeRequest, (&'static str, String)> {
    parse_request_inner(line, default_samples, default_sampler).map_err(|detail| {
        let kind = if detail.starts_with("bad JSON") { "bad_json" } else { "bad_request" };
        (kind, detail)
    })
}

fn parse_request_inner(
    line: &str,
    default_samples: usize,
    default_sampler: Sampler,
) -> Result<ImputeRequest, String> {
    let req = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let id = req
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("request needs a numeric \"id\"")?;
    let rows = req
        .get("values")
        .and_then(Json::as_arr)
        .ok_or("request needs a \"values\" array of sensor rows")?;
    let n = rows.len();
    let l = rows
        .first()
        .and_then(|r| r.as_arr())
        .ok_or("\"values\" rows must be arrays")?
        .len();
    let mut values = NdArray::zeros(&[n, l]);
    let mut observed = NdArray::zeros(&[n, l]);
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_arr().ok_or("\"values\" rows must be arrays")?;
        if cells.len() != l {
            return Err(format!(
                "ragged \"values\": row 0 has {l} cells, row {i} has {}",
                cells.len()
            ));
        }
        for (li, cell) in cells.iter().enumerate() {
            match cell {
                Json::Null => {}
                other => {
                    let v = other.as_f64().ok_or_else(|| {
                        format!("cell [{i}][{li}] must be a number or null")
                    })?;
                    values.data_mut()[i * l + li] = v as f32;
                    observed.data_mut()[i * l + li] = 1.0;
                }
            }
        }
    }
    let n_samples = req
        .get("n_samples")
        .and_then(Json::as_u64)
        .map_or(default_samples, |v| v as usize);
    let sampler = match (req.get("sampler"), req.get("ddim_steps")) {
        (Some(_), Some(_)) => {
            return Err("\"sampler\" and \"ddim_steps\" are mutually exclusive".into())
        }
        (Some(spec), None) => {
            let spec = spec.as_str().ok_or("\"sampler\" must be a spec string")?;
            spec.parse::<Sampler>().map_err(|e| e.to_string())?
        }
        (None, Some(steps)) => {
            let steps = steps.as_u64().ok_or("\"ddim_steps\" must be a non-negative integer")?;
            Sampler::Ddim { steps: steps as usize, eta: 0.0 }
        }
        (None, None) => default_sampler,
    };
    let tier = match req.get("tier").and_then(Json::as_str) {
        None | Some("interactive") => AdmissionTier::Interactive,
        Some("best_effort") => AdmissionTier::BestEffort,
        Some(other) => {
            return Err(format!(
                "unknown \"tier\" `{other}` (expected \"interactive\" or \"best_effort\")"
            ))
        }
    };
    Ok(ImputeRequest {
        id,
        window: Window { values, observed, eval: NdArray::zeros(&[n, l]), t_start: 0 },
        n_samples,
        sampler,
        tier,
        deadline: None,
    })
}

/// Render a `[N, L]` array as nested JSON arrays (rows = sensors).
fn grid_json(a: &NdArray) -> String {
    let (n, l) = (a.shape()[0], a.shape()[1]);
    let mut out = String::from("[");
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for li in 0..l {
            if li > 0 {
                out.push(',');
            }
            let v = a.data()[i * l + li];
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
        }
        out.push(']');
    }
    out.push(']');
    out
}

fn write_window(panel: &mut NdArray, mask: &NdArray, win: &NdArray, t0: usize, n: usize, l: usize) {
    for li in 0..l {
        for i in 0..n {
            let idx = (t0 + li) * n + i;
            if mask.data()[idx] == 0.0 {
                panel.data_mut()[idx] = win.data()[i * l + li];
            }
        }
    }
}

fn panel_sensor_names(path: &str, n: usize) -> Vec<String> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| {
            let header = text.lines().next()?.to_string();
            let names: Vec<String> =
                header.split(',').skip(1).map(|s| s.trim().to_string()).collect();
            (names.len() == n).then_some(names)
        })
        .unwrap_or_else(|| (0..n).map(|i| format!("s{i}")).collect())
}
