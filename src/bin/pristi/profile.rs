//! `pristi profile` — run a pinned workload under the `st-obs/2` recorder
//! and write a deterministic attribution report.
//!
//! The workload covers the four hot paths of the stack:
//!
//! 1. `eps_theta_fwd` — evaluation-mode noise-predictor forward passes on the
//!    same `[4, 24, 24]` case `BENCH_micro.json` times;
//! 2. `eps_theta_bwd` — the training graph (forward + masked MSE + backward)
//!    on that case;
//! 3. cached imputation — `pristi_core::impute` end to end (prior cache,
//!    denoise steps, denormalise/merge);
//! 4. a serve batch — sequential requests through a one-worker
//!    [`st_serve::ImputeService`], so request/batch trace ids and the
//!    `serve_batch` span tree are exercised.
//!
//! After the workload, a **scaling scan** re-runs the forward case pinned to
//! 1 thread and to `st_par::max_threads()` threads, flushing the aggregated
//! op/`par` telemetry between runs. The per-op `t1` vs `tmax` deltas name the
//! ops whose wall time *grows* with more threads — the `_tmax < _t1`
//! regression tracked in ROADMAP.md — alongside each parallel label's
//! measured efficiency.
//!
//! Outputs:
//!
//! * `PROFILE.json` (`st-profile/1`): span tree totals, leaf-attribution
//!   check, aggregated ops, per-label `par` telemetry, and the scaling table.
//!   Every run-varying value lives in a nested flat `"timing":{...}` object,
//!   so `scripts/verify.sh` strips those and asserts two same-seed runs are
//!   byte-identical.
//! * `PROFILE_folded.txt`: `path;to;span self_ns` folded-stack lines
//!   (flamegraph-compatible), sorted by path.
//! * stdout: human tables (these may sort by time; the JSON never does).

use pristi_core::{impute, ImputeOptions, Sampler};
use st_graph::{random_plane_layout, SensorGraph};
use st_obs::json::{self, Json};
use st_obs::{Event, Sink};
use st_rand::{SeedableRng, StdRng};
use st_serve::{
    checkpoint_from_bytes, checkpoint_to_bytes, AdmissionTier, ImputeRequest, ImputeService,
    ServeConfig,
};
use st_tensor::graph::Graph;
use st_tensor::NdArray;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

/// Parsed `pristi profile` options.
struct ProfileOpts {
    seed: u64,
    quick: bool,
    out: String,
    folded: String,
}

/// Pinned per-phase iteration counts (fixed by `--quick`, never timed-out or
/// adaptive — the report's non-timing fields must not depend on machine
/// speed).
struct Workload {
    fwd_iters: usize,
    bwd_iters: usize,
    impute_requests: usize,
    serve_requests: usize,
    scan_iters: usize,
}

impl Workload {
    fn new(quick: bool) -> Self {
        if quick {
            Self { fwd_iters: 2, bwd_iters: 1, impute_requests: 2, serve_requests: 2, scan_iters: 2 }
        } else {
            Self { fwd_iters: 6, bwd_iters: 3, impute_requests: 4, serve_requests: 4, scan_iters: 4 }
        }
    }
}

/// A sink that keeps every event as its JSONL line, in memory, so the report
/// builder can replay the stream after the recorder uninstalls.
struct CollectSink(Arc<Mutex<Vec<String>>>);

impl Sink for CollectSink {
    fn event(&mut self, e: &Event) {
        self.0.lock().expect("profile sink lock").push(e.to_json());
    }
}

/// One parsed `span` event.
struct SpanRec {
    path: String,
    sid: u64,
    parent: Option<u64>,
    dur_ns: u64,
    self_ns: u64,
}

/// Aggregated `op` totals keyed by `"phase.kind"`.
type OpTotals = BTreeMap<String, (u64, u64, u64)>; // calls, total_ns, elements

/// One parsed `par` event (label -> fields).
struct ParRec {
    label: String,
    dispatches: u64,
    chunks: u64,
    accept: u64,
    reject: u64,
    threads: u64,
    busy_ns: u64,
    span_ns: u64,
    eff_pct: f64,
}

pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: pristi profile [--seed N] [--out PROFILE.json] \
                 [--folded PROFILE_folded.txt] [--quick]"
            );
            return ExitCode::from(2);
        }
    };
    let w = Workload::new(opts.quick);

    // Everything that is *not* the pinned workload happens before the
    // recorder is installed: the report covers only the profiled phases.
    eprintln!("training the tiny pinned model (seed {})...", opts.seed);
    let trained = match super::loadtest::train_tiny_model(opts.seed) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("in-process training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ckpt_bytes = checkpoint_to_bytes(&trained);
    let serve_model = match checkpoint_from_bytes(&ckpt_bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("checkpoint clone failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let windows =
        super::loadtest::synth_windows(opts.seed, trained.model.n_nodes(), trained.model.window_len());

    // The forward/backward case mirrors `pristi_eps_theta_forward_4x24x24`
    // in `crates/bench/benches/micro.rs` — the entry whose `_tmax` scaling
    // variant regresses against `_t1`.
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x6);
    let graph = SensorGraph::from_coords(random_plane_layout(24, 30.0, 7), 0.1);
    let mut cfg = pristi_core::PristiConfig::small();
    cfg.d_model = 16;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.time_emb_dim = 32;
    cfg.node_emb_dim = 8;
    cfg.step_emb_dim = 32;
    cfg.virtual_nodes = 8;
    let model = match pristi_core::PristiModel::new(cfg, &graph, 24, &mut rng) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench-case model construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let noisy = NdArray::randn(&[4, 24, 24], &mut rng);
    let cond = NdArray::randn(&[4, 24, 24], &mut rng);

    let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut marks: Vec<(&'static str, usize, usize)> = Vec::new(); // (tag, from, to)
    {
        let _rec = st_obs::install(vec![Box::new(CollectSink(Arc::clone(&lines)))]);

        eprintln!("phase eps_theta_fwd: {} iters...", w.fwd_iters);
        {
            let _s = st_obs::span!("eps_theta_fwd");
            for _ in 0..w.fwd_iters {
                black_box(model.predict_eps_eval(&noisy, &cond, 10));
            }
        }

        eprintln!("phase eps_theta_bwd: {} iters...", w.bwd_iters);
        {
            let _s = st_obs::span!("eps_theta_bwd");
            for _ in 0..w.bwd_iters {
                let mut g = Graph::new(&model.store);
                let noisy_tx = g.input(noisy.clone());
                let cond_tx = g.input(cond.clone());
                let steps = vec![10usize; 4];
                let eps_hat = model.predict_eps(&mut g, noisy_tx, cond_tx, &steps);
                let target = g.input(NdArray::zeros(&[4, 24, 24]));
                let mask = g.input(NdArray::ones(&[4, 24, 24]));
                let loss = g.mse_masked(eps_hat, target, mask);
                black_box(g.backward(loss).len());
            }
        }

        eprintln!("phase impute_cached: {} requests...", w.impute_requests);
        for r in 0..w.impute_requests {
            let mut req_rng = StdRng::seed_from_u64(opts.seed ^ (0x1000 + r as u64));
            let sampler = if r % 2 == 1 { Sampler::Ddim { steps: 4, eta: 0.0 } } else { Sampler::Ddpm };
            let window = &windows[r % windows.len()];
            let res = impute(&trained, window, &ImputeOptions { n_samples: 2, sampler }, &mut req_rng);
            match res {
                Ok(r) => {
                    black_box(r.median());
                }
                Err(e) => {
                    eprintln!("impute phase failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }

        eprintln!("phase serve_batch: {} requests...", w.serve_requests);
        let serve_cfg = ServeConfig {
            workers: 1,
            max_batch_samples: 16,
            base_seed: opts.seed,
            ..Default::default()
        };
        let service = match ImputeService::start(serve_model, serve_cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("service start failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for r in 0..w.serve_requests {
            let req = ImputeRequest {
                id: 1000 + r as u64,
                window: windows[(r + 1) % windows.len()].clone(),
                n_samples: 2,
                sampler: if r % 2 == 0 { Sampler::Ddpm } else { Sampler::Ddim { steps: 4, eta: 0.0 } },
                tier: AdmissionTier::Interactive,
                deadline: None,
            };
            if let Err(e) = service.submit(req) {
                eprintln!("serve phase request failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        service.shutdown();

        // Scaling scan: the forward case pinned to 1 thread, then to the
        // full pool, with a flush isolating each segment's op/par deltas.
        st_obs::flush();
        for (threads, tag) in [(1usize, "t1"), (st_par::max_threads(), "tmax")] {
            eprintln!("scaling scan {tag}: {} iters at {threads} thread(s)...", w.scan_iters);
            st_par::set_threads(threads);
            let from = lines.lock().expect("profile sink lock").len();
            {
                let _s = if tag == "t1" {
                    st_obs::span("eps_theta_t1")
                } else {
                    st_obs::span("eps_theta_tmax")
                };
                for _ in 0..w.scan_iters {
                    black_box(model.predict_eps_eval(&noisy, &cond, 10));
                }
            }
            st_obs::flush();
            let to = lines.lock().expect("profile sink lock").len();
            marks.push((tag, from, to));
        }
        st_par::set_threads(0);
    }

    let lines = Arc::try_unwrap(lines).expect("sink dropped with recorder").into_inner().expect("profile sink lock");
    let report = match build_report(&opts, &w, &lines, &marks) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("report build failed: {msg}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", report.render_tables());
    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("failed to write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&opts.folded, report.folded.as_str()) {
        eprintln!("failed to write {}: {e}", opts.folded);
        return ExitCode::FAILURE;
    }
    println!("report -> {}, folded stacks -> {}", opts.out, opts.folded);
    ExitCode::SUCCESS
}

fn parse_opts(args: &[String]) -> Result<ProfileOpts, String> {
    let mut opts = ProfileOpts {
        seed: 7,
        quick: false,
        out: "PROFILE.json".into(),
        folded: "PROFILE_folded.txt".into(),
    };
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument `{}`", args[i]))?;
        if key == "quick" {
            opts.quick = true;
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        match key {
            "seed" => opts.seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "out" => opts.out = value.clone(),
            "folded" => opts.folded = value.clone(),
            other => return Err(format!("unknown flag --{other}")),
        }
        i += 2;
    }
    Ok(opts)
}

/// Everything the report emits, pre-aggregated from the event stream.
struct Report {
    seed: u64,
    quick: bool,
    threads_max: usize,
    /// path -> (count, total_ns, self_ns), sorted by path.
    spans: BTreeMap<String, (u64, u64, u64)>,
    /// Leaf-attribution check over the span forest.
    n_spans: usize,
    n_roots: usize,
    n_leaves: usize,
    root_ns: u64,
    leaf_self_ns: u64,
    /// "phase.kind" -> (calls, total_ns, elements) over the whole stream.
    ops: OpTotals,
    /// Main-workload `par` rows, sorted by label.
    pars: Vec<ParRec>,
    /// "phase.kind" -> (t1_ns, tmax_ns) from the scaling scan.
    scaling: BTreeMap<String, (u64, u64)>,
    /// label -> eff_pct at tmax from the scan segment.
    scan_eff: BTreeMap<String, f64>,
    folded: String,
}

fn get_u64(obj: &Json, key: &str) -> u64 {
    obj.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn get_str(obj: &Json, key: &str) -> String {
    obj.get(key).and_then(Json::as_str).unwrap_or_default().to_string()
}

fn parse_span(obj: &Json) -> Option<SpanRec> {
    Some(SpanRec {
        path: obj.get("path")?.as_str()?.to_string(),
        sid: get_u64(obj, "sid"),
        parent: obj.get("parent").and_then(Json::as_u64),
        dur_ns: get_u64(obj, "dur_ns"),
        self_ns: get_u64(obj, "self_ns"),
    })
}

fn parse_par(obj: &Json) -> ParRec {
    ParRec {
        label: get_str(obj, "label"),
        dispatches: get_u64(obj, "dispatches"),
        chunks: get_u64(obj, "chunks"),
        accept: get_u64(obj, "accept"),
        reject: get_u64(obj, "reject"),
        threads: get_u64(obj, "threads"),
        busy_ns: get_u64(obj, "busy_ns"),
        span_ns: get_u64(obj, "span_ns"),
        eff_pct: obj.get("eff_pct").and_then(Json::as_f64).unwrap_or(100.0),
    }
}

/// Sum `op` events in `lines[range]` into `"phase.kind"` totals.
fn op_totals(lines: &[String]) -> Result<OpTotals, String> {
    let mut out = OpTotals::new();
    for line in lines {
        let obj = json::parse(line).map_err(|e| format!("bad event line: {e}"))?;
        if obj.get("ev").and_then(Json::as_str) == Some("op") {
            let key = format!("{}.{}", get_str(&obj, "phase"), get_str(&obj, "kind"));
            let slot = out.entry(key).or_insert((0, 0, 0));
            slot.0 += get_u64(&obj, "calls");
            slot.1 += get_u64(&obj, "total_ns");
            slot.2 += get_u64(&obj, "elements");
        }
    }
    Ok(out)
}

fn build_report(
    opts: &ProfileOpts,
    _w: &Workload,
    lines: &[String],
    marks: &[(&'static str, usize, usize)],
) -> Result<Report, String> {
    // Full-stream span records (the scan spans included — they are part of
    // the profiled wall time).
    let mut spans: Vec<SpanRec> = Vec::new();
    for line in lines {
        let obj = json::parse(line).map_err(|e| format!("bad event line: {e}"))?;
        if obj.get("ev").and_then(Json::as_str) == Some("span") {
            spans.push(parse_span(&obj).ok_or_else(|| format!("span without path: {line}"))?);
        }
    }
    if spans.is_empty() {
        return Err("no spans collected — is the recorder wired up?".into());
    }

    let parent_ids: std::collections::HashSet<u64> =
        spans.iter().filter_map(|s| s.parent).collect();
    let n_roots = spans.iter().filter(|s| s.parent.is_none()).count();
    let n_leaves = spans.iter().filter(|s| !parent_ids.contains(&s.sid)).count();
    let root_ns: u64 = spans.iter().filter(|s| s.parent.is_none()).map(|s| s.dur_ns).sum();
    let leaf_self_ns: u64 =
        spans.iter().filter(|s| !parent_ids.contains(&s.sid)).map(|s| s.self_ns).sum();

    let mut by_path: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for s in &spans {
        let slot = by_path.entry(s.path.clone()).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += s.dur_ns;
        slot.2 += s.self_ns;
    }

    let mut folded = String::new();
    for (path, (_, _, self_ns)) in &by_path {
        folded.push_str(&path.replace('/', ";"));
        folded.push(' ');
        folded.push_str(&self_ns.to_string());
        folded.push('\n');
    }

    // Main-workload segment: everything before the first scan mark.
    let workload_end = marks.first().map_or(lines.len(), |&(_, from, _)| from);
    let ops = op_totals(lines)?;
    let mut pars: Vec<ParRec> = Vec::new();
    for line in &lines[..workload_end] {
        let obj = json::parse(line).map_err(|e| format!("bad event line: {e}"))?;
        if obj.get("ev").and_then(Json::as_str) == Some("par") {
            pars.push(parse_par(&obj));
        }
    }
    pars.sort_by(|a, b| a.label.cmp(&b.label));

    // Scaling scan: per-op totals per segment, plus tmax parallel efficiency.
    let mut scaling: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut scan_eff: BTreeMap<String, f64> = BTreeMap::new();
    for &(tag, from, to) in marks {
        let seg = op_totals(&lines[from..to])?;
        for (key, (_, total_ns, _)) in seg {
            let slot = scaling.entry(key).or_insert((0, 0));
            match tag {
                "t1" => slot.0 += total_ns,
                _ => slot.1 += total_ns,
            }
        }
        if tag == "tmax" {
            for line in &lines[from..to] {
                let obj = json::parse(line).map_err(|e| format!("bad event line: {e}"))?;
                if obj.get("ev").and_then(Json::as_str) == Some("par") {
                    let p = parse_par(&obj);
                    scan_eff.insert(p.label, p.eff_pct);
                }
            }
        }
    }

    Ok(Report {
        seed: opts.seed,
        quick: opts.quick,
        threads_max: st_par::max_threads(),
        spans: by_path,
        n_spans: spans.len(),
        n_roots,
        n_leaves,
        root_ns,
        leaf_self_ns,
        ops,
        pars,
        scaling,
        scan_eff,
        folded,
    })
}

// The tmax-vs-t1 verdict logic lives in `pristi_bench::scaling` so the
// dispatch-policy regression tests can evaluate the same code this report
// prints (see crates/bench/tests/dispatch_policy.rs).
use pristi_bench::scaling::REGRESSION_RATIO;

impl Report {
    fn leaf_pct(&self) -> f64 {
        if self.root_ns == 0 {
            return 100.0;
        }
        100.0 * self.leaf_self_ns as f64 / self.root_ns as f64
    }

    /// `(op, t1_ns, tmax_ns, ratio)` of the worst regressing op (see
    /// [`pristi_bench::scaling::worst_scaling`]).
    fn worst_scaling(&self) -> Option<(String, u64, u64, f64)> {
        pristi_bench::scaling::worst_scaling(&self.scaling)
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"st-profile/1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"threads_max\": {},\n", self.threads_max));
        out.push_str(&format!(
            "  \"attribution\": {{\"spans\": {}, \"roots\": {}, \"leaves\": {}, \
             \"timing\":{{\"root_ns\": {}, \"leaf_self_ns\": {}, \"leaf_pct\": {:.2}}}}},\n",
            self.n_spans,
            self.n_roots,
            self.n_leaves,
            self.root_ns,
            self.leaf_self_ns,
            self.leaf_pct()
        ));
        out.push_str("  \"spans\": [\n");
        let rows: Vec<String> = self
            .spans
            .iter()
            .map(|(path, &(count, total_ns, self_ns))| {
                format!(
                    "    {{\"path\": {}, \"count\": {count}, \
                     \"timing\":{{\"total_ns\": {total_ns}, \"self_ns\": {self_ns}}}}}",
                    json::escape(path)
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str("  \"ops\": [\n");
        let rows: Vec<String> = self
            .ops
            .iter()
            .map(|(op, &(calls, total_ns, elements))| {
                format!(
                    "    {{\"op\": {}, \"calls\": {calls}, \"elements\": {elements}, \
                     \"timing\":{{\"total_ns\": {total_ns}}}}}",
                    json::escape(op)
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str("  \"par\": [\n");
        let rows: Vec<String> = self
            .pars
            .iter()
            .map(|p| {
                format!(
                    "    {{\"label\": {}, \"dispatches\": {}, \"chunks\": {}, \
                     \"accept\": {}, \"reject\": {}, \
                     \"timing\":{{\"threads\": {}, \"busy_ns\": {}, \"span_ns\": {}, \
                     \"eff_pct\": {:.2}}}}}",
                    json::escape(&p.label),
                    p.dispatches,
                    p.chunks,
                    p.accept,
                    p.reject,
                    p.threads,
                    p.busy_ns,
                    p.span_ns,
                    p.eff_pct
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str("  \"scaling\": [\n");
        let rows: Vec<String> = self
            .scaling
            .iter()
            .map(|(op, &(t1, tmax))| {
                let ratio = tmax as f64 / t1.max(1) as f64;
                format!(
                    "    {{\"op\": {}, \"timing\":{{\"t1_ns\": {t1}, \"tmax_ns\": {tmax}, \
                     \"ratio\": {ratio:.3}, \"regressing\": {}}}}}",
                    json::escape(op),
                    ratio > REGRESSION_RATIO
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        match self.worst_scaling() {
            Some((op, t1, tmax, ratio)) => out.push_str(&format!(
                "  \"verdict\": {{\"timing\":{{\"worst_op\": {}, \"t1_ns\": {t1}, \
                 \"tmax_ns\": {tmax}, \"ratio\": {ratio:.3}, \"regressing\": {}}}}}\n",
                json::escape(&op),
                ratio > REGRESSION_RATIO
            )),
            None => out.push_str("  \"verdict\": {\"timing\":{}}\n"),
        }
        out.push_str("}\n");
        out
    }

    fn render_tables(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== pristi profile (seed {}, {}threads_max {}) ==\n",
            self.seed,
            if self.quick { "quick, " } else { "" },
            self.threads_max
        ));
        out.push_str(&format!(
            "leaf attribution: {:.2}% of {:.3} ms root wall time in {} leaf spans ({} spans, {} roots)\n",
            self.leaf_pct(),
            self.root_ns as f64 / 1e6,
            self.n_leaves,
            self.n_spans,
            self.n_roots
        ));

        out.push_str("\nspans by self time:\n");
        let mut rows: Vec<(&String, &(u64, u64, u64))> = self.spans.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1 .2));
        out.push_str(&format!(
            "  {:<42} {:>6} {:>12} {:>12}\n",
            "path", "count", "total ms", "self ms"
        ));
        for (path, &(count, total_ns, self_ns)) in rows {
            out.push_str(&format!(
                "  {:<42} {:>6} {:>12.3} {:>12.3}\n",
                path,
                count,
                total_ns as f64 / 1e6,
                self_ns as f64 / 1e6
            ));
        }

        out.push_str("\ntop ops by total time:\n");
        let mut rows: Vec<(&String, &(u64, u64, u64))> = self.ops.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1 .1));
        out.push_str(&format!("  {:<28} {:>8} {:>12}\n", "op", "calls", "total ms"));
        for (op, &(calls, total_ns, _)) in rows.iter().take(12) {
            out.push_str(&format!(
                "  {:<28} {:>8} {:>12.3}\n",
                op,
                calls,
                total_ns as f64 / 1e6
            ));
        }

        if !self.pars.is_empty() {
            out.push_str("\nparallel dispatch telemetry (main workload):\n");
            out.push_str(&format!(
                "  {:<20} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
                "label", "dispatches", "chunks", "accept", "reject", "eff %"
            ));
            for p in &self.pars {
                out.push_str(&format!(
                    "  {:<20} {:>10} {:>8} {:>8} {:>8} {:>8.1}\n",
                    p.label, p.dispatches, p.chunks, p.accept, p.reject, p.eff_pct
                ));
            }
        }

        out.push_str(&format!(
            "\nscaling scan: 1 thread vs {} threads (ratio > {REGRESSION_RATIO:.2} regresses):\n",
            self.threads_max
        ));
        out.push_str(&format!(
            "  {:<28} {:>12} {:>12} {:>7} {:>10} {:>8}\n",
            "op", "t1 ms", "tmax ms", "ratio", "flag", "eff %"
        ));
        let mut rows: Vec<(&String, &(u64, u64))> = self.scaling.iter().collect();
        rows.sort_by(|a, b| {
            let ra = a.1 .1 as f64 / a.1 .0.max(1) as f64;
            let rb = b.1 .1 as f64 / b.1 .0.max(1) as f64;
            rb.total_cmp(&ra)
        });
        for (op, &(t1, tmax)) in rows {
            let ratio = tmax as f64 / t1.max(1) as f64;
            let kind = op.split('.').nth(1).unwrap_or("");
            let eff = self
                .scan_eff
                .get(kind)
                .map_or_else(|| "-".to_string(), |e| format!("{e:.1}"));
            out.push_str(&format!(
                "  {:<28} {:>12.3} {:>12.3} {:>7.3} {:>10} {:>8}\n",
                op,
                t1 as f64 / 1e6,
                tmax as f64 / 1e6,
                ratio,
                if ratio > REGRESSION_RATIO { "REGRESSES" } else { "ok" },
                eff
            ));
        }
        match self.worst_scaling() {
            Some((op, t1, tmax, ratio)) if ratio > REGRESSION_RATIO => out.push_str(&format!(
                "verdict: `{op}` regresses under threading — {:.3} ms at 1 thread vs \
                 {:.3} ms at {} threads ({ratio:.2}x)\n",
                t1 as f64 / 1e6,
                tmax as f64 / 1e6,
                self.threads_max
            )),
            Some((op, _, _, ratio)) => out.push_str(&format!(
                "verdict: no parallel regression — worst op `{op}` at {ratio:.2}x\n"
            )),
            None if self.scaling.is_empty() => {
                out.push_str("verdict: no scaling data collected\n")
            }
            None => out.push_str(
                "verdict: no parallel regression — no op cleared the ratio + delta bars\n",
            ),
        }
        out
    }
}
