//! `pristi loadtest` — a deterministic closed-loop load generator for the
//! multi-worker [`st_serve::ImputeService`].
//!
//! The harness drives the service with a **seeded request schedule**: the
//! same `--seed` produces the same windows, sample counts, samplers, and
//! request ids, and therefore — because the service pins bitwise worker-count
//! invariance — the same response bytes, counts, and checksum. Everything
//! that can vary between two same-seed runs (latency percentiles, RPS, wall
//! time) is confined to each entry's nested `"timing":{...}` object, so
//! `scripts/verify.sh` can assert two runs are byte-identical after
//! [`pristi_bench::strip_report_timing`].
//!
//! Phases:
//!
//! * `closed_loop_w{N}` — one per `--workers` value: C clients each issue R
//!   requests back-to-back (closed loop, so concurrency never exceeds C and
//!   the admission queue — sized above C — deterministically never sheds or
//!   times out). All phases share one schedule, so their checksums must agree.
//! * `mixed_solver_w{N}` — the same closed loop, but each request draws one
//!   of the four solver specs (`ddpm`, `ddim:4`, `pndm:4`, `refine:3`) from
//!   the seeded schedule, exercising same-spec batch coalescing; the
//!   order-independent checksum must agree across worker counts.
//! * `shed_storm` — `shed_threshold: 0` with all-best-effort clients: every
//!   request is deterministically shed by admission control.
//! * `timeout_storm` — every request carries a zero deadline: the worker
//!   always finds it expired at dequeue, a deterministic 100 % timeout rate.
//!
//! Results land in `BENCH_serve.json` (schema `st-serve-bench/1`, see
//! `pristi_bench::serve_report`) plus an aligned table on stdout.

use pristi_bench::{percentile, ServeEntry, ServeReport, ServeTiming};
use pristi_core::train::{train, TrainConfig};
use pristi_core::{PristiConfig, Sampler, TrainedModel};
use st_data::dataset::Window;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_rand::{Rng, SeedableRng, StdRng};
use st_serve::{
    checkpoint_from_bytes, checkpoint_to_bytes, AdmissionTier, ImputeRequest, ImputeService,
    ServeConfig, StreamConfig, StreamServerConfig,
};
use st_tensor::NdArray;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parsed `pristi loadtest` options.
struct LoadtestOpts {
    seed: u64,
    clients: usize,
    requests_per_client: usize,
    workers: Vec<usize>,
    out: String,
    ckpt: Option<String>,
    quick: bool,
    stream: bool,
}

/// One request slot in the seeded schedule (client `c`, position `r`).
/// `solver` is an index into the phase's solver set: the closed-loop phases
/// map `3` to DDIM and everything else to DDPM (~25 % DDIM, as before the
/// solver redesign); the mixed-solver phases use all four entries of
/// [`MIXED_SOLVER_SPECS`].
#[derive(Clone, Copy)]
struct ReqSpec {
    window_idx: usize,
    n_samples: usize,
    solver: usize,
}

/// The mixed-solver phase's per-request solver set, written in the shared
/// `Sampler` spec grammar (the same strings a JSONL `"sampler"` field or
/// `--sampler` flag would carry).
const MIXED_SOLVER_SPECS: [&str; 4] = ["ddpm", "ddim:4", "pndm:4", "refine:3"];

/// What a phase does besides the closed loop.
#[derive(Clone, Copy, PartialEq)]
enum PhaseKind {
    ClosedLoop,
    MixedSolver,
    ShedStorm,
    TimeoutStorm,
    /// `--stream`: drive the JSONL streaming engine with a seeded tick log;
    /// the checksum runs over the response bytes, which must be invariant to
    /// the worker count (sessions are sharded, responses reordered).
    Stream,
}

pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: pristi loadtest [--seed N] [--clients C] [--requests R] \
                 [--workers 1,4] [--out BENCH_serve.json] [--ckpt model.ckpt] [--quick] \
                 [--stream]"
            );
            return ExitCode::from(2);
        }
    };

    // One model for the whole run, cloned per phase through the `st-ckpt/1`
    // byte round-trip (bit-exact, and the only supported clone path).
    let ckpt_bytes = match &opts.ckpt {
        Some(path) => match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to read --ckpt {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            eprintln!("no --ckpt given; training a tiny deterministic model in-process...");
            match train_tiny_model(opts.seed) {
                Ok(t) => checkpoint_to_bytes(&t),
                Err(e) => {
                    eprintln!("in-process training failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let probe = match checkpoint_from_bytes(&ckpt_bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("checkpoint is not loadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (n_nodes, window_len) = (probe.model.n_nodes(), probe.model.window_len());
    drop(probe);

    // Seeded, model-shape-aware schedule: every phase reuses it, so the
    // closed-loop checksums must agree across worker counts.
    let windows = synth_windows(opts.seed, n_nodes, window_len);
    let schedule = build_schedule(opts.seed, opts.clients, opts.requests_per_client, windows.len());

    let mut entries = Vec::new();
    let mut phases: Vec<(String, usize, PhaseKind)> = opts
        .workers
        .iter()
        .map(|&w| (format!("closed_loop_w{w}"), w, PhaseKind::ClosedLoop))
        .collect();
    // Mixed-solver phases: the same seeded schedule, but each request picks
    // one of the four solver specs — so same-sampler coalescing runs, and the
    // checksum must still be worker-count invariant.
    phases.extend(
        opts.workers
            .iter()
            .map(|&w| (format!("mixed_solver_w{w}"), w, PhaseKind::MixedSolver)),
    );
    phases.push(("shed_storm".into(), opts.workers[0], PhaseKind::ShedStorm));
    phases.push(("timeout_storm".into(), opts.workers[0], PhaseKind::TimeoutStorm));
    // `--stream`: one streaming phase per worker count, all over the same
    // seeded tick log, so the response-byte checksums must agree.
    if opts.stream {
        phases.extend(
            opts.workers.iter().map(|&w| (format!("stream_w{w}"), w, PhaseKind::Stream)),
        );
    }
    let tick_log = opts
        .stream
        .then(|| synth_tick_log(opts.seed, opts.clients, opts.requests_per_client, n_nodes));

    for (name, workers, kind) in phases {
        let trained = match checkpoint_from_bytes(&ckpt_bytes) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("checkpoint clone failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("phase {name}: {} clients x {} requests, {workers} worker(s)...", opts.clients, opts.requests_per_client);
        let outcome = if kind == PhaseKind::Stream {
            run_stream_phase(
                &name,
                trained,
                workers,
                &opts,
                tick_log.as_deref().expect("stream phases imply a tick log"),
            )
        } else {
            run_phase(&name, trained, workers, kind, &opts, &windows, &schedule)
        };
        match outcome {
            Ok(entry) => entries.push(entry),
            Err(msg) => {
                eprintln!("phase {name} failed: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Cross-phase invariant (the tentpole): worker count is bitwise
    // invisible, so within each phase family every checksum must match —
    // including the mixed-solver family, where same-spec coalescing decides
    // which requests share a batch.
    for family in ["closed_loop_", "mixed_solver_", "stream_"] {
        let group: Vec<&ServeEntry> =
            entries.iter().filter(|e| e.name.starts_with(family)).collect();
        if let Some(first) = group.first() {
            for e in &group[1..] {
                if e.checksum != first.checksum {
                    eprintln!(
                        "DETERMINISM VIOLATION: {} checksum {:#x} != {} checksum {:#x}",
                        e.name, e.checksum, first.name, first.checksum
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let report = ServeReport { seed: opts.seed, quick: opts.quick, entries };
    print!("{}", report.render_table());
    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("failed to write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("report -> {}", opts.out);
    ExitCode::SUCCESS
}

fn parse_opts(args: &[String]) -> Result<LoadtestOpts, String> {
    let mut opts = LoadtestOpts {
        seed: 7,
        clients: 0, // resolved after --quick is known
        requests_per_client: 0,
        workers: vec![1, 4],
        out: "BENCH_serve.json".into(),
        ckpt: None,
        quick: false,
        stream: false,
    };
    let (mut clients, mut requests) = (None, None);
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--").ok_or_else(|| format!("unexpected argument `{}`", args[i]))?;
        if key == "quick" {
            opts.quick = true;
            i += 1;
            continue;
        }
        if key == "stream" {
            opts.stream = true;
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        match key {
            "seed" => opts.seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "clients" => clients = Some(value.parse().map_err(|_| format!("bad --clients `{value}`"))?),
            "requests" => requests = Some(value.parse().map_err(|_| format!("bad --requests `{value}`"))?),
            "workers" => {
                opts.workers = value
                    .split(',')
                    .map(|v| v.trim().parse::<usize>().map_err(|_| format!("bad --workers `{value}`")))
                    .collect::<Result<_, _>>()?;
                if opts.workers.is_empty() || opts.workers.contains(&0) {
                    return Err(format!("bad --workers `{value}` (need positive counts)"));
                }
            }
            "out" => opts.out = value.clone(),
            "ckpt" => opts.ckpt = Some(value.clone()),
            other => return Err(format!("unknown flag --{other}")),
        }
        i += 2;
    }
    opts.clients = clients.unwrap_or(if opts.quick { 2 } else { 4 });
    opts.requests_per_client = requests.unwrap_or(if opts.quick { 3 } else { 12 });
    if opts.clients == 0 || opts.requests_per_client == 0 {
        return Err("--clients and --requests must be positive".into());
    }
    Ok(opts)
}

/// Train the fallback model: tiny config, fixed-seed synthetic panel — a few
/// seconds of work, deterministic for a given `--seed`. Also the pinned
/// model behind `pristi profile`'s impute/serve phases.
pub(crate) fn train_tiny_model(seed: u64) -> pristi_core::Result<TrainedModel> {
    let mut cfg = PristiConfig::small();
    cfg.d_model = 8;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.t_steps = 8;
    cfg.time_emb_dim = 8;
    cfg.node_emb_dim = 4;
    cfg.step_emb_dim = 8;
    cfg.virtual_nodes = 4;
    cfg.adaptive_dim = 2;
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 6,
        seed: seed ^ 0xA1,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, seed ^ 0xA2);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: seed ^ 0xA3,
        ..Default::default()
    };
    train(&data, cfg, &tc)
}

/// A pool of seeded request windows matching the model's shape: ~80 %
/// observed cells, values drawn from the schedule RNG.
pub(crate) fn synth_windows(seed: u64, n_nodes: usize, window_len: usize) -> Vec<Window> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57_1F_D0_57);
    (0..8)
        .map(|_| {
            let values = NdArray::randn(&[n_nodes, window_len], &mut rng);
            let mut observed = NdArray::zeros(&[n_nodes, window_len]);
            for v in observed.data_mut() {
                *v = if rng.random::<f64>() < 0.8 { 1.0 } else { 0.0 };
            }
            Window { values, observed, eval: NdArray::zeros(&[n_nodes, window_len]), t_start: 0 }
        })
        .collect()
}

/// The per-client request schedule, derived only from the seed (and counts),
/// so two same-seed runs issue the identical trace.
fn build_schedule(seed: u64, clients: usize, per_client: usize, n_windows: usize) -> Vec<Vec<ReqSpec>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5C4E_D01E);
    (0..clients)
        .map(|_| {
            (0..per_client)
                .map(|_| ReqSpec {
                    window_idx: rng.random_range(0..n_windows),
                    n_samples: 1 + rng.random_range(0..3usize),
                    solver: rng.random_range(0..MIXED_SOLVER_SPECS.len()),
                })
                .collect()
        })
        .collect()
}

/// Run one phase: C closed-loop client threads against a fresh service, then
/// fold their outcomes into a [`ServeEntry`].
fn run_phase(
    name: &str,
    trained: TrainedModel,
    workers: usize,
    kind: PhaseKind,
    opts: &LoadtestOpts,
    windows: &[Window],
    schedule: &[Vec<ReqSpec>],
) -> Result<ServeEntry, String> {
    let cfg = ServeConfig {
        // Sized above the client count so a closed loop can never fill it.
        queue_capacity: opts.clients * 2 + 8,
        shed_threshold: if kind == PhaseKind::ShedStorm { 0 } else { opts.clients * 2 + 8 },
        workers,
        max_batch_samples: 16,
        base_seed: opts.seed,
        ..Default::default()
    };
    let service = Arc::new(ImputeService::start(trained, cfg).map_err(|e| e.to_string())?);

    // The mixed-solver set goes through the shared spec parser — the same
    // path a `--sampler` flag or JSONL `"sampler"` field takes.
    let mixed: Vec<Sampler> = MIXED_SOLVER_SPECS
        .iter()
        .map(|s| s.parse::<Sampler>().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    let start = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            let service = Arc::clone(&service);
            let specs = schedule[c].clone();
            let windows = windows.to_vec();
            let mixed = mixed.clone();
            std::thread::spawn(move || {
                let mut outcome = ClientOutcome::default();
                for (r, spec) in specs.iter().enumerate() {
                    let id = ((c as u64) << 16) | r as u64;
                    let req = ImputeRequest {
                        id,
                        window: windows[spec.window_idx].clone(),
                        n_samples: spec.n_samples,
                        sampler: match kind {
                            PhaseKind::MixedSolver => mixed[spec.solver],
                            _ if spec.solver == 3 => Sampler::Ddim { steps: 4, eta: 0.0 },
                            _ => Sampler::Ddpm,
                        },
                        tier: if kind == PhaseKind::ShedStorm {
                            AdmissionTier::BestEffort
                        } else {
                            AdmissionTier::Interactive
                        },
                        deadline: (kind == PhaseKind::TimeoutStorm).then_some(Duration::ZERO),
                    };
                    let t0 = Instant::now();
                    match service.submit(req) {
                        Ok(res) => {
                            outcome.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            outcome.ok += 1;
                            let mut h = fnv1a_u64(id);
                            for s in &res.samples {
                                h = fnv1a_bytes(h, &s.to_bytes());
                            }
                            outcome.checksum = outcome.checksum.wrapping_add(h);
                        }
                        Err(pristi_core::PristiError::QueueFull { shed: true, .. }) => outcome.shed += 1,
                        Err(pristi_core::PristiError::Timeout { .. }) => outcome.timeout += 1,
                        Err(e) => outcome.unexpected.push(format!("request {id}: {e}")),
                    }
                }
                outcome
            })
        })
        .collect();

    let mut merged = ClientOutcome::default();
    for h in handles {
        let o = h.join().map_err(|_| "client thread panicked".to_string())?;
        merged.ok += o.ok;
        merged.shed += o.shed;
        merged.timeout += o.timeout;
        merged.checksum = merged.checksum.wrapping_add(o.checksum);
        merged.latencies_ms.extend(o.latencies_ms);
        merged.unexpected.extend(o.unexpected);
    }
    let wall = start.elapsed();
    service.shutdown();
    if let Some(first) = merged.unexpected.first() {
        return Err(format!("{} unexpected error(s), first: {first}", merged.unexpected.len()));
    }

    merged.latencies_ms.sort_by(f64::total_cmp);
    let requests = (opts.clients * opts.requests_per_client) as u64;
    let wall_s = wall.as_secs_f64().max(1e-9);
    Ok(ServeEntry {
        name: name.to_string(),
        workers,
        clients: opts.clients,
        requests,
        ok: merged.ok,
        shed: merged.shed,
        timeout: merged.timeout,
        checksum: merged.checksum,
        timing: ServeTiming {
            p50_ms: percentile(&merged.latencies_ms, 0.50),
            p99_ms: percentile(&merged.latencies_ms, 0.99),
            p999_ms: percentile(&merged.latencies_ms, 0.999),
            rps: merged.ok as f64 / wall_s,
            wall_ms: wall.as_secs_f64() * 1e3,
        },
    })
}

/// The seeded streaming tick log: `sessions` interleaved feeds of `ticks`
/// data ticks each — mostly-observed cells with ~15 % gaps, plus a dense
/// fully-observed block every 8 ticks (so the skip path runs) and one
/// `reimpute` line per session at the end (so the prior-cache reuse path
/// runs). Derived only from the seed and counts: two same-seed runs replay
/// the identical log, and response bytes must match across worker counts.
fn synth_tick_log(seed: u64, sessions: usize, ticks: usize, n_nodes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57AE_A41C);
    let mut lines = Vec::new();
    let mut id = 0u64;
    for t in 0..ticks {
        for s in 0..sessions {
            id += 1;
            let dense = t % 8 >= 4;
            let cells = (0..n_nodes)
                .map(|_| {
                    let v = (rng.random::<f32>() - 0.5) * 4.0;
                    if !dense && rng.random::<f64>() < 0.15 {
                        "null".to_string()
                    } else {
                        format!("{v}")
                    }
                })
                .collect::<Vec<_>>()
                .join(",");
            lines.push(format!("{{\"id\":{id},\"session\":{s},\"tick\":[{cells}]}}"));
        }
    }
    for s in 0..sessions {
        id += 1;
        lines.push(format!("{{\"id\":{id},\"session\":{s},\"reimpute\":true}}"));
    }
    lines.join("\n") + "\n"
}

/// Run one `stream_w{N}` phase: drive the JSONL streaming engine over the
/// in-memory tick log, checksum the response bytes. Per-line latencies are
/// not observable through the batch driver, so only wall time and RPS land
/// in the (stripped) timing object.
fn run_stream_phase(
    name: &str,
    trained: TrainedModel,
    workers: usize,
    opts: &LoadtestOpts,
    tick_log: &str,
) -> Result<ServeEntry, String> {
    let cfg = StreamServerConfig {
        session: StreamConfig {
            n_samples: 2,
            sampler: Sampler::Pndm { steps: 4, order: 4 },
            horizon: 4,
            base_seed: opts.seed,
        },
        workers,
    };
    let mut out = Vec::new();
    let start = Instant::now();
    let summary = st_serve::run_stream(
        Arc::new(trained),
        &cfg,
        std::io::Cursor::new(tick_log.as_bytes()),
        &mut out,
    )
    .map_err(|e| format!("stream I/O failed: {e}"))?;
    let wall = start.elapsed();
    if summary.errors > 0 {
        return Err(format!("{} unexpected error response(s)", summary.errors));
    }
    let requests = summary.ok + summary.errors;
    let wall_s = wall.as_secs_f64().max(1e-9);
    Ok(ServeEntry {
        name: name.to_string(),
        workers,
        clients: opts.clients,
        requests,
        ok: summary.ok,
        shed: 0,
        timeout: 0,
        checksum: fnv1a_bytes(0xcbf2_9ce4_8422_2325, &out),
        timing: ServeTiming {
            p50_ms: 0.0,
            p99_ms: 0.0,
            p999_ms: 0.0,
            rps: summary.ok as f64 / wall_s,
            wall_ms: wall.as_secs_f64() * 1e3,
        },
    })
}

#[derive(Default)]
struct ClientOutcome {
    ok: u64,
    shed: u64,
    timeout: u64,
    checksum: u64,
    latencies_ms: Vec<f64>,
    unexpected: Vec<String>,
}

/// FNV-1a over a u64's little-endian bytes, from the standard offset basis.
fn fnv1a_u64(v: u64) -> u64 {
    fnv1a_bytes(0xcbf2_9ce4_8422_2325, &v.to_le_bytes())
}

/// Continue an FNV-1a hash over `bytes`.
fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
