//! End-to-end bitwise determinism across thread counts.
//!
//! The `st-par` chunking contract (chunk boundaries derive from problem
//! shape, never from thread count) plus the single-accumulator kernel
//! contract in `st-tensor` together promise that training and imputation
//! produce byte-identical results whether the pool runs 1, 2 or 8 workers.
//! This test pins the whole stack to that promise: same seed, different
//! `st_par::set_threads`, compare serialized parameters and imputed samples
//! byte for byte.
//!
//! Everything runs inside one `#[test]` because the pool size is process
//! global; a second concurrent test would race the setting.

use pristi_core::train::{train, TrainConfig};
use pristi_core::{impute, ImputeOptions, PristiConfig, Sampler};
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_rand::SeedableRng;
use st_rand::StdRng;

fn tiny_model_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

/// Train 2 epochs and impute one window; return (params, samples) as bytes.
fn train_impute_bytes(threads: usize) -> (Vec<u8>, Vec<u8>) {
    let data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 4,
        seed: 11,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 42,
        threads,
        ..Default::default()
    };
    let trained = train(&data, tiny_model_cfg(), &tc).unwrap();
    assert_eq!(trained.epoch_losses.len(), 2);
    assert!(
        trained.epoch_losses.iter().all(|l| l.is_finite() && *l > 0.0),
        "vacuous training run: losses {:?}",
        trained.epoch_losses
    );
    let params = trained.model.store.to_bytes();

    let mut rng = StdRng::seed_from_u64(9);
    let w = data.window_at(0, 12);
    let res = impute(
        &trained,
        &w,
        &ImputeOptions { n_samples: 2, sampler: Sampler::Ddpm },
        &mut rng,
    )
    .unwrap();
    let mut samples = Vec::new();
    for s in &res.samples {
        samples.extend_from_slice(&s.to_bytes());
    }
    (params, samples)
}

#[test]
fn train_and_impute_bitwise_identical_across_thread_counts() {
    let (p1, s1) = train_impute_bytes(1);
    for threads in [2usize, 8] {
        let (p, s) = train_impute_bytes(threads);
        assert!(p == p1, "trained parameters diverge at {threads} threads");
        assert!(s == s1, "imputed samples diverge at {threads} threads");
    }
    st_par::set_threads(0);
}
