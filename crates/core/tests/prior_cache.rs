//! Bitwise equality of prior-cached vs recompute inference.
//!
//! The tentpole contract of the prior-cached path: for every sampler, batch
//! size, and thread count, `PriorMode::Cached` (build the step-invariant
//! prior tensors once per batch) and `PriorMode::Recompute` (rebuild them at
//! every denoise step) produce byte-identical ensembles and leave the
//! per-request RNG streams in identical states. On top of that, the cached
//! results themselves must be thread-count invariant (the `st-par` chunking
//! contract, see `tests/determinism.rs`).
//!
//! Everything runs inside one `#[test]` because the pool size is process
//! global; a second concurrent test would race the setting.

use pristi_core::train::{train, TrainConfig};
use pristi_core::{impute_batch_with, BatchItem, PriorMode, PristiConfig, Sampler};
use st_data::dataset::Split;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_rand::SeedableRng;
use st_rand::StdRng;

fn tiny_model_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 2;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

fn ensemble_bytes(results: &[pristi_core::ImputationResult]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in results {
        for s in &r.samples {
            out.extend_from_slice(&s.to_bytes());
        }
    }
    out
}

#[test]
fn cached_prior_bitwise_equals_recompute_across_threads() {
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 6,
        seed: 13,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 17);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 21,
        threads: 1,
        ..Default::default()
    };
    let trained = train(&data, tiny_model_cfg(), &tc).unwrap();
    let windows = data.windows(Split::Test, 12, 12);
    let w0 = &windows[0];
    let w1 = &windows[windows.len() - 1];

    for sampler in [Sampler::Ddpm, Sampler::Ddim { steps: 4, eta: 0.5 }] {
        for n_requests in [1usize, 4] {
            // Reference run: recompute mode, single thread.
            st_par::set_threads(1);
            let make_items = || -> Vec<BatchItem<'_>> {
                (0..n_requests)
                    .map(|i| BatchItem {
                        window: if i % 2 == 0 { w0 } else { w1 },
                        n_samples: 1 + i, // uneven ensembles across the batch
                        rng: StdRng::seed_from_u64(300 + i as u64),
                    })
                    .collect()
            };
            let mut ref_items = make_items();
            let reference =
                impute_batch_with(&trained, &mut ref_items, sampler, PriorMode::Recompute)
                    .unwrap();
            let ref_bytes = ensemble_bytes(&reference);
            let ref_states: Vec<_> = ref_items.iter().map(|i| i.rng.state()).collect();

            for threads in [1usize, 4] {
                st_par::set_threads(threads);
                let mut items = make_items();
                let cached =
                    impute_batch_with(&trained, &mut items, sampler, PriorMode::Cached).unwrap();
                assert!(
                    ensemble_bytes(&cached) == ref_bytes,
                    "cached ({threads} threads) diverges from single-thread recompute \
                     ({sampler:?}, {n_requests} requests)"
                );
                let states: Vec<_> = items.iter().map(|i| i.rng.state()).collect();
                assert_eq!(states, ref_states, "RNG streams advanced differently");
            }
        }
    }
    st_par::set_threads(0);
}
