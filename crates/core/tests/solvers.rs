//! Solver-equivalence contract tests for the `GenerativeProcess` redesign.
//!
//! The reverse loop in `impute_batch` used to inline the DDPM and DDIM
//! update rules; it now drives an object-safe solver behind
//! [`pristi_core::Sampler::solver`]. These tests pin the redesign's four
//! promises end to end, through the public `impute` API:
//!
//! 1. the trait path is bit-identical to a hand-written legacy loop built
//!    from the free functions `st_diffusion` has always exported
//!    (`p_sample_mean`, `ddim_mean`, …);
//! 2. an order-1 PNDM chain degenerates to deterministic DDIM, bitwise;
//! 3. timestep-grid edge cases (`steps >= T`, `steps == 1`) are well-defined
//!    and consistent across solvers;
//! 4. each request's RNG stream advances identically whether the request is
//!    served solo or coalesced into a batch, for every solver, at 1 and 4
//!    worker threads (the thread-count sweep lives in a single `#[test]`
//!    because the pool size is process-global).

use pristi_core::train::{train, TrainConfig};
use pristi_core::{impute, impute_batch, BatchItem, ImputeOptions, PristiConfig, Sampler};
use st_data::dataset::{Split, Window};
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_diffusion::{
    add_reverse_noise_slice, ddim_mean, ddim_noise_scale, ddim_timesteps, p_sample_mean,
    p_sample_noise_scale,
};
use st_rand::{SeedableRng, StdRng};
use st_tensor::ndarray::NdArray;

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

fn trained_setup(use_interpolation: bool) -> (st_data::SpatioTemporalDataset, pristi_core::TrainedModel) {
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 6,
        seed: 51,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 52);
    let mut cfg = tiny_cfg();
    cfg.use_interpolation = use_interpolation;
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 53,
        ..Default::default()
    };
    let trained = train(&data, cfg, &tc).unwrap();
    (data, trained)
}

fn sample_bytes(res: &pristi_core::ImputationResult) -> Vec<Vec<u8>> {
    res.samples.iter().map(|s| s.to_bytes()).collect()
}

/// An order-1 PNDM chain has no ε history to combine, so every step is the
/// plain deterministic DDIM transfer map — the two samplers must produce the
/// same bytes and advance the request stream identically.
#[test]
fn order1_pndm_is_bitwise_deterministic_ddim_through_impute() {
    let (data, trained) = trained_setup(true);
    let w = &data.windows(Split::Test, 12, 12)[0];
    for steps in [1usize, 3, 6] {
        let mut rng_a = StdRng::seed_from_u64(400 + steps as u64);
        let mut rng_b = StdRng::seed_from_u64(400 + steps as u64);
        let pndm = impute(
            &trained,
            w,
            &ImputeOptions { n_samples: 3, sampler: Sampler::Pndm { steps, order: 1 } },
            &mut rng_a,
        )
        .unwrap();
        let ddim = impute(
            &trained,
            w,
            &ImputeOptions { n_samples: 3, sampler: Sampler::Ddim { steps, eta: 0.0 } },
            &mut rng_b,
        )
        .unwrap();
        assert!(
            sample_bytes(&pndm) == sample_bytes(&ddim),
            "pndm:{steps}:1 diverges from ddim:{steps}:0.0"
        );
        assert_eq!(rng_a.state(), rng_b.state(), "stream advancement differs at {steps} steps");
    }
}

/// Replay the pre-redesign reverse loop by hand from public pieces — the
/// normalizer, `Window::cond_mask`, `predict_eps_eval`, and the free
/// `st_diffusion` update rules — and demand bitwise identity with the trait
/// path. The model is trained without interpolation so the conditional is
/// exactly `values_z ⊙ cond_mask` (reproducible without private helpers).
#[test]
fn trait_solvers_match_handwritten_legacy_loop() {
    let (data, trained) = trained_setup(false);
    let w = &data.windows(Split::Test, 12, 12)[0];
    let (n, l) = (w.n_nodes(), w.len());
    let t_total = trained.schedule.t_steps();
    let n_samples = 2usize;

    // Legacy conditioning, shared by both hand-written chains.
    let mut values_z = w.values.clone();
    trained.normalizer.normalize_window(&mut values_z);
    let cond_mask = w.cond_mask();
    let target_mask = cond_mask.map(|v| 1.0 - v);
    let cond = values_z.mul(&cond_mask);
    let mut cond_b = NdArray::zeros(&[n_samples, n, l]);
    let mut tmask_b = NdArray::zeros(&[n_samples, n, l]);
    for s in 0..n_samples {
        cond_b.data_mut()[s * n * l..(s + 1) * n * l].copy_from_slice(cond.data());
        tmask_b.data_mut()[s * n * l..(s + 1) * n * l].copy_from_slice(target_mask.data());
    }
    let cond_part = values_z.mul(&cond_mask);
    let finish = |x: &NdArray| -> Vec<Vec<u8>> {
        (0..n_samples)
            .map(|s| {
                let sample = NdArray::from_vec(
                    &[n, l],
                    x.data()[s * n * l..(s + 1) * n * l].to_vec(),
                );
                let mut merged = sample.mul(&target_mask).add(&cond_part);
                trained.normalizer.denormalize_window(&mut merged);
                merged.to_bytes()
            })
            .collect()
    };

    // Legacy DDPM: descend t = T..1, ancestral mean + σ·z per step.
    let legacy_ddpm = {
        let mut rng = StdRng::seed_from_u64(600);
        let mut x = NdArray::randn(&[n_samples, n, l], &mut rng).mul(&tmask_b);
        for t in (1..=t_total).rev() {
            let eps = trained.model.predict_eps_eval(&x, &cond_b, t);
            let mut next = p_sample_mean(&x, &eps, &trained.schedule, t);
            let scale = p_sample_noise_scale(&trained.schedule, t);
            if scale > 0.0 {
                add_reverse_noise_slice(next.data_mut(), scale, &mut rng);
            }
            x = next.mul(&tmask_b);
        }
        finish(&x)
    };
    let trait_ddpm = {
        let mut rng = StdRng::seed_from_u64(600);
        impute(
            &trained,
            w,
            &ImputeOptions { n_samples, sampler: Sampler::Ddpm },
            &mut rng,
        )
        .unwrap()
    };
    assert!(
        legacy_ddpm == sample_bytes(&trait_ddpm),
        "trait DDPM diverges from the hand-written legacy loop"
    );

    // Legacy DDIM (η = 0.5): walk the subsampled grid with the free-function
    // transfer map; the last hop lands on t_prev = 0.
    let (steps, eta) = (4usize, 0.5f64);
    let legacy_ddim = {
        let taus = ddim_timesteps(t_total, steps);
        let mut rng = StdRng::seed_from_u64(601);
        let mut x = NdArray::randn(&[n_samples, n, l], &mut rng).mul(&tmask_b);
        for i in (0..taus.len()).rev() {
            let (t, t_prev) = (taus[i], if i == 0 { 0 } else { taus[i - 1] });
            let eps = trained.model.predict_eps_eval(&x, &cond_b, t);
            let mut next = ddim_mean(&x, &eps, &trained.schedule, t, t_prev, eta);
            let scale = ddim_noise_scale(&trained.schedule, t, t_prev, eta);
            if scale > 0.0 {
                add_reverse_noise_slice(next.data_mut(), scale, &mut rng);
            }
            x = next.mul(&tmask_b);
        }
        finish(&x)
    };
    let trait_ddim = {
        let mut rng = StdRng::seed_from_u64(601);
        impute(
            &trained,
            w,
            &ImputeOptions { n_samples, sampler: Sampler::Ddim { steps, eta } },
            &mut rng,
        )
        .unwrap()
    };
    assert!(
        legacy_ddim == sample_bytes(&trait_ddim),
        "trait DDIM diverges from the hand-written legacy loop"
    );
}

/// Grid edge cases through the public API: a step budget at or above `T`
/// degenerates to the full chain (same bytes as requesting exactly `T`), and
/// a budget of one still yields a well-formed two-evaluation chain.
#[test]
fn timestep_grid_edge_cases_through_impute() {
    let (data, trained) = trained_setup(true);
    let w = &data.windows(Split::Test, 12, 12)[0];
    let t_total = trained.schedule.t_steps();

    // steps >= T collapses to the full grid for every subsampled solver.
    for (over, exact) in [
        (Sampler::Ddim { steps: 100, eta: 0.0 }, Sampler::Ddim { steps: t_total, eta: 0.0 }),
        (
            Sampler::Pndm { steps: 100, order: 4 },
            Sampler::Pndm { steps: t_total, order: 4 },
        ),
    ] {
        let mut rng_a = StdRng::seed_from_u64(700);
        let mut rng_b = StdRng::seed_from_u64(700);
        let a = impute(&trained, w, &ImputeOptions { n_samples: 2, sampler: over }, &mut rng_a)
            .unwrap();
        let b = impute(&trained, w, &ImputeOptions { n_samples: 2, sampler: exact }, &mut rng_b)
            .unwrap();
        assert!(
            sample_bytes(&a) == sample_bytes(&b),
            "{over:?} does not degenerate to the full chain"
        );
        assert_eq!(rng_a.state(), rng_b.state());
    }

    // steps == 1 for every few-step solver: succeeds, finite output.
    for sampler in [
        Sampler::Ddim { steps: 1, eta: 0.0 },
        Sampler::Pndm { steps: 1, order: 4 },
        Sampler::Refine { steps: 1, strength: 0.5 },
    ] {
        let mut rng = StdRng::seed_from_u64(701);
        let res =
            impute(&trained, w, &ImputeOptions { n_samples: 2, sampler }, &mut rng).unwrap();
        for s in &res.samples {
            assert!(
                s.data().iter().all(|v| v.is_finite()),
                "{sampler:?} produced non-finite samples at steps == 1"
            );
        }
    }
}

/// Per-request stream invariance for every solver, at 1 and 4 pool threads:
/// a request coalesced into a batch draws exactly the noise a solo call
/// draws, so samples and the post-call RNG state match bit for bit — and
/// none of it depends on the thread count. One `#[test]` because
/// `st_par::set_threads` is process-global.
#[test]
fn solo_and_batched_streams_agree_for_every_solver_across_thread_counts() {
    let (data, trained) = trained_setup(true);
    let windows = data.windows(Split::Test, 12, 12);
    let w0 = &windows[0];
    let w1 = &windows[windows.len() - 1];
    let solvers = [
        Sampler::Ddpm,
        Sampler::Ddim { steps: 4, eta: 0.5 },
        Sampler::Pndm { steps: 4, order: 4 },
        Sampler::Refine { steps: 3, strength: 0.5 },
    ];

    // (solver index → per-request (bytes, rng state)) at one thread, the
    // reference every other thread count must reproduce.
    let mut reference: Vec<Vec<(Vec<Vec<u8>>, [u64; 4])>> = Vec::new();
    for threads in [1usize, 4] {
        st_par::set_threads(threads);
        for (si, &sampler) in solvers.iter().enumerate() {
            // Solo calls, one per request, each from its own stream.
            let solo: Vec<(Vec<Vec<u8>>, [u64; 4])> = (0..3u64)
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(800 + 10 * si as u64 + i);
                    let res = impute(
                        &trained,
                        if i % 2 == 0 { w0 } else { w1 },
                        &ImputeOptions { n_samples: 1 + i as usize, sampler },
                        &mut rng,
                    )
                    .unwrap();
                    (sample_bytes(&res), rng.state())
                })
                .collect();

            // The same three requests coalesced into one batch.
            let mut items: Vec<BatchItem<'_>> = (0..3u64)
                .map(|i| BatchItem {
                    window: if i % 2 == 0 { w0 } else { w1 },
                    n_samples: 1 + i as usize,
                    rng: StdRng::seed_from_u64(800 + 10 * si as u64 + i),
                })
                .collect();
            let batched = impute_batch(&trained, &mut items, sampler).unwrap();
            for (i, (res, item)) in batched.iter().zip(&items).enumerate() {
                assert!(
                    sample_bytes(res) == solo[i].0,
                    "{sampler:?}: batched request {i} diverges from solo at {threads} threads"
                );
                assert_eq!(
                    item.rng.state(),
                    solo[i].1,
                    "{sampler:?}: stream advancement differs solo vs batched (request {i})"
                );
            }

            if threads == 1 {
                reference.push(solo);
            } else {
                assert!(
                    reference[si] == solo,
                    "{sampler:?}: results depend on the thread count"
                );
            }
        }
    }
    st_par::set_threads(0);
}
