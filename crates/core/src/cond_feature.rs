//! Conditional feature extraction module `γ(·)` (paper Eq. 5).
//!
//! A *wide* single block that extracts the global context prior `H^pri` from
//! the interpolated conditional information:
//!
//! ```text
//! H^pri = MLP( φ_SA(H) + φ_TA(H) + φ_MP(H, A) )
//! φ_SA  = Norm(Attn_spa(H) + H)     — spatial global self-attention
//! φ_TA  = Norm(Attn_tem(H) + H)     — temporal self-attention
//! φ_MP  = Norm(MPNN(H, A) + H)      — graph message passing
//! ```
//!
//! All three branches read the same noise-free input, so `H^pri` contains
//! temporal, global-spatial and geographic structure but no diffusion noise.

use st_rand::Rng;
use st_graph::SensorGraph;
use st_tensor::graph::{Graph, Tx};
use st_tensor::nn::{LayerNorm, Mlp, Mpnn, MultiHeadAttention};
use st_tensor::param::ParamStore;

/// Reshape helpers shared by the PriSTI modules: a `[B, N, L, d]` hidden
/// state viewed per-node over time (temporal) or per-step over nodes
/// (spatial).
pub(crate) mod shapes {
    use super::*;

    /// `[B, N, L, d] -> [B*N, L, d]`.
    pub fn to_temporal(g: &mut Graph<'_>, x: Tx, b: usize, n: usize, l: usize, d: usize) -> Tx {
        g.reshape(x, &[b * n, l, d])
    }

    /// `[B*N, L, d] -> [B, N, L, d]`.
    pub fn from_temporal(g: &mut Graph<'_>, x: Tx, b: usize, n: usize, l: usize, d: usize) -> Tx {
        g.reshape(x, &[b, n, l, d])
    }

    /// `[B, N, L, d] -> [B*L, N, d]`.
    pub fn to_spatial(g: &mut Graph<'_>, x: Tx, b: usize, n: usize, l: usize, d: usize) -> Tx {
        let p = g.permute(x, &[0, 2, 1, 3]); // [B, L, N, d]
        g.reshape(p, &[b * l, n, d])
    }

    /// `[B*L, N, d] -> [B, N, L, d]`.
    pub fn from_spatial(g: &mut Graph<'_>, x: Tx, b: usize, n: usize, l: usize, d: usize) -> Tx {
        let r = g.reshape(x, &[b, l, n, d]);
        g.permute(r, &[0, 2, 1, 3])
    }
}

/// The conditional feature extraction module.
#[derive(Debug, Clone)]
pub struct CondFeatureModule {
    attn_spa: MultiHeadAttention,
    norm_spa: LayerNorm,
    attn_tem: MultiHeadAttention,
    norm_tem: LayerNorm,
    mpnn: Mpnn,
    norm_mp: LayerNorm,
    mlp: Mlp,
    d_model: usize,
}

impl CondFeatureModule {
    /// Register the module's parameters under `name`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        heads: usize,
        graph: &SensorGraph,
        mpnn_order: usize,
        adaptive_dim: usize,
        rng: &mut R,
    ) -> Self {
        let (fwd, bwd) = graph.transition_matrices();
        Self {
            attn_spa: MultiHeadAttention::new(store, &format!("{name}.attn_spa"), d_model, heads, rng),
            norm_spa: LayerNorm::new(store, &format!("{name}.norm_spa"), d_model),
            attn_tem: MultiHeadAttention::new(store, &format!("{name}.attn_tem"), d_model, heads, rng),
            norm_tem: LayerNorm::new(store, &format!("{name}.norm_tem"), d_model),
            mpnn: Mpnn::new(
                store,
                &format!("{name}.mpnn"),
                d_model,
                vec![fwd, bwd],
                graph.n_nodes(),
                mpnn_order,
                adaptive_dim,
                rng,
            ),
            norm_mp: LayerNorm::new(store, &format!("{name}.norm_mp"), d_model),
            mlp: Mlp::new(store, &format!("{name}.mlp"), d_model, d_model, d_model, rng),
            d_model,
        }
    }

    /// Compute `H^pri` from `h [B, N, L, d]`.
    pub fn forward(&self, g: &mut Graph<'_>, h: Tx, b: usize, n: usize, l: usize) -> Tx {
        let d = self.d_model;

        // φ_TA: temporal self-attention with residual + norm.
        let ht = shapes::to_temporal(g, h, b, n, l, d);
        let at = self.attn_tem.forward_self(g, ht);
        let rt = g.add(at, ht);
        let nt = self.norm_tem.forward(g, rt);
        let phi_ta = shapes::from_temporal(g, nt, b, n, l, d);

        // φ_SA: spatial self-attention with residual + norm.
        let hs = shapes::to_spatial(g, h, b, n, l, d);
        let asp = self.attn_spa.forward_self(g, hs);
        let rs = g.add(asp, hs);
        let ns = self.norm_spa.forward(g, rs);
        let phi_sa = shapes::from_spatial(g, ns, b, n, l, d);

        // φ_MP: message passing with residual + norm.
        let hm = shapes::to_spatial(g, h, b, n, l, d);
        let am = self.mpnn.forward(g, hm);
        let rm = g.add(am, hm);
        let nm = self.norm_mp.forward(g, rm);
        let phi_mp = shapes::from_spatial(g, nm, b, n, l, d);

        let sum1 = g.add(phi_sa, phi_ta);
        let sum = g.add(sum1, phi_mp);
        self.mlp.forward(g, sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;
    use st_graph::random_plane_layout;
    use st_tensor::ndarray::NdArray;

    fn module(n: usize, d: usize) -> (ParamStore, CondFeatureModule) {
        let mut rng = StdRng::seed_from_u64(40);
        let graph = SensorGraph::from_coords(random_plane_layout(n, 20.0, 1), 0.1);
        let mut store = ParamStore::new();
        let m = CondFeatureModule::new(&mut store, "cf", d, 2, &graph, 2, 4, &mut rng);
        (store, m)
    }

    #[test]
    fn forward_shape_preserved() {
        let (store, m) = module(5, 8);
        let mut rng = StdRng::seed_from_u64(41);
        let mut g = Graph::new(&store);
        let h = g.input(NdArray::randn(&[2, 5, 6, 8], &mut rng));
        let out = m.forward(&mut g, h, 2, 5, 6);
        assert_eq!(g.shape(out), &[2, 5, 6, 8]);
    }

    #[test]
    fn all_branches_receive_gradients() {
        let (store, m) = module(4, 8);
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = Graph::new(&store);
        let h = g.input(NdArray::randn(&[1, 4, 5, 8], &mut rng));
        let out = m.forward(&mut g, h, 1, 4, 5);
        let t = g.input(NdArray::zeros(&[1, 4, 5, 8]));
        let mk = g.input(NdArray::ones(&[1, 4, 5, 8]));
        let loss = g.mse_masked(out, t, mk);
        let grads = g.backward(loss);
        for p in ["cf.attn_spa.wq.w", "cf.attn_tem.wq.w", "cf.mpnn.proj.w", "cf.mlp.l1.w", "cf.norm_spa.gain"] {
            assert!(grads.get(p).is_some(), "no gradient for {p}");
        }
    }

    #[test]
    fn shape_helpers_round_trip() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(43);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[2, 3, 4, 5], &mut rng));
        let t = shapes::to_temporal(&mut g, x, 2, 3, 4, 5);
        let back = shapes::from_temporal(&mut g, t, 2, 3, 4, 5);
        assert_eq!(g.value(back), g.value(x));
        let s = shapes::to_spatial(&mut g, x, 2, 3, 4, 5);
        let back2 = shapes::from_spatial(&mut g, s, 2, 3, 4, 5);
        assert_eq!(g.value(back2), g.value(x));
    }
}
