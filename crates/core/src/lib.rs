//! # pristi-core
//!
//! The paper's primary contribution: **PriSTI**, a conditional diffusion
//! framework for spatiotemporal imputation (Liu et al., ICDE 2023),
//! implemented from scratch on the `st-tensor` autodiff substrate.
//!
//! The model (Fig. 2 / Fig. 3 of the paper) consists of:
//!
//! * a **conditional feature extraction module** `γ(·)` ([`cond_feature`])
//!   that turns linearly-interpolated observations into a global context
//!   prior `H^pri` by mixing spatial attention, temporal attention and
//!   graph message passing in a *wide* (single-layer, parallel) block
//!   (Eq. 5);
//! * a **noise estimation module** ([`noise_estimation`]) — a *deep* stack
//!   of layers that first learn temporal dependencies (`γ_T`) and then
//!   spatial ones (`γ_S`), with attention weights computed from `H^pri`
//!   (Eqs. 6–8), virtual-node downsampling for the spatial attention
//!   (Eq. 9), and DiffWave-style gated residual/skip connections;
//! * **auxiliary information** `U` ([`aux`]) — sinusoidal temporal encoding
//!   plus a learnable node embedding — and a diffusion-step embedding;
//! * the **training loop** of Algorithm 1 ([`train`]) and the **imputation /
//!   ensemble sampling** of Algorithm 2 ([`impute`]) — which by default runs
//!   the prior-cached inference path (DESIGN.md §11): everything derived
//!   from `H^pri` is computed once per request into a
//!   [`model::PriorCache`], and each denoise step evaluates only the
//!   noise-dependent half of the network.
//!
//! Every ablation from Table VI (`mix-STI`, `w/o CF`, `w/o spa`, `w/o tem`,
//! `w/o MPNN`, `w/o Attn`) and the CSDI comparator are expressed as
//! [`config::PristiConfig`] switches over the same components, so the
//! ablation study compares exactly what the paper compares.
//!
//! # Example
//!
//! Every public entry point returns [`error::Result`] — malformed input is a
//! typed [`error::PristiError`], never a panic.
//!
//! ```no_run
//! use pristi_core::train::{train, TrainConfig};
//! use pristi_core::{impute, ImputeOptions, PristiConfig, Sampler};
//! use st_data::generators::{generate_air_quality, AirQualityConfig};
//! use st_data::missing::inject_point_missing;
//! use st_data::dataset::Split;
//! use st_rand::{StdRng, SeedableRng};
//!
//! # fn main() -> pristi_core::error::Result<()> {
//! // A synthetic air-quality panel with 25 % of observations hidden.
//! let mut data = generate_air_quality(&AirQualityConfig::default());
//! data.eval_mask = inject_point_missing(&data.observed_mask, 0.25, 7);
//!
//! // Train the full model (ablations: `PristiConfig::small().with_variant(..)`).
//! let trained = train(&data, PristiConfig::small(), &TrainConfig::default())?;
//!
//! // Probabilistic imputation of a test window.
//! let window = &data.windows(Split::Test, 24, 24)[0];
//! let mut rng = StdRng::seed_from_u64(0);
//! let full = impute(&trained, window, &ImputeOptions { n_samples: 32, sampler: Sampler::Ddpm }, &mut rng)?;
//! let fast = impute(
//!     &trained,
//!     window,
//!     &ImputeOptions { n_samples: 32, sampler: Sampler::Ddim { steps: 8, eta: 0.0 } },
//!     &mut rng,
//! )?;
//! let (median, lo, hi) = (full.median(), full.quantile(0.05), full.quantile(0.95));
//! # let _ = (median, lo, hi, fast);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod aux;
pub mod cond_feature;
pub mod config;
pub mod error;
pub mod impute;
pub mod model;
pub mod noise_estimation;
pub mod sampler;
pub mod train;

pub use config::{ModelVariant, PristiConfig};
pub use error::{PristiError, Result};
pub use impute::{
    impute, impute_batch, impute_batch_with, impute_prepared, BatchItem, ImputationResult,
    ImputeOptions, PreparedWindow, PriorMode,
};
pub use model::{PriorCache, PristiModel};
pub use sampler::Sampler;
pub use train::{train, Reporter, TrainConfig, TrainedModel};
