//! Typed errors for the public PriSTI API.
//!
//! The train / impute / checkpoint / serve entry points return
//! [`PristiError`] for every malformed-input condition instead of panicking;
//! `assert!` stays reserved for *internal* invariants (states the library
//! itself guarantees, where a failure is a bug in this crate rather than in
//! the caller's input).

use std::fmt;

/// Workspace-standard result alias for the public API.
pub type Result<T> = std::result::Result<T, PristiError>;

/// Everything that can go wrong at the public train / impute / checkpoint /
/// serve surface.
#[derive(Debug, Clone, PartialEq)]
pub enum PristiError {
    /// An input tensor's shape disagrees with what the model was built for.
    ShapeMismatch {
        /// What was being checked (e.g. `"window nodes"`).
        what: &'static str,
        /// The shape (or dimension) the model expects.
        expected: Vec<usize>,
        /// The shape (or dimension) the caller supplied.
        got: Vec<usize>,
    },
    /// A configuration that would leave the model (or a request) degenerate.
    DegenerateConfig(String),
    /// A checkpoint file is structurally damaged: bad magic, failed
    /// checksum, truncation, or an inconsistent payload.
    CheckpointCorrupt(String),
    /// A checkpoint with a valid header but a format version this build
    /// does not understand.
    CheckpointVersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// The single version this build supports.
        supported: u32,
    },
    /// A service request missed its deadline before a worker picked it up.
    Timeout {
        /// How long the request waited, in milliseconds.
        waited_ms: u64,
        /// The deadline it was given, in milliseconds.
        deadline_ms: u64,
    },
    /// The service rejected a submission at admission: either the bounded
    /// queue is at hard capacity, or admission control shed a best-effort
    /// request because the queue depth crossed the shed threshold.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
        /// Queue depth observed at the rejecting submit.
        depth: usize,
        /// `true` when the rejection was a load-shedding decision (a
        /// best-effort request over the shed threshold) rather than the
        /// queue being at hard capacity.
        shed: bool,
    },
    /// The service has shut down (or its worker died) before responding.
    ServiceStopped,
    /// A service worker panicked while serving a batch. The panic is
    /// contained — every affected request gets this error and the service
    /// drains — but it indicates a bug in the model or a test fault hook.
    WorkerPanicked(String),
    /// An underlying I/O failure (checkpoint read/write), with the
    /// `std::io::Error` rendered to keep this type `Clone + PartialEq`.
    Io(String),
}

impl PristiError {
    /// Stable machine-readable label for this error's variant, used as the
    /// `error.kind` field of the serve/stream JSONL wire format (see README
    /// §Command line). The human-readable `Display` rendering becomes
    /// `error.detail`; `kind` is the field clients are meant to match on.
    ///
    /// ```
    /// use pristi_core::PristiError;
    /// let err = PristiError::DegenerateConfig("zero samples".into());
    /// assert_eq!(err.kind(), "degenerate_config");
    /// ```
    pub fn kind(&self) -> &'static str {
        match self {
            PristiError::ShapeMismatch { .. } => "shape_mismatch",
            PristiError::DegenerateConfig(_) => "degenerate_config",
            PristiError::CheckpointCorrupt(_) => "checkpoint_corrupt",
            PristiError::CheckpointVersionMismatch { .. } => "checkpoint_version_mismatch",
            PristiError::Timeout { .. } => "timeout",
            PristiError::QueueFull { shed, .. } => {
                if *shed {
                    "shed"
                } else {
                    "queue_full"
                }
            }
            PristiError::ServiceStopped => "service_stopped",
            PristiError::WorkerPanicked(_) => "worker_panicked",
            PristiError::Io(_) => "io",
        }
    }
}

impl fmt::Display for PristiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PristiError::ShapeMismatch { what, expected, got } => {
                write!(f, "shape mismatch for {what}: expected {expected:?}, got {got:?}")
            }
            PristiError::DegenerateConfig(msg) => write!(f, "degenerate configuration: {msg}"),
            PristiError::CheckpointCorrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            PristiError::CheckpointVersionMismatch { found, supported } => write!(
                f,
                "checkpoint version mismatch: file is v{found}, this build supports v{supported}"
            ),
            PristiError::Timeout { waited_ms, deadline_ms } => {
                write!(f, "request timed out after {waited_ms} ms (deadline {deadline_ms} ms)")
            }
            PristiError::QueueFull { capacity, depth, shed } => {
                if *shed {
                    write!(
                        f,
                        "request shed by admission control (queue depth {depth}, capacity {capacity})"
                    )
                } else {
                    write!(f, "service queue full (depth {depth}, capacity {capacity})")
                }
            }
            PristiError::ServiceStopped => write!(f, "imputation service has stopped"),
            PristiError::WorkerPanicked(msg) => {
                write!(f, "service worker panicked while serving a batch: {msg}")
            }
            PristiError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for PristiError {}

impl From<std::io::Error> for PristiError {
    fn from(e: std::io::Error) -> Self {
        PristiError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PristiError::ShapeMismatch { what: "window nodes", expected: vec![8], got: vec![4] };
        assert!(e.to_string().contains("window nodes"));
        let e = PristiError::CheckpointVersionMismatch { found: 9, supported: 1 };
        assert!(e.to_string().contains("v9"));
        let e = PristiError::QueueFull { capacity: 16, depth: 16, shed: false };
        assert!(e.to_string().contains("16"));
        let e = PristiError::QueueFull { capacity: 16, depth: 12, shed: true };
        assert!(e.to_string().contains("shed"), "shed rejection must be distinguishable");
        let e = PristiError::WorkerPanicked("boom".into());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: PristiError = io.into();
        assert!(matches!(e, PristiError::Io(ref m) if m.contains("nope")));
    }
}
