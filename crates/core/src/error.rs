//! Typed errors for the public PriSTI API.
//!
//! The train / impute / checkpoint / serve entry points return
//! [`PristiError`] for every malformed-input condition instead of panicking;
//! `assert!` stays reserved for *internal* invariants (states the library
//! itself guarantees, where a failure is a bug in this crate rather than in
//! the caller's input).

use std::fmt;

/// Workspace-standard result alias for the public API.
pub type Result<T> = std::result::Result<T, PristiError>;

/// Everything that can go wrong at the public train / impute / checkpoint /
/// serve surface.
#[derive(Debug, Clone, PartialEq)]
pub enum PristiError {
    /// An input tensor's shape disagrees with what the model was built for.
    ShapeMismatch {
        /// What was being checked (e.g. `"window nodes"`).
        what: &'static str,
        /// The shape (or dimension) the model expects.
        expected: Vec<usize>,
        /// The shape (or dimension) the caller supplied.
        got: Vec<usize>,
    },
    /// A configuration that would leave the model (or a request) degenerate.
    DegenerateConfig(String),
    /// A checkpoint file is structurally damaged: bad magic, failed
    /// checksum, truncation, or an inconsistent payload.
    CheckpointCorrupt(String),
    /// A checkpoint with a valid header but a format version this build
    /// does not understand.
    CheckpointVersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// The single version this build supports.
        supported: u32,
    },
    /// A service request missed its deadline before a worker picked it up.
    Timeout {
        /// How long the request waited, in milliseconds.
        waited_ms: u64,
        /// The deadline it was given, in milliseconds.
        deadline_ms: u64,
    },
    /// The service's bounded request queue is at capacity.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The service has shut down (or its worker died) before responding.
    ServiceStopped,
    /// An underlying I/O failure (checkpoint read/write), with the
    /// `std::io::Error` rendered to keep this type `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for PristiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PristiError::ShapeMismatch { what, expected, got } => {
                write!(f, "shape mismatch for {what}: expected {expected:?}, got {got:?}")
            }
            PristiError::DegenerateConfig(msg) => write!(f, "degenerate configuration: {msg}"),
            PristiError::CheckpointCorrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            PristiError::CheckpointVersionMismatch { found, supported } => write!(
                f,
                "checkpoint version mismatch: file is v{found}, this build supports v{supported}"
            ),
            PristiError::Timeout { waited_ms, deadline_ms } => {
                write!(f, "request timed out after {waited_ms} ms (deadline {deadline_ms} ms)")
            }
            PristiError::QueueFull { capacity } => {
                write!(f, "service queue full (capacity {capacity})")
            }
            PristiError::ServiceStopped => write!(f, "imputation service has stopped"),
            PristiError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for PristiError {}

impl From<std::io::Error> for PristiError {
    fn from(e: std::io::Error) -> Self {
        PristiError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PristiError::ShapeMismatch { what: "window nodes", expected: vec![8], got: vec![4] };
        assert!(e.to_string().contains("window nodes"));
        let e = PristiError::CheckpointVersionMismatch { found: 9, supported: 1 };
        assert!(e.to_string().contains("v9"));
        let e = PristiError::QueueFull { capacity: 16 };
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: PristiError = io.into();
        assert!(matches!(e, PristiError::Io(ref m) if m.contains("nope")));
    }
}
