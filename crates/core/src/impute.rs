//! Imputation process with a trained model (Algorithm 2).
//!
//! All missing values of a window become the imputation target; the reverse
//! process starts from Gaussian noise and is guided by the interpolated
//! conditional information. An ensemble of samples approximates the
//! imputation distribution: the median is the deterministic imputation
//! (evaluated by MAE/MSE) and the quantiles feed CRPS and the Fig. 6
//! uncertainty bands.

use crate::train::{build_cond, TrainedModel};
use st_rand::StdRng;
use st_data::dataset::Window;
use st_diffusion::p_sample_step;
use st_metrics::quantile_of_sorted;
use st_tensor::ndarray::NdArray;

/// The sample ensemble produced for one window.
#[derive(Debug, Clone)]
pub struct ImputationResult {
    /// Denormalised samples, each `[N, L]`, covering every position (observed
    /// positions are copied from the data).
    pub samples: Vec<NdArray>,
    /// Mask of positions that were imputed (1) rather than conditioned on.
    pub target_mask: NdArray,
}

impl ImputationResult {
    /// Per-position median across samples — the deterministic imputation.
    pub fn median(&self) -> NdArray {
        self.quantile(0.5)
    }

    /// Per-position quantile across samples.
    pub fn quantile(&self, alpha: f64) -> NdArray {
        let shape = self.samples[0].shape().to_vec();
        let numel = self.samples[0].numel();
        let mut out = NdArray::zeros(&shape);
        let mut buf = vec![0.0f32; self.samples.len()];
        for i in 0..numel {
            for (s, sample) in self.samples.iter().enumerate() {
                buf[s] = sample.data()[i];
            }
            buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN in imputation sample"));
            out.data_mut()[i] = quantile_of_sorted(&buf, alpha) as f32;
        }
        out
    }

    /// Flatten samples to the `[S, P]` layout expected by
    /// [`st_metrics::crps_ensemble`].
    pub fn samples_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.samples.len() * self.samples[0].numel());
        for s in &self.samples {
            out.extend_from_slice(s.data());
        }
        out
    }

    /// Number of samples in the ensemble.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }
}

/// Impute one window with a trained model, generating `n_samples` posterior
/// samples in a single batched reverse pass.
pub fn impute_window(
    trained: &TrainedModel,
    window: &Window,
    n_samples: usize,
    rng: &mut StdRng,
) -> ImputationResult {
    impute_window_impl(trained, window, n_samples, None, rng)
}

/// Accelerated imputation: the same trained model sampled with `ddim_steps`
/// deterministic DDIM steps instead of the full `T`-step ancestral loop
/// (the efficiency direction named in the paper's conclusion). Quality
/// degrades gracefully as `ddim_steps` shrinks; 8–12 steps typically match
/// the full loop closely.
pub fn impute_window_fast(
    trained: &TrainedModel,
    window: &Window,
    n_samples: usize,
    ddim_steps: usize,
    rng: &mut StdRng,
) -> ImputationResult {
    impute_window_impl(trained, window, n_samples, Some(ddim_steps), rng)
}

fn impute_window_impl(
    trained: &TrainedModel,
    window: &Window,
    n_samples: usize,
    ddim_steps: Option<usize>,
    rng: &mut StdRng,
) -> ImputationResult {
    assert!(n_samples >= 1, "need at least one sample");
    let _span = st_obs::span!(
        "impute_window",
        samples = n_samples as u64,
        ddim_steps = ddim_steps.unwrap_or(0) as u64,
    );
    let (n, l) = (window.n_nodes(), window.len());
    assert_eq!(n, trained.model.n_nodes(), "window node count mismatch");
    assert_eq!(l, trained.model.window_len(), "window length mismatch");

    let mut values_z = window.values.clone();
    trained.normalizer.normalize_window(&mut values_z);
    let cond_mask = window.cond_mask();
    // Everything not conditioned on is the imputation target (Algorithm 2:
    // "the imputation target is all missing values").
    let target_mask = cond_mask.map(|v| 1.0 - v);
    let cond = build_cond(&values_z, &cond_mask, trained.model.cfg.use_interpolation);

    // Batch the whole ensemble: [S, N, L] with the conditioner replicated.
    let mut cond_b = NdArray::zeros(&[n_samples, n, l]);
    let mut tmask_b = NdArray::zeros(&[n_samples, n, l]);
    for s in 0..n_samples {
        cond_b.data_mut()[s * n * l..(s + 1) * n * l].copy_from_slice(cond.data());
        tmask_b.data_mut()[s * n * l..(s + 1) * n * l].copy_from_slice(target_mask.data());
    }

    let mut x = NdArray::randn(&[n_samples, n, l], rng).mul(&tmask_b);
    match ddim_steps {
        None => {
            for t in (1..=trained.schedule.t_steps()).rev() {
                let _step_span = st_obs::span!("denoise_step", t = t as u64);
                let eps_hat = trained.model.predict_eps_eval(&x, &cond_b, t);
                x = p_sample_step(&x, &eps_hat, &trained.schedule, t, rng).mul(&tmask_b);
            }
        }
        Some(steps) => {
            let taus = st_diffusion::ddim_timesteps(trained.schedule.t_steps(), steps);
            for i in (0..taus.len()).rev() {
                let t = taus[i];
                let t_prev = if i == 0 { 0 } else { taus[i - 1] };
                let _step_span = st_obs::span!("denoise_step", t = t as u64, t_prev = t_prev as u64);
                let eps_hat = trained.model.predict_eps_eval(&x, &cond_b, t);
                x = st_diffusion::ddim_step(&x, &eps_hat, &trained.schedule, t, t_prev, 0.0, rng)
                    .mul(&tmask_b);
            }
        }
    }

    // Merge with conditioned values, denormalise per sample (sample-parallel:
    // each ensemble member is independent).
    let cond_part = values_z.mul(&cond_mask);
    let xd = x.data();
    let samples = st_par::par_map(n_samples, |s| {
        let sample = NdArray::from_vec(&[n, l], xd[s * n * l..(s + 1) * n * l].to_vec());
        let mut merged = sample.mul(&target_mask).add(&cond_part);
        trained.normalizer.denormalize_window(&mut merged);
        merged
    });
    ImputationResult { samples, target_mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PristiConfig;
    use crate::train::{train, TrainConfig};
    use st_rand::SeedableRng;
    use st_data::dataset::Split;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;
    use st_metrics::masked_mae;

    fn tiny_cfg() -> PristiConfig {
        let mut c = PristiConfig::small();
        c.d_model = 8;
        c.heads = 2;
        c.layers = 1;
        c.t_steps = 10;
        c.time_emb_dim = 8;
        c.node_emb_dim = 4;
        c.step_emb_dim = 8;
        c.virtual_nodes = 4;
        c.adaptive_dim = 2;
        c
    }

    fn trained_setup() -> (st_data::SpatioTemporalDataset, crate::train::TrainedModel) {
        let mut data = generate_air_quality(&AirQualityConfig {
            n_nodes: 8,
            n_days: 8,
            seed: 6,
            ..Default::default()
        });
        data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 99);
        let tc = TrainConfig {
            epochs: 6,
            batch_size: 4,
            window_len: 12,
            window_stride: 12,
            seed: 4,
            ..Default::default()
        };
        let trained = train(&data, tiny_cfg(), &tc);
        (data, trained)
    }

    #[test]
    fn imputation_preserves_observed_and_fills_missing() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut rng = StdRng::seed_from_u64(1);
        let res = impute_window(&trained, w, 4, &mut rng);
        assert_eq!(res.n_samples(), 4);
        let med = res.median();
        let cm = w.cond_mask();
        for i in 0..med.numel() {
            if cm.data()[i] > 0.0 {
                assert!(
                    (med.data()[i] - w.values.data()[i]).abs() < 1e-2,
                    "observed value altered at {i}: {} vs {}",
                    med.data()[i],
                    w.values.data()[i]
                );
            } else {
                assert!(med.data()[i].is_finite());
            }
        }
    }

    #[test]
    fn quantiles_are_ordered() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut rng = StdRng::seed_from_u64(2);
        let res = impute_window(&trained, w, 8, &mut rng);
        let q05 = res.quantile(0.05);
        let q50 = res.quantile(0.50);
        let q95 = res.quantile(0.95);
        for i in 0..q05.numel() {
            assert!(q05.data()[i] <= q50.data()[i] + 1e-5);
            assert!(q50.data()[i] <= q95.data()[i] + 1e-5);
        }
    }

    #[test]
    fn fast_ddim_imputation_close_to_full() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let full = impute_window(&trained, w, 6, &mut r1);
        let fast = impute_window_fast(&trained, w, 6, 5, &mut r2);
        assert_eq!(fast.n_samples(), 6);
        // both valid imputations: finite, observed preserved
        let cm = w.cond_mask();
        for res in [&full, &fast] {
            let med = res.median();
            for i in 0..med.numel() {
                assert!(med.data()[i].is_finite());
                if cm.data()[i] > 0.0 {
                    assert!((med.data()[i] - w.values.data()[i]).abs() < 1e-2);
                }
            }
        }
        // the DDIM median should be in the same ballpark as the full median
        let mf = full.median();
        let md = fast.median();
        let mae = st_metrics::masked_mae(md.data(), mf.data(), w.eval.data());
        assert!(mae.is_finite());
    }

    #[test]
    fn trained_model_beats_wild_guess() {
        // Even a briefly trained tiny model should beat imputing a constant
        // far from the data range.
        let (data, trained) = trained_setup();
        let windows = data.windows(Split::Test, 12, 12);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model_err = 0.0;
        let mut naive_err = 0.0;
        let mut count = 0;
        for w in windows.iter().take(3) {
            if w.eval.data().iter().all(|&v| v == 0.0) {
                continue;
            }
            let res = impute_window(&trained, w, 4, &mut rng);
            let med = res.median();
            model_err += masked_mae(med.data(), w.values.data(), w.eval.data());
            let zeros = vec![0.0f32; med.numel()];
            naive_err += masked_mae(&zeros, w.values.data(), w.eval.data());
            count += 1;
        }
        assert!(count > 0, "no eval positions in test windows");
        assert!(
            model_err < naive_err,
            "model MAE {model_err:.3} should beat zero-imputation {naive_err:.3}"
        );
    }
}
