//! Imputation process with a trained model (Algorithm 2).
//!
//! All missing values of a window become the imputation target; the reverse
//! process starts from Gaussian noise and is guided by the interpolated
//! conditional information. An ensemble of samples approximates the
//! imputation distribution: the median is the deterministic imputation
//! (evaluated by MAE/MSE) and the quantiles feed CRPS and the Fig. 6
//! uncertainty bands.
//!
//! # The batched engine and RNG streams
//!
//! [`impute`] is a thin wrapper over [`impute_batch`], which coalesces any
//! number of *requests* — each a window with its own sample count and its own
//! RNG stream — into one `[S_total, N, L]` reverse pass: a single
//! `predict_eps_eval` per denoise step for the whole batch. Every random draw
//! (initial noise, per-step reverse noise) comes from the owning request's
//! stream, sliced per request, and every deterministic update is element-wise,
//! so a request's samples are **bitwise identical** no matter which other
//! requests share its batch. This is the property the `st-serve` micro-batching
//! service builds on; `crates/st-serve/tests/service.rs` pins it under
//! concurrent load.
//!
//! # Solvers
//!
//! The reverse loop is generic over
//! [`st_diffusion::process::GenerativeProcess`]: the [`Sampler`] spec picks a
//! solver, the solver owns the schedule walk and the deterministic update,
//! and this driver owns the batch tensor, the network evaluations, and every
//! random draw. See `crates/core/src/sampler.rs` for the spec surface and
//! DESIGN.md §15 for the contract.

use crate::error::{PristiError, Result};
use crate::model::PriorCache;
use crate::train::{build_cond, TrainedModel};
pub use crate::sampler::Sampler;
use st_data::dataset::Window;
use st_diffusion::add_reverse_noise_slice;
use st_diffusion::process::ChainInit;
use st_metrics::quantile_of_sorted;
use st_rand::StdRng;
use st_tensor::ndarray::NdArray;
use std::sync::OnceLock;

/// Whether the reverse loop reuses the step-invariant prior tensors.
///
/// PriSTI's conditional prior `H^pri` — and everything derived from it,
/// including every prior-weighted attention matrix — is constant across the
/// whole reverse chain, so [`PriorMode::Cached`] computes it once per batch
/// ([`crate::model::PristiModel::build_prior_cache`]) and runs only the
/// step-dependent noise path per denoise step. Both modes are bitwise
/// identical (pinned in `tests/prior_cache.rs`); `Recompute` is retained as
/// the reference implementation and for A/B benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorMode {
    /// Build a [`crate::model::PriorCache`] once per batch (the default).
    #[default]
    Cached,
    /// Rebuild the full graph — prior included — at every denoise step (the
    /// pre-cache behaviour).
    Recompute,
}

/// Options for [`impute`]: ensemble size and sampler choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImputeOptions {
    /// Posterior samples to draw (the paper evaluates with 32–100; the
    /// default of 8 suits interactive serving).
    pub n_samples: usize,
    /// Reverse-process sampler.
    pub sampler: Sampler,
}

impl Default for ImputeOptions {
    fn default() -> Self {
        Self { n_samples: 8, sampler: Sampler::Ddpm }
    }
}

/// Per-request conditioning, precomputed once: normalised values, masks and
/// the interpolated conditional `𝒳`.
///
/// [`impute_batch`] builds these internally per request; streaming callers
/// build one *incrementally* (maintaining `values_z` and the interpolation
/// across window shifts, see `st-serve`'s `StreamSession`) and hand it to
/// [`impute_prepared`], skipping the per-tick `cond_prep` stage entirely.
#[derive(Debug, Clone)]
pub struct PreparedWindow {
    values_z: NdArray,
    cond_mask: NdArray,
    target_mask: NdArray,
    cond: NdArray,
}

impl PreparedWindow {
    /// Prepare a cold window: normalise, derive masks, build the conditional.
    ///
    /// Returns [`PristiError::ShapeMismatch`] when the window disagrees with
    /// the model's node count / window length.
    pub fn prepare(trained: &TrainedModel, window: &Window) -> Result<Self> {
        let (n, l) = (trained.model.n_nodes(), trained.model.window_len());
        if window.n_nodes() != n {
            return Err(PristiError::ShapeMismatch {
                what: "window node count",
                expected: vec![n],
                got: vec![window.n_nodes()],
            });
        }
        if window.len() != l {
            return Err(PristiError::ShapeMismatch {
                what: "window length",
                expected: vec![l],
                got: vec![window.len()],
            });
        }
        let mut values_z = window.values.clone();
        trained.normalizer.normalize_window(&mut values_z);
        let cond_mask = window.cond_mask();
        // Everything not conditioned on is the imputation target
        // (Algorithm 2: "the imputation target is all missing values").
        let target_mask = cond_mask.map(|v| 1.0 - v);
        let cond = build_cond(&values_z, &cond_mask, trained.model.cfg.use_interpolation);
        Ok(Self { values_z, cond_mask, target_mask, cond })
    }

    /// Assemble a prepared window from caller-maintained parts: already
    /// normalised values `values_z` (`[N, L]`), the conditioning mask, and —
    /// when the model conditions on interpolation — the interpolated
    /// conditional `interp`.
    ///
    /// The caller guarantees provenance: `interp` must be bitwise what
    /// `st_data::linear_interpolate(values_z, cond_mask, 0.0)` would return
    /// (e.g. maintained incrementally by `st_data::SlidingInterp`), otherwise
    /// the warm path diverges from a cold [`PreparedWindow::prepare`].
    ///
    /// Returns [`PristiError::ShapeMismatch`] on shape disagreements and
    /// [`PristiError::DegenerateConfig`] when the model needs interpolation
    /// but `interp` is `None`.
    pub fn from_parts(
        trained: &TrainedModel,
        values_z: NdArray,
        cond_mask: NdArray,
        interp: Option<&NdArray>,
    ) -> Result<Self> {
        let (n, l) = (trained.model.n_nodes(), trained.model.window_len());
        for (what, shape) in
            [("prepared values_z", values_z.shape()), ("prepared cond_mask", cond_mask.shape())]
        {
            if shape != [n, l] {
                return Err(PristiError::ShapeMismatch {
                    what,
                    expected: vec![n, l],
                    got: shape.to_vec(),
                });
            }
        }
        let target_mask = cond_mask.map(|v| 1.0 - v);
        let cond = if trained.model.cfg.use_interpolation {
            let interp = interp.ok_or_else(|| {
                PristiError::DegenerateConfig(
                    "model conditions on interpolation: PreparedWindow::from_parts needs interp"
                        .into(),
                )
            })?;
            if interp.shape() != [n, l] {
                return Err(PristiError::ShapeMismatch {
                    what: "prepared interp",
                    expected: vec![n, l],
                    got: interp.shape().to_vec(),
                });
            }
            interp.clone()
        } else {
            values_z.mul(&cond_mask)
        };
        Ok(Self { values_z, cond_mask, target_mask, cond })
    }

    /// The conditional `𝒳` this window feeds the denoiser (interpolated when
    /// the model uses interpolation, masked values otherwise).
    pub fn cond(&self) -> &NdArray {
        &self.cond
    }

    /// Mask of positions that will be imputed (1) rather than conditioned on.
    pub fn target_mask(&self) -> &NdArray {
        &self.target_mask
    }

    /// Build the step-invariant prior cache for `n_samples` ensemble members
    /// of this window — the reusable half of the denoiser. Streaming callers
    /// keep the returned cache across ticks while the window content is
    /// unchanged and pass it to [`impute_prepared`].
    pub fn build_prior(&self, trained: &TrainedModel, n_samples: usize) -> PriorCache {
        let (n, l) = (trained.model.n_nodes(), trained.model.window_len());
        let cond_r = NdArray::from_vec(&[1, n, l], self.cond.data().to_vec());
        trained.model.build_prior_cache(&cond_r, &[n_samples])
    }
}

/// One request of a batched reverse pass: a window, how many ensemble samples
/// it wants, and the RNG stream that owns *all* of its randomness.
pub struct BatchItem<'a> {
    /// The window to impute.
    pub window: &'a Window,
    /// Ensemble size for this request.
    pub n_samples: usize,
    /// This request's private noise stream. After [`impute_batch`] returns
    /// it has advanced exactly as far as a solo [`impute`] call would have
    /// advanced it.
    pub rng: StdRng,
}

/// The sample ensemble produced for one window.
#[derive(Debug, Clone)]
pub struct ImputationResult {
    /// Denormalised samples, each `[N, L]`, covering every position (observed
    /// positions are copied from the data).
    pub samples: Vec<NdArray>,
    /// Mask of positions that were imputed (1) rather than conditioned on.
    pub target_mask: NdArray,
    /// Lazily built `[P, S]` position-major sorted layout: each position's
    /// `S` ensemble values sorted once, shared by every quantile query.
    sorted: OnceLock<Vec<f32>>,
}

impl ImputationResult {
    /// Bundle an ensemble. The samples must be non-empty and same-shaped
    /// (internal invariant: [`impute_batch`] validates request sample counts
    /// before sampling).
    pub fn new(samples: Vec<NdArray>, target_mask: NdArray) -> Self {
        assert!(!samples.is_empty(), "ensemble cannot be empty");
        Self { samples, target_mask, sorted: OnceLock::new() }
    }

    /// Per-position median across samples — the deterministic imputation.
    pub fn median(&self) -> NdArray {
        self.quantile(0.5)
    }

    /// Per-position quantile across samples. `alpha` is clamped to `[0, 1]`
    /// (a NaN `alpha` is treated as the median).
    ///
    /// The first quantile query sorts each position's ensemble once into a
    /// cached `[P, S]` layout; every further query (median + q05 + q95 is the
    /// common pattern) is a single interpolation pass over that cache instead
    /// of a fresh sort per position per call.
    pub fn quantile(&self, alpha: f64) -> NdArray {
        let alpha = if alpha.is_nan() { 0.5 } else { alpha.clamp(0.0, 1.0) };
        let s = self.samples.len();
        let sorted = self.sorted_by_position();
        let mut out = NdArray::zeros(self.samples[0].shape());
        for (pi, o) in out.data_mut().iter_mut().enumerate() {
            *o = quantile_of_sorted(&sorted[pi * s..(pi + 1) * s], alpha) as f32;
        }
        out
    }

    /// The cached `[P, S]` sorted layout, built on first use: transpose the
    /// ensemble to position-major order, then sort each position's `S`-run.
    /// Runs are independent, so the sort parallelises over position blocks
    /// (block boundaries derive from shape only — see DESIGN.md §9).
    fn sorted_by_position(&self) -> &[f32] {
        self.sorted.get_or_init(|| {
            let s = self.samples.len();
            let p = self.samples[0].numel();
            let mut buf = vec![0.0f32; p * s];
            for (si, sample) in self.samples.iter().enumerate() {
                for (pi, &v) in sample.data().iter().enumerate() {
                    buf[pi * s + si] = v;
                }
            }
            // 256 positions per chunk: a multiple of `s` elements, so chunk
            // boundaries never split a position's run.
            st_par::par_chunks_mut("quantile_sort", &mut buf, s * 256, |_ci, chunk| {
                for run in chunk.chunks_mut(s) {
                    run.sort_by(f32::total_cmp);
                }
            });
            buf
        })
    }

    /// Flatten samples to the `[S, P]` layout expected by
    /// [`st_metrics::crps_ensemble`].
    pub fn samples_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.samples.len() * self.samples[0].numel());
        for s in &self.samples {
            out.extend_from_slice(s.data());
        }
        out
    }

    /// Number of samples in the ensemble.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }
}

/// Impute one window with a trained model, generating `opts.n_samples`
/// posterior samples in a single batched reverse pass.
///
/// Returns [`PristiError::ShapeMismatch`] when the window disagrees with the
/// model's node count / window length and
/// [`PristiError::DegenerateConfig`] for degenerate options (zero samples,
/// zero DDIM steps, non-finite `eta`).
///
/// # Example
///
/// Train a deliberately tiny model on a synthetic panel and impute one
/// window (`Sampler::Ddim` keeps the reverse chain short — see the README's
/// "Inference latency" section):
///
/// ```
/// use pristi_core::train::{train, TrainConfig};
/// use pristi_core::{impute, ImputeOptions, PristiConfig, Sampler};
/// use st_data::generators::{generate_air_quality, AirQualityConfig};
/// use st_rand::{SeedableRng, StdRng};
///
/// # fn main() -> pristi_core::Result<()> {
/// let data = generate_air_quality(&AirQualityConfig {
///     n_nodes: 8,
///     n_days: 4,
///     ..Default::default()
/// });
/// let mut cfg = PristiConfig::small();
/// cfg.d_model = 8;
/// cfg.heads = 2;
/// cfg.layers = 1;
/// cfg.t_steps = 8;
/// cfg.time_emb_dim = 8;
/// cfg.node_emb_dim = 4;
/// cfg.step_emb_dim = 8;
/// cfg.virtual_nodes = 4;
/// cfg.adaptive_dim = 2;
/// let tc = TrainConfig {
///     epochs: 1,
///     batch_size: 4,
///     window_len: 12,
///     window_stride: 12,
///     ..Default::default()
/// };
/// let trained = train(&data, cfg, &tc)?;
///
/// let window = data.window_at(0, 12);
/// let mut rng = StdRng::seed_from_u64(0);
/// let opts = ImputeOptions { n_samples: 2, sampler: Sampler::Ddim { steps: 2, eta: 0.0 } };
/// let result = impute(&trained, &window, &opts, &mut rng)?;
/// assert_eq!(result.n_samples(), 2);
/// assert_eq!(result.median().shape(), &[8, 12]);
/// # Ok(())
/// # }
/// ```
pub fn impute(
    trained: &TrainedModel,
    window: &Window,
    opts: &ImputeOptions,
    rng: &mut StdRng,
) -> Result<ImputationResult> {
    let mut items = [BatchItem {
        window,
        n_samples: opts.n_samples,
        rng: StdRng::from_state(rng.state()),
    }];
    let mut results = impute_batch(trained, &mut items, opts.sampler)?;
    // Hand the advanced stream back so a caller imputing several windows off
    // one RNG keeps the pre-redesign draw sequence.
    *rng = StdRng::from_state(items[0].rng.state());
    Ok(results.pop().expect("one request in, one result out"))
}

/// Impute a coalesced batch of requests in one `[S_total, N, L]` reverse
/// pass: a single `predict_eps_eval` per denoise step for the whole batch,
/// with each request's randomness drawn from its own [`BatchItem::rng`].
///
/// All requests share the `sampler`; per-request sample counts may differ.
/// Results come back in request order and are bitwise identical to solo
/// [`impute`] calls made with the same per-request RNG states.
pub fn impute_batch(
    trained: &TrainedModel,
    items: &mut [BatchItem<'_>],
    sampler: Sampler,
) -> Result<Vec<ImputationResult>> {
    impute_batch_with(trained, items, sampler, PriorMode::Cached)
}

/// [`impute_batch`] with an explicit [`PriorMode`].
///
/// `PriorMode::Cached` (what [`impute_batch`] uses) builds the step-invariant
/// prior tensors once per batch; `PriorMode::Recompute` rebuilds them every
/// denoise step. The results are bitwise identical — the knob exists for
/// benchmarking and as an escape hatch when the cache's memory footprint
/// (`PriorCache::bytes`) matters more than latency.
pub fn impute_batch_with(
    trained: &TrainedModel,
    items: &mut [BatchItem<'_>],
    sampler: Sampler,
    prior_mode: PriorMode,
) -> Result<Vec<ImputationResult>> {
    if items.is_empty() {
        return Ok(Vec::new());
    }
    for item in items.iter() {
        if item.n_samples < 1 {
            return Err(PristiError::DegenerateConfig(
                "need at least one sample per request".into(),
            ));
        }
    }
    // Per-request conditioning (normalised values, masks, interpolated 𝒳).
    // Window shape validation lives in `PreparedWindow::prepare`.
    sampler.validate()?;
    let prep_span = st_obs::span!("cond_prep");
    let preps = items
        .iter()
        .map(|item| PreparedWindow::prepare(trained, item.window))
        .collect::<Result<Vec<_>>>()?;
    drop(prep_span);
    let counts: Vec<usize> = items.iter().map(|i| i.n_samples).collect();
    let mut rngs: Vec<&mut StdRng> = items.iter_mut().map(|i| &mut i.rng).collect();
    let prior = match prior_mode {
        PriorMode::Cached => PriorSource::Build,
        PriorMode::Recompute => PriorSource::Recompute,
    };
    run_reverse(trained, &preps, &counts, &mut rngs, sampler, prior)
}

/// Impute one *warm-started* window — the streaming entry point.
///
/// A [`PreparedWindow`] skips the per-request `cond_prep` stage; an optional
/// caller-held [`PriorCache`] (from [`PreparedWindow::build_prior`]) skips
/// the prior-cache build as well, so a tick whose window content has not
/// changed pays only for the reverse pass. The result is bitwise identical
/// to a cold [`impute`] of the same window with the same RNG state —
/// `crates/core/tests/` and `st-serve`'s stream suite pin this.
///
/// Returns [`PristiError::DegenerateConfig`] when `prior` was built for a
/// different total sample count than `opts.n_samples`, when `opts.n_samples`
/// is zero, or when the sampler spec is degenerate. The caller guarantees
/// the cache was built from *this* prepared window's conditional; a stale
/// cache silently conditions on the old window (which is exactly the
/// isolation boundary the streaming dirty-tracking maintains).
pub fn impute_prepared(
    trained: &TrainedModel,
    prep: &PreparedWindow,
    opts: &ImputeOptions,
    rng: &mut StdRng,
    prior: Option<&PriorCache>,
) -> Result<ImputationResult> {
    if opts.n_samples < 1 {
        return Err(PristiError::DegenerateConfig("need at least one sample per request".into()));
    }
    opts.sampler.validate()?;
    let source = match prior {
        Some(cache) => {
            if cache.n_samples_total() != opts.n_samples {
                return Err(PristiError::DegenerateConfig(format!(
                    "prior cache was built for {} samples, request wants {}",
                    cache.n_samples_total(),
                    opts.n_samples
                )));
            }
            PriorSource::Reuse(cache)
        }
        None => PriorSource::Build,
    };
    let preps = std::slice::from_ref(prep);
    let mut rngs = [rng];
    let mut results =
        run_reverse(trained, preps, &[opts.n_samples], &mut rngs, opts.sampler, source)?;
    Ok(results.pop().expect("one prepared window in, one result out"))
}

/// Where the reverse pass gets its step-invariant prior tensors.
enum PriorSource<'a> {
    /// Build a fresh [`PriorCache`] for this batch (the default).
    Build,
    /// Rebuild the full graph — prior included — at every denoise step.
    Recompute,
    /// Reuse a caller-held cache built from these windows' conditionals.
    Reuse(&'a PriorCache),
}

/// The shared reverse-pass core behind [`impute_batch_with`] and
/// [`impute_prepared`]: batch the prepared conditioners along the sample
/// axis, resolve the prior source, walk the solver's schedule, merge and
/// denormalise. `preps`, `counts` and `rngs` run parallel, one entry per
/// request.
fn run_reverse(
    trained: &TrainedModel,
    preps: &[PreparedWindow],
    counts: &[usize],
    rngs: &mut [&mut StdRng],
    sampler: Sampler,
    prior: PriorSource<'_>,
) -> Result<Vec<ImputationResult>> {
    let (n, l) = (trained.model.n_nodes(), trained.model.window_len());
    let s_total: usize = counts.iter().sum();
    // The solver owns the schedule walk; `pairs.len()` is the NFE cost of
    // this request batch (one network evaluation per pair).
    let mut solver = sampler.solver();
    solver.reset();
    let pairs = solver.timesteps(&trained.schedule);
    let _span = st_obs::span!(
        "impute",
        requests = preps.len() as u64,
        samples = s_total as u64,
        nfe = pairs.len() as u64,
    );

    // Batch every request's ensemble along the sample axis: [S_total, N, L]
    // with each request's conditioner replicated over its samples. `spans`
    // records each request's flat element range.
    let batch_span = st_obs::span!("batch_assemble");
    let mut cond_b = NdArray::zeros(&[s_total, n, l]);
    let mut tmask_b = NdArray::zeros(&[s_total, n, l]);
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(preps.len());
    let mut offset = 0usize;
    for (&count, prep) in counts.iter().zip(preps) {
        for s in 0..count {
            let base = (offset + s) * n * l;
            cond_b.data_mut()[base..base + n * l].copy_from_slice(prep.cond.data());
            tmask_b.data_mut()[base..base + n * l].copy_from_slice(prep.target_mask.data());
        }
        spans.push((offset * n * l, count * n * l));
        offset += count;
    }
    drop(batch_span);

    // Step-invariant prior tensors, computed once per batch on the
    // deduplicated per-request conditional (R rows, not S_total) and
    // replicated per sample inside `build_prior_cache` — or reused outright
    // when a streaming caller kept the cache across ticks.
    let built;
    let cache: Option<&PriorCache> = {
        let _cache_span = st_obs::span!("prior_cache");
        match prior {
            PriorSource::Build => {
                let mut cond_r = NdArray::zeros(&[preps.len(), n, l]);
                for (i, prep) in preps.iter().enumerate() {
                    cond_r.data_mut()[i * n * l..(i + 1) * n * l]
                        .copy_from_slice(prep.cond.data());
                }
                built = trained.model.build_prior_cache(&cond_r, counts);
                Some(&built)
            }
            PriorSource::Recompute => None,
            PriorSource::Reuse(cache) => Some(cache),
        }
    };

    // Chain head, one noise slice per request from its own stream. Every
    // solver draws exactly one `randn` per request here (stream-invariance
    // across solvers); a `NoisedPrior` init additionally mixes in the
    // request's interpolated conditional — the deterministic prior estimate —
    // which is already replicated per sample in `cond_b`.
    let mut x = NdArray::zeros(&[s_total, n, l]);
    for ((&count, rng), &(start, len)) in counts.iter().zip(rngs.iter_mut()).zip(&spans) {
        let noise = NdArray::randn(&[count, n, l], *rng);
        x.data_mut()[start..start + len].copy_from_slice(noise.data());
    }
    if let ChainInit::NoisedPrior { t_start } = solver.init(&trained.schedule) {
        let ab = trained.schedule.alpha_bar(t_start);
        let (a, b) = (ab.sqrt() as f32, (1.0 - ab).sqrt() as f32);
        x = cond_b.zip_map(&x, |p, z| a * p + b * z);
    }
    x = x.mul(&tmask_b);

    // Reverse process: the solver's mean update is element-wise over the
    // whole batch (bitwise equal to computing each slice alone); the noise is
    // added per request slice from that request's stream.
    for &(t, t_prev) in &pairs {
        let _step_span = st_obs::span!("denoise_step", t = t as u64, t_prev = t_prev as u64);
        let eps_hat = match cache {
            Some(c) => trained.model.predict_eps_eval_cached(c, &x, t),
            None => trained.model.predict_eps_eval(&x, &cond_b, t),
        };
        let t0 = st_obs::op_start();
        let step = solver.step(&x, &eps_hat, &trained.schedule, t, t_prev);
        let mut next = step.mean;
        add_noise_per_request(&mut next, rngs, &spans, step.noise_scale);
        st_obs::record_op(st_obs::Phase::Fwd, solver.op_label(), t0, next.numel() as u64);
        x = next.mul(&tmask_b);
    }

    // Merge with conditioned values and denormalise per sample
    // (sample-parallel: each ensemble member is independent).
    let merge_span = st_obs::span!("denorm_merge");
    let xd = x.data();
    let mut out = Vec::with_capacity(preps.len());
    for ((&count, prep), &(start, _)) in counts.iter().zip(preps).zip(&spans) {
        let cond_part = prep.values_z.mul(&prep.cond_mask);
        let samples = st_par::par_map("denorm_samples", count, |s| {
            let sample =
                NdArray::from_vec(&[n, l], xd[start + s * n * l..start + (s + 1) * n * l].to_vec());
            let mut merged = sample.mul(&prep.target_mask).add(&cond_part);
            trained.normalizer.denormalize_window(&mut merged);
            merged
        });
        out.push(ImputationResult::new(samples, prep.target_mask.clone()));
    }
    drop(merge_span);
    Ok(out)
}

/// Add `scale · z` reverse-process noise to each request's slice of the
/// batched tensor, drawing from that request's stream (no draws at all when
/// `scale == 0`, e.g. the final DDPM step or deterministic DDIM).
fn add_noise_per_request(
    x: &mut NdArray,
    rngs: &mut [&mut StdRng],
    spans: &[(usize, usize)],
    scale: f64,
) {
    if scale == 0.0 {
        return;
    }
    let data = x.data_mut();
    for (rng, &(start, len)) in rngs.iter_mut().zip(spans) {
        add_reverse_noise_slice(&mut data[start..start + len], scale, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PristiConfig;
    use crate::train::{train, TrainConfig};
    use st_data::dataset::Split;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;
    use st_metrics::masked_mae;
    use st_rand::SeedableRng;

    fn tiny_cfg() -> PristiConfig {
        let mut c = PristiConfig::small();
        c.d_model = 8;
        c.heads = 2;
        c.layers = 1;
        c.t_steps = 10;
        c.time_emb_dim = 8;
        c.node_emb_dim = 4;
        c.step_emb_dim = 8;
        c.virtual_nodes = 4;
        c.adaptive_dim = 2;
        c
    }

    fn trained_setup() -> (st_data::SpatioTemporalDataset, crate::train::TrainedModel) {
        let mut data = generate_air_quality(&AirQualityConfig {
            n_nodes: 8,
            n_days: 8,
            seed: 6,
            ..Default::default()
        });
        data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 99);
        let tc = TrainConfig {
            epochs: 6,
            batch_size: 4,
            window_len: 12,
            window_stride: 12,
            seed: 4,
            ..Default::default()
        };
        let trained = train(&data, tiny_cfg(), &tc).unwrap();
        (data, trained)
    }

    fn ddpm_opts(n_samples: usize) -> ImputeOptions {
        ImputeOptions { n_samples, sampler: Sampler::Ddpm }
    }

    #[test]
    fn imputation_preserves_observed_and_fills_missing() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut rng = StdRng::seed_from_u64(1);
        let res = impute(&trained, w, &ddpm_opts(4), &mut rng).unwrap();
        assert_eq!(res.n_samples(), 4);
        let med = res.median();
        let cm = w.cond_mask();
        for i in 0..med.numel() {
            if cm.data()[i] > 0.0 {
                assert!(
                    (med.data()[i] - w.values.data()[i]).abs() < 1e-2,
                    "observed value altered at {i}: {} vs {}",
                    med.data()[i],
                    w.values.data()[i]
                );
            } else {
                assert!(med.data()[i].is_finite());
            }
        }
    }

    #[test]
    fn quantiles_are_ordered() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut rng = StdRng::seed_from_u64(2);
        let res = impute(&trained, w, &ddpm_opts(8), &mut rng).unwrap();
        let q05 = res.quantile(0.05);
        let q50 = res.quantile(0.50);
        let q95 = res.quantile(0.95);
        for i in 0..q05.numel() {
            assert!(q05.data()[i] <= q50.data()[i] + 1e-5);
            assert!(q50.data()[i] <= q95.data()[i] + 1e-5);
        }
    }

    #[test]
    fn cached_quantile_matches_fresh_per_position_sort() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut rng = StdRng::seed_from_u64(8);
        let res = impute(&trained, w, &ddpm_opts(6), &mut rng).unwrap();
        // Reference: the pre-cache implementation, re-sorting per position.
        let mut buf = vec![0.0f32; res.n_samples()];
        for alpha in [0.05, 0.5, 0.95] {
            let q = res.quantile(alpha);
            for i in 0..q.numel() {
                for (s, sample) in res.samples.iter().enumerate() {
                    buf[s] = sample.data()[i];
                }
                buf.sort_by(f32::total_cmp);
                let expect = quantile_of_sorted(&buf, alpha) as f32;
                assert_eq!(q.data()[i], expect, "alpha {alpha} position {i}");
            }
        }
    }

    #[test]
    fn fast_ddim_imputation_close_to_full() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let full = impute(&trained, w, &ddpm_opts(6), &mut r1).unwrap();
        let fast = impute(
            &trained,
            w,
            &ImputeOptions { n_samples: 6, sampler: Sampler::Ddim { steps: 5, eta: 0.0 } },
            &mut r2,
        )
        .unwrap();
        assert_eq!(fast.n_samples(), 6);
        // both valid imputations: finite, observed preserved
        let cm = w.cond_mask();
        for res in [&full, &fast] {
            let med = res.median();
            for i in 0..med.numel() {
                assert!(med.data()[i].is_finite());
                if cm.data()[i] > 0.0 {
                    assert!((med.data()[i] - w.values.data()[i]).abs() < 1e-2);
                }
            }
        }
        // the DDIM median should be in the same ballpark as the full median
        let mf = full.median();
        let md = fast.median();
        let mae = st_metrics::masked_mae(md.data(), mf.data(), w.eval.data());
        assert!(mae.is_finite());
    }

    #[test]
    fn trained_model_beats_wild_guess() {
        // Even a briefly trained tiny model should beat imputing a constant
        // far from the data range.
        let (data, trained) = trained_setup();
        let windows = data.windows(Split::Test, 12, 12);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model_err = 0.0;
        let mut naive_err = 0.0;
        let mut count = 0;
        for w in windows.iter().take(3) {
            if w.eval.data().iter().all(|&v| v == 0.0) {
                continue;
            }
            let res = impute(&trained, w, &ddpm_opts(4), &mut rng).unwrap();
            let med = res.median();
            model_err += masked_mae(med.data(), w.values.data(), w.eval.data());
            let zeros = vec![0.0f32; med.numel()];
            naive_err += masked_mae(&zeros, w.values.data(), w.eval.data());
            count += 1;
        }
        assert!(count > 0, "no eval positions in test windows");
        assert!(
            model_err < naive_err,
            "model MAE {model_err:.3} should beat zero-imputation {naive_err:.3}"
        );
    }

    /// The micro-batching keystone: requests coalesced into one batch must
    /// produce bitwise the same samples as solo calls with the same RNG
    /// states, for both samplers and uneven ensemble sizes.
    #[test]
    fn batched_requests_bitwise_match_solo_calls() {
        let (data, trained) = trained_setup();
        let windows = data.windows(Split::Test, 12, 12);
        let w0 = &windows[0];
        let w1 = &windows[windows.len() - 1];
        for sampler in [
            Sampler::Ddpm,
            Sampler::Ddim { steps: 4, eta: 0.5 },
            Sampler::Pndm { steps: 4, order: 4 },
            Sampler::Refine { steps: 3, strength: 0.5 },
        ] {
            let solo0 = {
                let mut rng = StdRng::seed_from_u64(100);
                impute(&trained, w0, &ImputeOptions { n_samples: 2, sampler }, &mut rng).unwrap()
            };
            let solo1 = {
                let mut rng = StdRng::seed_from_u64(101);
                impute(&trained, w1, &ImputeOptions { n_samples: 3, sampler }, &mut rng).unwrap()
            };
            let mut items = [
                BatchItem { window: w0, n_samples: 2, rng: StdRng::seed_from_u64(100) },
                BatchItem { window: w1, n_samples: 3, rng: StdRng::seed_from_u64(101) },
            ];
            let batched = impute_batch(&trained, &mut items, sampler).unwrap();
            for (solo, both) in [(&solo0, &batched[0]), (&solo1, &batched[1])] {
                assert_eq!(solo.n_samples(), both.n_samples());
                for (a, b) in solo.samples.iter().zip(&both.samples) {
                    assert!(
                        a.to_bytes() == b.to_bytes(),
                        "batched sample diverges from solo call ({sampler:?})"
                    );
                }
            }
        }
    }

    /// The prior-cached tentpole invariant: `PriorMode::Cached` (the
    /// default) and `PriorMode::Recompute` (the reference implementation)
    /// must produce bitwise identical ensembles — for both samplers, for a
    /// solo request and for an uneven coalesced batch.
    #[test]
    fn cached_and_recompute_prior_bitwise_identical() {
        let (data, trained) = trained_setup();
        let windows = data.windows(Split::Test, 12, 12);
        let w0 = &windows[0];
        let w1 = &windows[windows.len() - 1];
        for sampler in [
            Sampler::Ddpm,
            Sampler::Ddim { steps: 4, eta: 0.5 },
            Sampler::Pndm { steps: 4, order: 4 },
            Sampler::Refine { steps: 3, strength: 0.5 },
        ] {
            for n_requests in [1usize, 4] {
                let make_items = || -> Vec<BatchItem<'_>> {
                    (0..n_requests)
                        .map(|i| BatchItem {
                            window: if i % 2 == 0 { w0 } else { w1 },
                            n_samples: 1 + i, // uneven ensembles
                            rng: StdRng::seed_from_u64(200 + i as u64),
                        })
                        .collect()
                };
                let mut cached_items = make_items();
                let mut plain_items = make_items();
                let cached =
                    impute_batch_with(&trained, &mut cached_items, sampler, PriorMode::Cached)
                        .unwrap();
                let plain =
                    impute_batch_with(&trained, &mut plain_items, sampler, PriorMode::Recompute)
                        .unwrap();
                for (c, p) in cached.iter().zip(&plain) {
                    for (a, b) in c.samples.iter().zip(&p.samples) {
                        assert!(
                            a.to_bytes() == b.to_bytes(),
                            "cached prior diverges from recompute ({sampler:?}, {n_requests} requests)"
                        );
                    }
                }
                // The RNG streams must advance identically too.
                for (c, p) in cached_items.iter().zip(&plain_items) {
                    assert_eq!(c.rng.state(), p.rng.state());
                }
            }
        }
    }

    #[test]
    fn prior_cache_exposes_footprint_and_prior() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut values_z = w.values.clone();
        trained.normalizer.normalize_window(&mut values_z);
        let cond_mask = w.cond_mask();
        let cond = build_cond(&values_z, &cond_mask, trained.model.cfg.use_interpolation);
        let (n, l) = (w.n_nodes(), w.len());
        let cond_r = NdArray::from_vec(&[1, n, l], cond.data().to_vec());
        let cache = trained.model.build_prior_cache(&cond_r, &[3]);
        assert_eq!(cache.n_samples_total(), 3);
        assert!(cache.bytes() > 0);
        let d = trained.model.cfg.d_model;
        assert_eq!(cache.h_pri().expect("full model has a prior").shape(), &[1, n, l, d]);
    }

    /// The streaming keystone: a warm [`impute_prepared`] call — prepared
    /// window assembled from parts, prior cache built once and reused across
    /// calls — is bitwise identical to a cold [`impute`] with the same RNG
    /// state, for every solver family.
    #[test]
    fn prepared_and_reused_prior_bitwise_match_cold_impute() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        for sampler in [
            Sampler::Ddpm,
            Sampler::Pndm { steps: 4, order: 4 },
            Sampler::Refine { steps: 3, strength: 0.5 },
        ] {
            let opts = ImputeOptions { n_samples: 3, sampler };
            let cold = {
                let mut rng = StdRng::seed_from_u64(77);
                impute(&trained, w, &opts, &mut rng).unwrap()
            };
            // Warm path A: prepared via `prepare`, cache built internally.
            let prep = PreparedWindow::prepare(&trained, w).unwrap();
            let warm = {
                let mut rng = StdRng::seed_from_u64(77);
                impute_prepared(&trained, &prep, &opts, &mut rng, None).unwrap()
            };
            // Warm path B: prepared from caller-maintained parts, prior
            // cache built once and reused across two calls.
            let mut values_z = w.values.clone();
            trained.normalizer.normalize_window(&mut values_z);
            let cond_mask = w.cond_mask();
            let interp = st_data::linear_interpolate(&values_z, &cond_mask, 0.0);
            let parts =
                PreparedWindow::from_parts(&trained, values_z, cond_mask, Some(&interp)).unwrap();
            let cache = parts.build_prior(&trained, 3);
            for _ in 0..2 {
                let reused = {
                    let mut rng = StdRng::seed_from_u64(77);
                    impute_prepared(&trained, &parts, &opts, &mut rng, Some(&cache)).unwrap()
                };
                for (a, b) in cold.samples.iter().zip(&reused.samples) {
                    assert!(
                        a.to_bytes() == b.to_bytes(),
                        "reused-cache warm impute diverges from cold ({sampler:?})"
                    );
                }
            }
            for (a, b) in cold.samples.iter().zip(&warm.samples) {
                assert!(
                    a.to_bytes() == b.to_bytes(),
                    "warm impute diverges from cold ({sampler:?})"
                );
            }
        }
    }

    #[test]
    fn prepared_window_rejects_mismatched_parts() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let prep = PreparedWindow::prepare(&trained, w).unwrap();
        // cache sample count must match the request
        let cache = prep.build_prior(&trained, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let err = impute_prepared(
            &trained,
            &prep,
            &ImputeOptions { n_samples: 3, sampler: Sampler::Ddpm },
            &mut rng,
            Some(&cache),
        )
        .unwrap_err();
        assert!(matches!(err, PristiError::DegenerateConfig(_)));
        // interpolation-conditioned model requires interp in from_parts
        let mut values_z = w.values.clone();
        trained.normalizer.normalize_window(&mut values_z);
        let err = PreparedWindow::from_parts(&trained, values_z.clone(), w.cond_mask(), None)
            .unwrap_err();
        assert!(matches!(err, PristiError::DegenerateConfig(_)));
        // wrong-shaped parts are a typed error
        let bad = NdArray::zeros(&[2, 2]);
        let err = PreparedWindow::from_parts(&trained, bad, w.cond_mask(), None).unwrap_err();
        assert!(matches!(err, PristiError::ShapeMismatch { .. }));
    }

    #[test]
    fn malformed_inputs_return_typed_errors() {
        let (data, trained) = trained_setup();
        let w = &data.windows(Split::Test, 12, 12)[0];
        let mut rng = StdRng::seed_from_u64(5);
        // zero samples
        let err = impute(&trained, w, &ddpm_opts(0), &mut rng).unwrap_err();
        assert!(matches!(err, PristiError::DegenerateConfig(_)));
        // zero DDIM steps
        let err = impute(
            &trained,
            w,
            &ImputeOptions { n_samples: 2, sampler: Sampler::Ddim { steps: 0, eta: 0.0 } },
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, PristiError::DegenerateConfig(_)));
        // out-of-range PNDM order / refine strength
        for sampler in [
            Sampler::Pndm { steps: 4, order: 5 },
            Sampler::Refine { steps: 4, strength: 2.0 },
        ] {
            let err =
                impute(&trained, w, &ImputeOptions { n_samples: 2, sampler }, &mut rng).unwrap_err();
            assert!(matches!(err, PristiError::DegenerateConfig(_)));
        }
        // wrong window length
        let short = data.window_at(0, 6);
        let err = impute(&trained, &short, &ddpm_opts(2), &mut rng).unwrap_err();
        assert!(matches!(
            err,
            PristiError::ShapeMismatch { what: "window length", .. }
        ));
    }

}
