//! Training process of PriSTI (Algorithm 1).
//!
//! Each iteration: re-mask the observed values with a mask strategy to create
//! the imputation target `X̃⁰`, build the interpolated conditional
//! information `𝒳` from the remaining observations, sample a diffusion step
//! and Gaussian noise, and regress the noise with the masked L2 objective of
//! Eq. 4. The learning rate follows the paper's step decay (×0.1 at 75 %,
//! ×0.1 at 90 % of epochs).

use crate::config::PristiConfig;
use crate::model::PristiModel;
use st_rand::StdRng;
use st_rand::SliceRandom;
use st_rand::{Rng, SeedableRng};
use st_data::dataset::{SpatioTemporalDataset, Split, Window};
use st_data::interpolate::linear_interpolate;
use st_data::mask_strategy::MaskStrategy;
use st_data::normalize::Normalizer;
use st_diffusion::{q_sample, DiffusionSchedule};
use st_tensor::graph::Graph;
use st_tensor::ndarray::NdArray;
use st_tensor::optim::{clip_grad_norm, pristi_lr, Adam};

/// Which mask strategy to train with (Section IV-D "Training strategies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskStrategyKind {
    /// Point strategy (paper: point-missing traffic).
    Point,
    /// Hybrid of point and block (paper: block-missing traffic).
    HybridBlock,
    /// Hybrid of point and historical patterns (paper: AQI-36).
    HybridHistorical,
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training windows.
    pub epochs: usize,
    /// Windows per gradient step (paper: 16).
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-3).
    pub lr: f32,
    /// Window length `L` (paper: 36 AQI / 24 traffic).
    pub window_len: usize,
    /// Stride between training windows.
    pub window_stride: usize,
    /// Mask strategy for creating training targets.
    pub strategy: MaskStrategyKind,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// RNG seed for masking / noise / shuffling.
    pub seed: u64,
    /// Print a line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 8,
            lr: 1e-3,
            window_len: 24,
            window_stride: 12,
            strategy: MaskStrategyKind::Point,
            clip_norm: 5.0,
            seed: 7,
            verbose: false,
        }
    }
}

/// A trained model bundled with everything needed for imputation.
pub struct TrainedModel {
    /// The noise predictor.
    pub model: PristiModel,
    /// The diffusion schedule it was trained with.
    pub schedule: DiffusionSchedule,
    /// The per-node scaler fitted on the training split.
    pub normalizer: Normalizer,
    /// Mean training loss per epoch (for diagnostics and tests).
    pub epoch_losses: Vec<f64>,
}

/// Train PriSTI (or any configured variant) on a dataset's training split.
pub fn train(
    data: &SpatioTemporalDataset,
    model_cfg: PristiConfig,
    tc: &TrainConfig,
) -> TrainedModel {
    let mut rng = StdRng::seed_from_u64(tc.seed);
    let normalizer = Normalizer::fit(data);
    let windows = data.windows(Split::Train, tc.window_len, tc.window_stride);
    assert!(
        !windows.is_empty(),
        "no training windows: split too short for window_len {}",
        tc.window_len
    );
    let strategy = build_strategy(tc.strategy, &windows);
    let schedule = DiffusionSchedule::new(
        model_cfg.schedule,
        model_cfg.t_steps,
        model_cfg.beta_min,
        model_cfg.beta_max,
    );
    let mut model = PristiModel::new(model_cfg, &data.graph, tc.window_len, &mut rng);
    let mut opt = Adam::new(tc.lr);
    let mut epoch_losses = Vec::with_capacity(tc.epochs);

    // Pre-normalise window values once.
    let prepared: Vec<(NdArray, NdArray)> = windows
        .iter()
        .map(|w| {
            let mut z = w.values.clone();
            normalizer.normalize_window(&mut z);
            (z, w.cond_mask())
        })
        .collect();

    let mut order: Vec<usize> = (0..prepared.len()).collect();
    for epoch in 0..tc.epochs {
        opt.lr = pristi_lr(tc.lr, epoch, tc.epochs);
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut n_batches = 0usize;
        for chunk in order.chunks(tc.batch_size) {
            let loss = train_step(&mut model, &mut opt, &schedule, &prepared, chunk, &strategy, tc, &mut rng);
            loss_sum += loss;
            n_batches += 1;
        }
        let mean = loss_sum / n_batches.max(1) as f64;
        epoch_losses.push(mean);
        if tc.verbose {
            println!("epoch {epoch:3}  loss {mean:.5}  lr {:.6}", opt.lr);
        }
    }
    TrainedModel { model, schedule, normalizer, epoch_losses }
}

fn build_strategy(kind: MaskStrategyKind, windows: &[Window]) -> MaskStrategy {
    match kind {
        MaskStrategyKind::Point => MaskStrategy::Point,
        MaskStrategyKind::HybridBlock => MaskStrategy::HybridBlock,
        MaskStrategyKind::HybridHistorical => {
            // Harvest observed-mask patterns from the training windows as the
            // "historical missing patterns" library.
            let patterns: Vec<NdArray> = windows.iter().map(|w| w.observed.clone()).collect();
            MaskStrategy::HybridHistorical { patterns }
        }
    }
}

/// Build the conditional information 𝒳 for a window given values (normalised)
/// and the conditioning mask, honouring the interpolation switch.
pub(crate) fn build_cond(
    values_z: &NdArray,
    cond_mask: &NdArray,
    use_interpolation: bool,
) -> NdArray {
    if use_interpolation {
        linear_interpolate(values_z, cond_mask, 0.0)
    } else {
        values_z.mul(cond_mask)
    }
}

#[allow(clippy::too_many_arguments)]
fn train_step(
    model: &mut PristiModel,
    opt: &mut Adam,
    schedule: &DiffusionSchedule,
    prepared: &[(NdArray, NdArray)],
    chunk: &[usize],
    strategy: &MaskStrategy,
    tc: &TrainConfig,
    rng: &mut StdRng,
) -> f64 {
    let b = chunk.len();
    let (n, l) = {
        let s = prepared[chunk[0]].0.shape();
        (s[0], s[1])
    };
    let mut noisy = NdArray::zeros(&[b, n, l]);
    let mut cond = NdArray::zeros(&[b, n, l]);
    let mut eps_all = NdArray::zeros(&[b, n, l]);
    let mut tmask = NdArray::zeros(&[b, n, l]);
    let mut steps = Vec::with_capacity(b);

    for (bi, &wi) in chunk.iter().enumerate() {
        let (values_z, cond_observed) = &prepared[wi];
        let target = strategy.sample(cond_observed, rng);
        let cond_train = cond_observed.zip_map(&target, |o, t| if o > 0.0 && t == 0.0 { 1.0 } else { 0.0 });
        let x0 = values_z.mul(&target);
        let cond_w = build_cond(values_z, &cond_train, model.cfg.use_interpolation);
        let t_step = rng.random_range(1..=schedule.t_steps());
        let eps = NdArray::randn(&[n, l], rng);
        let x_t = q_sample(&x0, &eps, schedule, t_step).mul(&target);
        steps.push(t_step);
        let base = bi * n * l;
        noisy.data_mut()[base..base + n * l].copy_from_slice(x_t.data());
        cond.data_mut()[base..base + n * l].copy_from_slice(cond_w.data());
        eps_all.data_mut()[base..base + n * l].copy_from_slice(eps.data());
        tmask.data_mut()[base..base + n * l].copy_from_slice(target.data());
    }

    let (loss_val, mut grads) = {
        let mut g = Graph::new(&model.store);
        let noisy_tx = g.input(noisy);
        let cond_tx = g.input(cond);
        let eps_hat = model.predict_eps(&mut g, noisy_tx, cond_tx, &steps);
        let eps_tx = g.input(eps_all);
        let mask_tx = g.input(tmask);
        let loss = g.mse_masked(eps_hat, eps_tx, mask_tx);
        (g.value(loss).data()[0] as f64, g.backward(loss))
    };
    clip_grad_norm(&mut grads, tc.clip_norm);
    opt.step(&mut model.store, &grads);
    loss_val
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PristiConfig;
    use st_data::generators::{generate_air_quality, AirQualityConfig};

    fn tiny_model_cfg() -> PristiConfig {
        let mut c = PristiConfig::small();
        c.d_model = 8;
        c.heads = 2;
        c.layers = 1;
        c.t_steps = 10;
        c.time_emb_dim = 8;
        c.node_emb_dim = 4;
        c.step_emb_dim = 8;
        c.virtual_nodes = 4;
        c.adaptive_dim = 2;
        c
    }

    fn tiny_data() -> st_data::SpatioTemporalDataset {
        // no pollution episodes: a smooth, learnable panel for smoke tests
        generate_air_quality(&AirQualityConfig {
            n_nodes: 8,
            n_days: 6,
            seed: 5,
            episodes_per_week: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn training_loss_decreases() {
        let data = tiny_data();
        let tc = TrainConfig {
            epochs: 60,
            batch_size: 4,
            lr: 4e-3,
            window_len: 12,
            window_stride: 6,
            seed: 1,
            ..Default::default()
        };
        let trained = train(&data, tiny_model_cfg(), &tc);
        assert_eq!(trained.epoch_losses.len(), 60);
        // Per-epoch losses are noisy (random masks and diffusion steps), so
        // compare early-vs-late averages. The ε-objective has a high floor —
        // a large random fraction of each window is masked, so much of the
        // noise is simply unpredictable — hence the modest thresholds.
        let head: f64 = trained.epoch_losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = trained.epoch_losses[55..].iter().sum::<f64>() / 5.0;
        assert!(
            tail < head,
            "training loss should decrease: head {head:.4}, tail {tail:.4}"
        );
        // ε ~ N(0,1), so an untrained (zero-output) model has loss ≈ 1;
        // learning on the smooth panel pulls clearly below that.
        assert!(tail < 1.0, "late loss {tail:.4} not below noise floor");
    }

    #[test]
    fn all_strategies_run() {
        let data = tiny_data();
        for strategy in [
            MaskStrategyKind::Point,
            MaskStrategyKind::HybridBlock,
            MaskStrategyKind::HybridHistorical,
        ] {
            let tc = TrainConfig {
                epochs: 1,
                batch_size: 4,
                window_len: 12,
                window_stride: 24,
                strategy,
                seed: 2,
                ..Default::default()
            };
            let trained = train(&data, tiny_model_cfg(), &tc);
            assert!(trained.epoch_losses[0].is_finite(), "{strategy:?} produced NaN loss");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = tiny_data();
        let tc = TrainConfig {
            epochs: 2,
            batch_size: 4,
            window_len: 12,
            window_stride: 24,
            seed: 3,
            ..Default::default()
        };
        let a = train(&data, tiny_model_cfg(), &tc);
        let b = train(&data, tiny_model_cfg(), &tc);
        assert_eq!(a.epoch_losses, b.epoch_losses);
    }
}
