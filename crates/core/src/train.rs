//! Training process of PriSTI (Algorithm 1).
//!
//! Each iteration: re-mask the observed values with a mask strategy to create
//! the imputation target `X̃⁰`, build the interpolated conditional
//! information `𝒳` from the remaining observations, sample a diffusion step
//! and Gaussian noise, and regress the noise with the masked L2 objective of
//! Eq. 4. The learning rate follows the paper's step decay (×0.1 at 75 %,
//! ×0.1 at 90 % of epochs).

use crate::config::PristiConfig;
use crate::error::{PristiError, Result};
use crate::model::PristiModel;
use st_rand::StdRng;
use st_rand::SliceRandom;
use st_rand::{Rng, SeedableRng};
use st_data::dataset::{SpatioTemporalDataset, Split, Window};
use st_data::interpolate::linear_interpolate;
use st_data::mask_strategy::MaskStrategy;
use st_data::normalize::Normalizer;
use st_diffusion::{q_sample, DiffusionSchedule};
use st_graph::adjacency::SensorGraph;
use st_tensor::graph::Graph;
use st_tensor::ndarray::NdArray;
use st_tensor::optim::{clip_grad_norm, pristi_lr, Adam};
use std::path::PathBuf;
use std::time::Instant;

/// Which mask strategy to train with (Section IV-D "Training strategies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskStrategyKind {
    /// Point strategy (paper: point-missing traffic).
    Point,
    /// Hybrid of point and block (paper: block-missing traffic).
    HybridBlock,
    /// Hybrid of point and historical patterns (paper: AQI-36).
    HybridHistorical,
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training windows.
    pub epochs: usize,
    /// Windows per gradient step (paper: 16).
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-3).
    pub lr: f32,
    /// Window length `L` (paper: 36 AQI / 24 traffic).
    pub window_len: usize,
    /// Stride between training windows.
    pub window_stride: usize,
    /// Mask strategy for creating training targets.
    pub strategy: MaskStrategyKind,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// RNG seed for masking / noise / shuffling.
    pub seed: u64,
    /// Where per-epoch progress goes.
    pub reporter: Reporter,
    /// Worker threads for the `st-par` pool (batch prep, kernels, backward).
    /// `0` keeps the environment default (`ST_PAR_THREADS`, falling back to
    /// available parallelism). Thread count never changes results — see
    /// DESIGN.md §9.
    pub threads: usize,
}

/// Destination for per-epoch training telemetry (loss, gradient norm,
/// learning rate, throughput). Replaces the old `verbose: bool` flag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Reporter {
    /// No per-epoch output (the old `verbose: false`).
    #[default]
    Silent,
    /// One human-readable line per epoch on stderr (the old `verbose: true`;
    /// moved off stdout so result pipelines stay clean).
    Stderr,
    /// Machine-readable `st-obs/1` JSONL stream of `epoch` events at the
    /// given path. The file is truncated at the start of training.
    Jsonl(PathBuf),
}

/// Open sink for [`Reporter`]; holds the JSONL writer across epochs.
enum ReporterSink {
    Silent,
    Stderr,
    Jsonl(st_obs::JsonlWriter),
}

impl Reporter {
    fn open(&self) -> Result<ReporterSink> {
        Ok(match self {
            Reporter::Silent => ReporterSink::Silent,
            Reporter::Stderr => ReporterSink::Stderr,
            Reporter::Jsonl(path) => ReporterSink::Jsonl(
                st_obs::JsonlWriter::create(path).map_err(|e| {
                    PristiError::Io(format!("Reporter::Jsonl: cannot create {}: {e}", path.display()))
                })?,
            ),
        })
    }
}

/// One epoch's worth of reporting, fanned out to the configured sink and —
/// when a global st-obs recorder is installed — to its event stream as well.
#[allow(clippy::too_many_arguments)]
fn report_epoch(
    sink: &mut ReporterSink,
    epoch: usize,
    loss: f64,
    grad_norm: f64,
    lr: f32,
    windows: usize,
    wps: f64,
) {
    let fields = || -> Vec<(&'static str, st_obs::Value)> {
        vec![
            ("epoch", st_obs::Value::U(epoch as u64)),
            ("loss", st_obs::Value::F(loss)),
            ("grad_norm", st_obs::Value::F(grad_norm)),
            ("lr", st_obs::Value::F(f64::from(lr))),
            ("windows", st_obs::Value::U(windows as u64)),
            ("wps", st_obs::Value::F(wps)),
        ]
    };
    match sink {
        ReporterSink::Silent => {}
        ReporterSink::Stderr => eprintln!(
            "epoch {epoch:3}  loss {loss:.5}  grad {grad_norm:.4}  lr {lr:.6}  {wps:.1} win/s"
        ),
        ReporterSink::Jsonl(w) => w.event("epoch", fields()),
    }
    st_obs::emit("epoch", fields());
    st_obs::gauge_set("train.loss", loss);
    st_obs::gauge_set("train.grad_norm", grad_norm);
    st_obs::gauge_set("train.lr", f64::from(lr));
    st_obs::hist_record("train.epoch_loss", loss);
    let pool = st_tensor::pool::stats();
    st_obs::gauge_set("pool.buffer_hits", pool.hits as f64);
    st_obs::gauge_set("pool.buffer_misses", pool.misses as f64);
    st_obs::gauge_set("pool.buffer_returns", pool.returns as f64);
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 8,
            lr: 1e-3,
            window_len: 24,
            window_stride: 12,
            strategy: MaskStrategyKind::Point,
            clip_norm: 5.0,
            seed: 7,
            reporter: Reporter::Silent,
            threads: 0,
        }
    }
}

/// A trained model bundled with everything needed for imputation.
#[derive(Debug)]
pub struct TrainedModel {
    /// The noise predictor.
    pub model: PristiModel,
    /// The sensor graph the model was built for (needed to rebuild the
    /// architecture when loading a checkpoint).
    pub graph: SensorGraph,
    /// The diffusion schedule it was trained with.
    pub schedule: DiffusionSchedule,
    /// The per-node scaler fitted on the training split.
    pub normalizer: Normalizer,
    /// Mean training loss per epoch (for diagnostics and tests).
    pub epoch_losses: Vec<f64>,
}

/// Train PriSTI (or any configured variant) on a dataset's training split.
///
/// Returns [`PristiError::DegenerateConfig`] when the model configuration
/// fails [`PristiConfig::validate`] or the split yields no training windows,
/// and [`PristiError::Io`] when a [`Reporter::Jsonl`] path cannot be created.
pub fn train(
    data: &SpatioTemporalDataset,
    model_cfg: PristiConfig,
    tc: &TrainConfig,
) -> Result<TrainedModel> {
    st_par::set_threads(tc.threads);
    let mut rng = StdRng::seed_from_u64(tc.seed);
    let normalizer = Normalizer::fit(data);
    let windows = data.windows(Split::Train, tc.window_len, tc.window_stride);
    if windows.is_empty() {
        return Err(PristiError::DegenerateConfig(format!(
            "no training windows: split too short for window_len {}",
            tc.window_len
        )));
    }
    let strategy = build_strategy(tc.strategy, &windows);
    let schedule = DiffusionSchedule::new(
        model_cfg.schedule,
        model_cfg.t_steps,
        model_cfg.beta_min,
        model_cfg.beta_max,
    );
    let mut model = PristiModel::new(model_cfg, &data.graph, tc.window_len, &mut rng)?;
    let mut opt = Adam::new(tc.lr);
    let mut epoch_losses = Vec::with_capacity(tc.epochs);

    // Pre-normalise window values once.
    let prepared: Vec<(NdArray, NdArray)> = windows
        .iter()
        .map(|w| {
            let mut z = w.values.clone();
            normalizer.normalize_window(&mut z);
            (z, w.cond_mask())
        })
        .collect();

    let _train_span = st_obs::span!(
        "train",
        epochs = tc.epochs as u64,
        windows = prepared.len() as u64,
        params = model.n_params() as u64,
    );
    let mut sink = tc.reporter.open()?;
    let mut order: Vec<usize> = (0..prepared.len()).collect();
    for epoch in 0..tc.epochs {
        let _epoch_span = st_obs::span!("epoch", epoch = epoch as u64);
        let epoch_t0 = Instant::now();
        opt.lr = pristi_lr(tc.lr, epoch, tc.epochs);
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut grad_norm_sum = 0.0f64;
        let mut n_batches = 0usize;
        for chunk in order.chunks(tc.batch_size) {
            let _step_span = st_obs::span!("train_step");
            let (loss, grad_norm) =
                train_step(&mut model, &mut opt, &schedule, &prepared, chunk, &strategy, tc, &mut rng);
            loss_sum += loss;
            grad_norm_sum += grad_norm;
            n_batches += 1;
        }
        let mean = loss_sum / n_batches.max(1) as f64;
        let mean_grad_norm = grad_norm_sum / n_batches.max(1) as f64;
        epoch_losses.push(mean);
        let wps = prepared.len() as f64 / epoch_t0.elapsed().as_secs_f64().max(1e-9);
        report_epoch(&mut sink, epoch, mean, mean_grad_norm, opt.lr, prepared.len(), wps);
    }
    Ok(TrainedModel { model, graph: data.graph.clone(), schedule, normalizer, epoch_losses })
}

fn build_strategy(kind: MaskStrategyKind, windows: &[Window]) -> MaskStrategy {
    match kind {
        MaskStrategyKind::Point => MaskStrategy::Point,
        MaskStrategyKind::HybridBlock => MaskStrategy::HybridBlock,
        MaskStrategyKind::HybridHistorical => {
            // Harvest observed-mask patterns from the training windows as the
            // "historical missing patterns" library.
            let patterns: Vec<NdArray> = windows.iter().map(|w| w.observed.clone()).collect();
            MaskStrategy::HybridHistorical { patterns }
        }
    }
}

/// Build the conditional information 𝒳 for a window given values (normalised)
/// and the conditioning mask, honouring the interpolation switch.
pub(crate) fn build_cond(
    values_z: &NdArray,
    cond_mask: &NdArray,
    use_interpolation: bool,
) -> NdArray {
    if use_interpolation {
        linear_interpolate(values_z, cond_mask, 0.0)
    } else {
        values_z.mul(cond_mask)
    }
}

#[allow(clippy::too_many_arguments)]
fn train_step(
    model: &mut PristiModel,
    opt: &mut Adam,
    schedule: &DiffusionSchedule,
    prepared: &[(NdArray, NdArray)],
    chunk: &[usize],
    strategy: &MaskStrategy,
    tc: &TrainConfig,
    rng: &mut StdRng,
) -> (f64, f64) {
    let b = chunk.len();
    let (n, l) = {
        let s = prepared[chunk[0]].0.shape();
        (s[0], s[1])
    };
    let mut noisy = NdArray::zeros(&[b, n, l]);
    let mut cond = NdArray::zeros(&[b, n, l]);
    let mut eps_all = NdArray::zeros(&[b, n, l]);
    let mut tmask = NdArray::zeros(&[b, n, l]);
    let mut steps = Vec::with_capacity(b);

    {
        let _prep_span = st_obs::span!("batch_prep", batch = b as u64);
        // All randomness is drawn from the master RNG *sequentially*, in the
        // same per-sample order as a fully serial loop — the random stream is
        // a function of batch position only, never of the thread count. The
        // deterministic heavy lifting (interpolation, q_sample) then runs
        // sample-parallel on the drawn values.
        let drawn: Vec<(NdArray, usize, NdArray)> = chunk
            .iter()
            .map(|&wi| {
                let target = strategy.sample(&prepared[wi].1, rng);
                let t_step = rng.random_range(1..=schedule.t_steps());
                let eps = NdArray::randn(&[n, l], rng);
                (target, t_step, eps)
            })
            .collect();
        let use_interp = model.cfg.use_interpolation;
        let samples = st_par::par_map("train_batch_prep", b, |bi| {
            let (target, t_step, eps) = &drawn[bi];
            let (values_z, cond_observed) = &prepared[chunk[bi]];
            let cond_train =
                cond_observed.zip_map(target, |o, t| if o > 0.0 && t == 0.0 { 1.0 } else { 0.0 });
            let x0 = values_z.mul(target);
            let cond_w = build_cond(values_z, &cond_train, use_interp);
            let x_t = q_sample(&x0, eps, schedule, *t_step).mul(target);
            (*t_step, x_t, cond_w)
        });
        for (bi, ((t_step, x_t, cond_w), (target, _, eps))) in
            samples.into_iter().zip(drawn).enumerate()
        {
            steps.push(t_step);
            let base = bi * n * l;
            noisy.data_mut()[base..base + n * l].copy_from_slice(x_t.data());
            cond.data_mut()[base..base + n * l].copy_from_slice(cond_w.data());
            eps_all.data_mut()[base..base + n * l].copy_from_slice(eps.data());
            tmask.data_mut()[base..base + n * l].copy_from_slice(target.data());
        }
    }

    let (loss_val, mut grads) = {
        let mut g = Graph::new(&model.store);
        let loss = {
            let _fwd_span = st_obs::span!("forward");
            let noisy_tx = g.input(noisy);
            let cond_tx = g.input(cond);
            let eps_hat = model.predict_eps(&mut g, noisy_tx, cond_tx, &steps);
            let eps_tx = g.input(eps_all);
            let mask_tx = g.input(tmask);
            g.mse_masked(eps_hat, eps_tx, mask_tx)
        };
        let loss_val = g.value(loss).data()[0] as f64;
        let grads = {
            let _bwd_span = st_obs::span!("backward");
            g.backward(loss)
        };
        (loss_val, grads)
    };
    let grad_norm = {
        let _opt_span = st_obs::span!("optimizer");
        let norm = clip_grad_norm(&mut grads, tc.clip_norm);
        opt.step(&mut model.store, &grads);
        norm
    };
    (loss_val, grad_norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PristiConfig;
    use st_data::generators::{generate_air_quality, AirQualityConfig};

    fn tiny_model_cfg() -> PristiConfig {
        let mut c = PristiConfig::small();
        c.d_model = 8;
        c.heads = 2;
        c.layers = 1;
        c.t_steps = 10;
        c.time_emb_dim = 8;
        c.node_emb_dim = 4;
        c.step_emb_dim = 8;
        c.virtual_nodes = 4;
        c.adaptive_dim = 2;
        c
    }

    fn tiny_data() -> st_data::SpatioTemporalDataset {
        // no pollution episodes: a smooth, learnable panel for smoke tests
        generate_air_quality(&AirQualityConfig {
            n_nodes: 8,
            n_days: 6,
            seed: 5,
            episodes_per_week: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn training_loss_decreases() {
        let data = tiny_data();
        let tc = TrainConfig {
            epochs: 60,
            batch_size: 4,
            lr: 4e-3,
            window_len: 12,
            window_stride: 6,
            seed: 1,
            ..Default::default()
        };
        let trained = train(&data, tiny_model_cfg(), &tc).unwrap();
        assert_eq!(trained.epoch_losses.len(), 60);
        // Per-epoch losses are noisy (random masks and diffusion steps), so
        // compare early-vs-late averages. The ε-objective has a high floor —
        // a large random fraction of each window is masked, so much of the
        // noise is simply unpredictable — hence the modest thresholds.
        let head: f64 = trained.epoch_losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = trained.epoch_losses[55..].iter().sum::<f64>() / 5.0;
        assert!(
            tail < head,
            "training loss should decrease: head {head:.4}, tail {tail:.4}"
        );
        // ε ~ N(0,1), so an untrained (zero-output) model has loss ≈ 1;
        // learning on the smooth panel pulls clearly below that.
        assert!(tail < 1.0, "late loss {tail:.4} not below noise floor");
    }

    #[test]
    fn all_strategies_run() {
        let data = tiny_data();
        for strategy in [
            MaskStrategyKind::Point,
            MaskStrategyKind::HybridBlock,
            MaskStrategyKind::HybridHistorical,
        ] {
            let tc = TrainConfig {
                epochs: 1,
                batch_size: 4,
                window_len: 12,
                window_stride: 24,
                strategy,
                seed: 2,
                ..Default::default()
            };
            let trained = train(&data, tiny_model_cfg(), &tc).unwrap();
            assert!(trained.epoch_losses[0].is_finite(), "{strategy:?} produced NaN loss");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = tiny_data();
        let tc = TrainConfig {
            epochs: 2,
            batch_size: 4,
            window_len: 12,
            window_stride: 24,
            seed: 3,
            ..Default::default()
        };
        let a = train(&data, tiny_model_cfg(), &tc).unwrap();
        let b = train(&data, tiny_model_cfg(), &tc).unwrap();
        assert_eq!(a.epoch_losses, b.epoch_losses);
    }

    #[test]
    fn degenerate_inputs_return_typed_errors() {
        use crate::error::PristiError;
        let data = tiny_data();
        // window longer than the training split
        let tc = TrainConfig { epochs: 1, window_len: 100_000, ..Default::default() };
        let err = train(&data, tiny_model_cfg(), &tc).unwrap_err();
        assert!(matches!(err, PristiError::DegenerateConfig(ref m) if m.contains("window_len")));
        // invalid model config surfaces through train()
        let mut bad = tiny_model_cfg();
        bad.heads = 3;
        let tc = TrainConfig { epochs: 1, window_len: 12, ..Default::default() };
        assert!(matches!(
            train(&data, bad, &tc),
            Err(PristiError::DegenerateConfig(_))
        ));
        // unwritable JSONL reporter path is a typed Io error, not a panic
        let tc = TrainConfig {
            epochs: 1,
            window_len: 12,
            reporter: Reporter::Jsonl("/nonexistent-dir/epochs.jsonl".into()),
            ..Default::default()
        };
        assert!(matches!(train(&data, tiny_model_cfg(), &tc), Err(PristiError::Io(_))));
    }
}
