//! Model configuration, including every ablation of Table VI and the CSDI
//! comparator as switches over the same components.

use crate::error::PristiError;
use st_diffusion::BetaSchedule;

/// Named model variants used throughout the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelVariant {
    /// Full PriSTI.
    Pristi,
    /// `mix-STI`: no interpolation and no conditional feature module — the
    /// noise estimator sees raw observed values concatenated with noise.
    MixSti,
    /// `w/o CF`: interpolation kept, conditional feature module removed
    /// (attention weights computed from the noisy input itself).
    WithoutCondFeature,
    /// `w/o spa`: spatial dependency learning module `γ_S` removed.
    WithoutSpatial,
    /// `w/o tem`: temporal dependency learning module `γ_T` removed.
    WithoutTemporal,
    /// `w/o MPNN`: message passing removed from `γ_S`.
    WithoutMpnn,
    /// `w/o Attn`: spatial global attention removed from `γ_S`.
    WithoutAttention,
    /// CSDI baseline: no interpolation, no prior, no graph — temporal and
    /// feature (spatial) self-attention on the mixed input, as in Tashiro
    /// et al. (NeurIPS 2021).
    Csdi,
}

impl ModelVariant {
    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            ModelVariant::Pristi => "PriSTI",
            ModelVariant::MixSti => "mix-STI",
            ModelVariant::WithoutCondFeature => "w/o CF",
            ModelVariant::WithoutSpatial => "w/o spa",
            ModelVariant::WithoutTemporal => "w/o tem",
            ModelVariant::WithoutMpnn => "w/o MPNN",
            ModelVariant::WithoutAttention => "w/o Attn",
            ModelVariant::Csdi => "CSDI",
        }
    }

    /// All Table VI rows (the six ablations plus full PriSTI).
    pub fn ablation_rows() -> [ModelVariant; 7] {
        [
            ModelVariant::MixSti,
            ModelVariant::WithoutCondFeature,
            ModelVariant::WithoutSpatial,
            ModelVariant::WithoutTemporal,
            ModelVariant::WithoutMpnn,
            ModelVariant::WithoutAttention,
            ModelVariant::Pristi,
        ]
    }
}

/// Hyperparameters of the noise prediction model and its diffusion process
/// (paper Table II), plus the ablation switches.
#[derive(Debug, Clone)]
pub struct PristiConfig {
    /// Channel size `d` (paper: 64).
    pub d_model: usize,
    /// Number of attention heads (paper: 8).
    pub heads: usize,
    /// Number of noise-estimation layers (paper: 4).
    pub layers: usize,
    /// Diffusion steps `T` (paper: 50 traffic / 100 air quality).
    pub t_steps: usize,
    /// Minimum noise level β₁ (paper: 1e-4).
    pub beta_min: f64,
    /// Maximum noise level β_T (paper: 0.2).
    pub beta_max: f64,
    /// Noise schedule shape (paper: quadratic, Eq. 13).
    pub schedule: BetaSchedule,
    /// Number of virtual nodes `k` for spatial-attention downsampling
    /// (paper: 16 AQI / 64 traffic); no downsampling when `k >= N`.
    pub virtual_nodes: usize,
    /// Sinusoidal temporal-encoding width (paper: 128).
    pub time_emb_dim: usize,
    /// Learnable node-embedding width (paper: 16).
    pub node_emb_dim: usize,
    /// Diffusion-step embedding width (DiffWave convention: 128).
    pub step_emb_dim: usize,
    /// Diffusion-convolution order in the MPNN (Graph WaveNet: 2).
    pub mpnn_order: usize,
    /// Adaptive-adjacency embedding width (0 disables the adaptive matrix).
    pub adaptive_dim: usize,
    /// Use linear interpolation to build the conditional information 𝒳.
    pub use_interpolation: bool,
    /// Use the conditional feature extraction module (prior-weighted attention).
    pub use_cond_feature: bool,
    /// Keep the temporal dependency module `γ_T`.
    pub use_temporal: bool,
    /// Keep the spatial dependency module `γ_S`.
    pub use_spatial: bool,
    /// Keep message passing inside `γ_S`.
    pub use_mpnn: bool,
    /// Keep spatial global attention inside `γ_S`.
    pub use_attention: bool,
}

impl Default for PristiConfig {
    /// Paper-scale defaults (Table II, traffic datasets).
    fn default() -> Self {
        Self {
            d_model: 64,
            heads: 8,
            layers: 4,
            t_steps: 50,
            beta_min: 1e-4,
            beta_max: 0.2,
            schedule: BetaSchedule::Quadratic,
            virtual_nodes: 64,
            time_emb_dim: 128,
            node_emb_dim: 16,
            step_emb_dim: 128,
            mpnn_order: 2,
            adaptive_dim: 8,
            use_interpolation: true,
            use_cond_feature: true,
            use_temporal: true,
            use_spatial: true,
            use_mpnn: true,
            use_attention: true,
        }
    }
}

impl PristiConfig {
    /// A CPU-budget configuration used by the session-scale experiments:
    /// same architecture, smaller widths.
    pub fn small() -> Self {
        Self {
            d_model: 16,
            heads: 4,
            layers: 2,
            t_steps: 30,
            virtual_nodes: 16,
            time_emb_dim: 32,
            node_emb_dim: 8,
            step_emb_dim: 32,
            adaptive_dim: 4,
            ..Self::default()
        }
    }

    /// Apply a variant's switches on top of this configuration.
    pub fn with_variant(mut self, v: ModelVariant) -> Self {
        match v {
            ModelVariant::Pristi => {}
            ModelVariant::MixSti => {
                self.use_interpolation = false;
                self.use_cond_feature = false;
            }
            ModelVariant::WithoutCondFeature => {
                self.use_cond_feature = false;
            }
            ModelVariant::WithoutSpatial => {
                self.use_spatial = false;
            }
            ModelVariant::WithoutTemporal => {
                self.use_temporal = false;
            }
            ModelVariant::WithoutMpnn => {
                self.use_mpnn = false;
            }
            ModelVariant::WithoutAttention => {
                self.use_attention = false;
            }
            ModelVariant::Csdi => {
                self.use_interpolation = false;
                self.use_cond_feature = false;
                self.use_mpnn = false;
                self.adaptive_dim = 0;
            }
        }
        self
    }

    /// Validate switch combinations that would leave the model degenerate.
    ///
    /// Returns [`PristiError::DegenerateConfig`] instead of panicking, so
    /// configurations assembled from untrusted input (CLI flags, checkpoint
    /// headers, service requests) surface as typed errors.
    pub fn validate(&self) -> Result<(), PristiError> {
        let degenerate = |msg: &str| Err(PristiError::DegenerateConfig(msg.to_string()));
        if self.heads == 0 || self.d_model % self.heads != 0 {
            return degenerate("d_model must be divisible by a positive head count");
        }
        if self.layers < 1 {
            return degenerate("need at least one noise-estimation layer");
        }
        if !self.use_temporal && !self.use_spatial {
            return degenerate("cannot remove both temporal and spatial modules");
        }
        if self.use_spatial && !self.use_mpnn && !self.use_attention {
            return degenerate("spatial module needs at least one of MPNN / attention");
        }
        if self.time_emb_dim % 2 != 0 || self.step_emb_dim % 2 != 0 {
            return degenerate("sinusoidal embedding widths must be even");
        }
        if self.t_steps < 2 {
            return degenerate("need at least 2 diffusion steps");
        }
        if !(0.0 < self.beta_min && self.beta_min <= self.beta_max && self.beta_max < 1.0) {
            return degenerate("beta range must satisfy 0 < beta_min <= beta_max < 1");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let c = PristiConfig::default();
        assert_eq!(c.d_model, 64);
        assert_eq!(c.heads, 8);
        assert_eq!(c.layers, 4);
        assert_eq!(c.beta_min, 1e-4);
        assert_eq!(c.beta_max, 0.2);
        c.validate().unwrap();
    }

    #[test]
    fn variants_flip_expected_switches() {
        let base = PristiConfig::small();
        let m = base.clone().with_variant(ModelVariant::MixSti);
        assert!(!m.use_interpolation && !m.use_cond_feature);
        let cf = base.clone().with_variant(ModelVariant::WithoutCondFeature);
        assert!(cf.use_interpolation && !cf.use_cond_feature);
        let csdi = base.clone().with_variant(ModelVariant::Csdi);
        assert!(!csdi.use_mpnn && csdi.adaptive_dim == 0);
        for v in ModelVariant::ablation_rows() {
            base.clone().with_variant(v).validate().unwrap();
        }
    }

    #[test]
    fn degenerate_configs_rejected_with_typed_errors() {
        let mut c = PristiConfig::small();
        c.use_temporal = false;
        c.use_spatial = false;
        let err = c.validate().unwrap_err();
        assert!(matches!(err, PristiError::DegenerateConfig(ref m) if m.contains("both temporal")));

        let mut c = PristiConfig::small();
        c.heads = 3; // does not divide d_model = 16
        assert!(matches!(c.validate(), Err(PristiError::DegenerateConfig(_))));

        let mut c = PristiConfig::small();
        c.layers = 0;
        assert!(matches!(c.validate(), Err(PristiError::DegenerateConfig(_))));

        let mut c = PristiConfig::small();
        c.beta_min = 0.5;
        c.beta_max = 0.2;
        assert!(matches!(c.validate(), Err(PristiError::DegenerateConfig(_))));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ModelVariant::MixSti.label(), "mix-STI");
        assert_eq!(ModelVariant::WithoutCondFeature.label(), "w/o CF");
        assert_eq!(ModelVariant::Csdi.label(), "CSDI");
    }
}
