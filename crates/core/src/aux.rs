//! Auxiliary information `U` and the diffusion-step embedding
//! (paper Section III-B3).
//!
//! `U = MLP(U_tem ‖ U_spa)` where `U_tem ∈ R^{L×128}` is the sine–cosine
//! temporal encoding and `U_spa ∈ R^{N×16}` a learnable node embedding; the
//! two are expanded and concatenated to `[N, L, 128+16]` and projected to the
//! channel width `d`. The result is added to the inputs of both the
//! conditional feature extraction module and the noise estimation module.

use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{diffusion_step_embedding, sinusoidal_encoding, Linear, Mlp};
use st_tensor::param::{normal_init, ParamStore};
use st_rand::Rng;

/// Builder for the auxiliary tensor `U ∈ R^{N×L×d}`.
#[derive(Debug, Clone)]
pub struct AuxInfo {
    node_emb: String,
    mlp: Mlp,
    time_enc: NdArray,
    n_nodes: usize,
    len: usize,
    time_dim: usize,
    node_dim: usize,
}

impl AuxInfo {
    /// Register parameters under `name` for a panel of `n_nodes × len`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        n_nodes: usize,
        len: usize,
        time_dim: usize,
        node_dim: usize,
        d_model: usize,
        rng: &mut R,
    ) -> Self {
        let node_emb = format!("{name}.node_emb");
        store.insert(&node_emb, normal_init(&[n_nodes, node_dim], 0.1, rng));
        let mlp = Mlp::new(store, &format!("{name}.mlp"), time_dim + node_dim, d_model, d_model, rng);
        let time_enc = sinusoidal_encoding(len, time_dim);
        Self { node_emb, mlp, time_enc, n_nodes, len, time_dim, node_dim }
    }

    /// Produce `U` as a `[N, L, d]` tensor on the tape.
    pub fn forward(&self, g: &mut Graph<'_>) -> Tx {
        let (n, l) = (self.n_nodes, self.len);
        // Expand U_tem [L, td] -> [N, L, td] and U_spa [N, nd] -> [N, L, nd].
        let mut cat = NdArray::zeros(&[n, l, self.time_dim + self.node_dim]);
        let td = self.time_dim;
        let nd = self.node_dim;
        let time = self.time_enc.data();
        {
            let out = cat.data_mut();
            for i in 0..n {
                for t in 0..l {
                    let base = (i * l + t) * (td + nd);
                    out[base..base + td].copy_from_slice(&time[t * td..(t + 1) * td]);
                }
            }
        }
        let cat_tx = g.input(cat);
        // Node embedding is learnable: inject as a param and broadcast-add by
        // building [N, 1, nd] and relying on broadcasting across L after
        // slicing. Simpler: write it densely through concat on the tape.
        let node = g.param(&self.node_emb); // [N, nd]
        let node3 = g.reshape(node, &[n, 1, nd]);
        // zero [N, L, nd] + broadcast node3
        let zeros = g.input(NdArray::zeros(&[n, l, nd]));
        let node_full = g.add(zeros, node3);
        let time_part = g.slice_last(cat_tx, 0, td);
        let joined = g.concat_last(&[time_part, node_full]);
        self.mlp.forward(g, joined)
    }
}

/// DiffWave-style diffusion-step embedding head: the sinusoidal embedding of
/// `t` passed through two SiLU linear layers, producing a `[B, d]` tensor to
/// broadcast over nodes and time.
#[derive(Debug, Clone)]
pub struct StepEmbedding {
    l1: Linear,
    l2: Linear,
    emb_dim: usize,
}

impl StepEmbedding {
    /// Register parameters under `name`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        emb_dim: usize,
        d_model: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            l1: Linear::new(store, &format!("{name}.l1"), emb_dim, d_model, rng),
            l2: Linear::new(store, &format!("{name}.l2"), d_model, d_model, rng),
            emb_dim,
        }
    }

    /// Embed a batch of step indices to `[B, d]`.
    pub fn forward(&self, g: &mut Graph<'_>, steps: &[usize]) -> Tx {
        let raw = g.input(diffusion_step_embedding(steps, self.emb_dim));
        let h = self.l1.forward(g, raw);
        let a = g.silu(h);
        let h2 = self.l2.forward(g, a);
        g.silu(h2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn aux_shape() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut store = ParamStore::new();
        let aux = AuxInfo::new(&mut store, "aux", 5, 7, 8, 4, 16, &mut rng);
        let mut g = Graph::new(&store);
        let u = aux.forward(&mut g);
        assert_eq!(g.shape(u), &[5, 7, 16]);
    }

    #[test]
    fn aux_varies_over_nodes_and_time() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut store = ParamStore::new();
        let aux = AuxInfo::new(&mut store, "aux", 3, 4, 8, 4, 8, &mut rng);
        let mut g = Graph::new(&store);
        let u = aux.forward(&mut g);
        let v = g.value(u);
        // different nodes at same time differ (node embedding)
        let a: Vec<f32> = (0..8).map(|c| v.at(&[0, 0, c])).collect();
        let b: Vec<f32> = (0..8).map(|c| v.at(&[1, 0, c])).collect();
        assert_ne!(a, b);
        // same node at different times differ (temporal encoding)
        let c: Vec<f32> = (0..8).map(|ch| v.at(&[0, 1, ch])).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn node_embedding_receives_gradient() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut store = ParamStore::new();
        let aux = AuxInfo::new(&mut store, "aux", 3, 4, 8, 4, 8, &mut rng);
        let mut g = Graph::new(&store);
        let u = aux.forward(&mut g);
        let t = g.input(NdArray::zeros(&[3, 4, 8]));
        let m = g.input(NdArray::ones(&[3, 4, 8]));
        let loss = g.mse_masked(u, t, m);
        let grads = g.backward(loss);
        assert!(grads.get("aux.node_emb").is_some());
    }

    #[test]
    fn step_embedding_distinguishes_steps() {
        let mut rng = StdRng::seed_from_u64(34);
        let mut store = ParamStore::new();
        let se = StepEmbedding::new(&mut store, "step", 16, 8, &mut rng);
        let mut g = Graph::new(&store);
        let e = se.forward(&mut g, &[1, 25, 50]);
        assert_eq!(g.shape(e), &[3, 8]);
        let v = g.value(e);
        let r0: Vec<f32> = v.data()[0..8].to_vec();
        let r1: Vec<f32> = v.data()[8..16].to_vec();
        assert_ne!(r0, r1);
    }
}
