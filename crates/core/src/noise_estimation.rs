//! Noise estimation module (paper Eqs. 6–9 and Section III-B3).
//!
//! A *deep* stack of residual layers. Each layer:
//!
//! 1. adds a projected diffusion-step embedding to its input;
//! 2. `γ_T` — temporal attention whose Q/K come from the prior `H^pri`
//!    (Eq. 7) and values from the noisy hidden state;
//! 3. `γ_S = MLP(φ_SA(H^tem) + φ_MP(H^tem, A))` — spatial attention with
//!    prior-derived weights and virtual-node downsampling (Eqs. 8–9) plus
//!    message passing;
//! 4. a WaveNet-style gated activation, then a projection whose two halves
//!    become the residual connection (input of the next layer) and the skip
//!    connection (summed across layers into the output head).
//!
//! The ablation switches of Table VI (`w/o spa`, `w/o tem`, `w/o MPNN`,
//! `w/o Attn`, and prior-free attention for `w/o CF`/`mix-STI`/CSDI) are all
//! handled here.

use crate::cond_feature::shapes;
use crate::config::PristiConfig;
use st_rand::Rng;
use st_graph::SensorGraph;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{gated_activation, LayerNorm, Linear, Mlp, Mpnn, MultiHeadAttention};
use st_tensor::param::ParamStore;

/// Step-invariant tensors of one noise-estimation layer, materialised once
/// per impute request for the prior-cached inference path.
///
/// PriSTI's attention *weights* are projected from the conditional prior
/// `H^pri` (Eqs. 7–8), which does not depend on the diffusion step, and the
/// adaptive MPNN adjacency depends only on learned node embeddings — so all
/// three tensors can be computed once and replayed at every reverse step.
/// Fields are `None` exactly when the corresponding sub-module is disabled
/// by the configuration or (for attention) runs prior-free self-attention,
/// which reads the step-dependent hidden state and therefore cannot be
/// cached.
#[derive(Debug, Clone)]
pub struct LayerPriorCache {
    /// Softmaxed temporal attention weights, `[(B·N)·heads, L, L]`.
    pub attn_tem: Option<NdArray>,
    /// Softmaxed spatial attention weights, `[(B·L)·heads, N, k]` where `k`
    /// is the virtual-node count (or `N` without downsampling).
    pub attn_spa: Option<NdArray>,
    /// Adaptive adjacency `softmax(relu(E₁E₂ᵀ))`, `[N, N]` (batch-free).
    pub mpnn_adp: Option<NdArray>,
}

impl LayerPriorCache {
    /// Approximate memory footprint of the cached tensors in bytes.
    pub fn bytes(&self) -> usize {
        [&self.attn_tem, &self.attn_spa, &self.mpnn_adp]
            .into_iter()
            .flatten()
            .map(|a| a.numel() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// One residual layer of the noise estimation module.
#[derive(Debug, Clone)]
pub struct NoiseEstimationLayer {
    step_proj: Linear,
    attn_tem: Option<MultiHeadAttention>,
    attn_spa: Option<MultiHeadAttention>,
    norm_spa: Option<LayerNorm>,
    mpnn: Option<Mpnn>,
    norm_mp: Option<LayerNorm>,
    mlp_spa: Option<Mlp>,
    mid_proj: Linear,
    out_proj: Linear,
    use_prior: bool,
    d_model: usize,
}

impl NoiseEstimationLayer {
    /// Register one layer's parameters under `name`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        cfg: &PristiConfig,
        graph: &SensorGraph,
        rng: &mut R,
    ) -> Self {
        let d = cfg.d_model;
        let n = graph.n_nodes();
        let attn_tem = cfg
            .use_temporal
            .then(|| MultiHeadAttention::new(store, &format!("{name}.attn_tem"), d, cfg.heads, rng));
        let (attn_spa, norm_spa, mpnn, norm_mp, mlp_spa) = if cfg.use_spatial {
            let attn_spa = cfg.use_attention.then(|| {
                MultiHeadAttention::new_downsampled(
                    store,
                    &format!("{name}.attn_spa"),
                    d,
                    cfg.heads,
                    n,
                    cfg.virtual_nodes,
                    rng,
                )
            });
            let norm_spa =
                cfg.use_attention.then(|| LayerNorm::new(store, &format!("{name}.norm_spa"), d));
            let mpnn = cfg.use_mpnn.then(|| {
                let (fwd, bwd) = graph.transition_matrices();
                Mpnn::new(
                    store,
                    &format!("{name}.mpnn"),
                    d,
                    vec![fwd, bwd],
                    n,
                    cfg.mpnn_order,
                    cfg.adaptive_dim,
                    rng,
                )
            });
            let norm_mp =
                cfg.use_mpnn.then(|| LayerNorm::new(store, &format!("{name}.norm_mp"), d));
            let mlp_spa = Some(Mlp::new(store, &format!("{name}.mlp_spa"), d, d, d, rng));
            (attn_spa, norm_spa, mpnn, norm_mp, mlp_spa)
        } else {
            (None, None, None, None, None)
        };
        Self {
            step_proj: Linear::new(store, &format!("{name}.step_proj"), d, d, rng),
            attn_tem,
            attn_spa,
            norm_spa,
            mpnn,
            norm_mp,
            mlp_spa,
            mid_proj: Linear::new(store, &format!("{name}.mid_proj"), d, 2 * d, rng),
            out_proj: Linear::new(store, &format!("{name}.out_proj"), d, 2 * d, rng),
            use_prior: cfg.use_cond_feature,
            d_model: d,
        }
    }

    /// Run one layer.
    ///
    /// * `x` — layer input `[B, N, L, d]`;
    /// * `h_pri` — conditional feature `[B, N, L, d]` (ignored unless the
    ///   config enables prior-weighted attention);
    /// * `step_emb` — diffusion-step embedding `[B, d]`.
    ///
    /// Returns `(residual, skip)`, both `[B, N, L, d]`.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        g: &mut Graph<'_>,
        x: Tx,
        h_pri: Option<Tx>,
        step_emb: Tx,
        b: usize,
        n: usize,
        l: usize,
    ) -> (Tx, Tx) {
        let d = self.d_model;
        // Add the step embedding, broadcast over nodes and time.
        let sp = self.step_proj.forward(g, step_emb);
        let sp4 = g.reshape(sp, &[b, 1, 1, d]);
        let mut y = g.add(x, sp4);

        // γ_T — temporal dependency learning (Eq. 6 first line).
        if let Some(attn_tem) = &self.attn_tem {
            let yt = shapes::to_temporal(g, y, b, n, l, d);
            let out = match (self.use_prior, h_pri) {
                (true, Some(pri)) => {
                    let pt = shapes::to_temporal(g, pri, b, n, l, d);
                    attn_tem.forward(g, pt, yt)
                }
                _ => attn_tem.forward_self(g, yt),
            };
            y = shapes::from_temporal(g, out, b, n, l, d);
        }

        // γ_S — spatial dependency learning (Eq. 6 second line).
        if let Some(mlp_spa) = &self.mlp_spa {
            let ys = shapes::to_spatial(g, y, b, n, l, d);
            let mut parts: Vec<Tx> = Vec::with_capacity(2);
            if let (Some(attn_spa), Some(norm_spa)) = (&self.attn_spa, &self.norm_spa) {
                let out = match (self.use_prior, h_pri) {
                    (true, Some(pri)) => {
                        let ps = shapes::to_spatial(g, pri, b, n, l, d);
                        attn_spa.forward(g, ps, ys)
                    }
                    _ => attn_spa.forward_self(g, ys),
                };
                let res = g.add(out, ys);
                parts.push(norm_spa.forward(g, res));
            }
            if let (Some(mpnn), Some(norm_mp)) = (&self.mpnn, &self.norm_mp) {
                let out = mpnn.forward(g, ys);
                let res = g.add(out, ys);
                parts.push(norm_mp.forward(g, res));
            }
            let combined = match parts.len() {
                2 => g.add(parts[0], parts[1]),
                1 => parts[0],
                _ => ys,
            };
            let sp_out = mlp_spa.forward(g, combined);
            y = shapes::from_spatial(g, sp_out, b, n, l, d);
        }

        // Gated activation + residual/skip split (DiffWave convention).
        let mid = self.mid_proj.forward(g, y);
        let gated = gated_activation(g, mid);
        let proj = self.out_proj.forward(g, gated);
        let res_half = g.slice_last(proj, 0, d);
        let skip = g.slice_last(proj, d, d);
        let residual = g.add_scale(x, res_half, std::f32::consts::FRAC_1_SQRT_2);
        (residual, skip)
    }

    /// Materialise this layer's step-invariant tensors (see
    /// [`LayerPriorCache`]) from the conditional prior `h_pri`
    /// (`[B, N, L, d]`, `None` for prior-free variants).
    ///
    /// The attention weights are produced by exactly the ops
    /// [`Self::forward`] runs inline (`MultiHeadAttention::forward` is the
    /// composition of `attention_weights` and `forward_with_weights`), so
    /// replaying them via [`Self::forward_cached`] is bitwise identical.
    pub fn precompute(
        &self,
        g: &mut Graph<'_>,
        h_pri: Option<Tx>,
        b: usize,
        n: usize,
        l: usize,
    ) -> LayerPriorCache {
        let d = self.d_model;
        let cacheable = self.use_prior.then_some(()).and(h_pri);
        let attn_tem = match (&self.attn_tem, cacheable) {
            (Some(attn), Some(pri)) => {
                let pt = shapes::to_temporal(g, pri, b, n, l, d);
                let w = attn.attention_weights(g, pt);
                Some(g.value(w).clone())
            }
            _ => None,
        };
        // Spatial attention only runs inside the `use_spatial` branch, which
        // `self.attn_spa.is_some()` already encodes.
        let attn_spa = match (&self.attn_spa, cacheable) {
            (Some(attn), Some(pri)) => {
                let ps = shapes::to_spatial(g, pri, b, n, l, d);
                let w = attn.attention_weights(g, ps);
                Some(g.value(w).clone())
            }
            _ => None,
        };
        let mpnn_adp = self
            .mpnn
            .as_ref()
            .and_then(|m| m.adaptive_adjacency(g).map(|tx| g.value(tx).clone()));
        LayerPriorCache { attn_tem, attn_spa, mpnn_adp }
    }

    /// Run one layer reusing a [`LayerPriorCache`] instead of recomputing the
    /// prior-derived tensors. Arguments and return match [`Self::forward`];
    /// the output is bitwise identical for a cache built from the same
    /// `h_pri` that `forward` would receive.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_cached(
        &self,
        g: &mut Graph<'_>,
        x: Tx,
        cache: &LayerPriorCache,
        step_emb: Tx,
        b: usize,
        n: usize,
        l: usize,
    ) -> (Tx, Tx) {
        let d = self.d_model;
        let sp = self.step_proj.forward(g, step_emb);
        let sp4 = g.reshape(sp, &[b, 1, 1, d]);
        let mut y = g.add(x, sp4);

        // γ_T — cached prior-derived weights, or self-attention on the
        // step-dependent hidden state for prior-free variants (matching the
        // fallback arm of `forward`).
        if let Some(attn_tem) = &self.attn_tem {
            let yt = shapes::to_temporal(g, y, b, n, l, d);
            let out = match &cache.attn_tem {
                Some(w) => {
                    let wt = g.input(w.clone());
                    attn_tem.forward_with_weights(g, wt, yt)
                }
                None => attn_tem.forward_self(g, yt),
            };
            y = shapes::from_temporal(g, out, b, n, l, d);
        }

        // γ_S — same structure as `forward`, with cached spatial weights and
        // cached adaptive adjacency injected where available.
        if let Some(mlp_spa) = &self.mlp_spa {
            let ys = shapes::to_spatial(g, y, b, n, l, d);
            let mut parts: Vec<Tx> = Vec::with_capacity(2);
            if let (Some(attn_spa), Some(norm_spa)) = (&self.attn_spa, &self.norm_spa) {
                let out = match &cache.attn_spa {
                    Some(w) => {
                        let wt = g.input(w.clone());
                        attn_spa.forward_with_weights(g, wt, ys)
                    }
                    None => attn_spa.forward_self(g, ys),
                };
                let res = g.add(out, ys);
                parts.push(norm_spa.forward(g, res));
            }
            if let (Some(mpnn), Some(norm_mp)) = (&self.mpnn, &self.norm_mp) {
                let adp = cache.mpnn_adp.as_ref().map(|a| g.input(a.clone()));
                let out = mpnn.forward_with_adaptive(g, ys, adp);
                let res = g.add(out, ys);
                parts.push(norm_mp.forward(g, res));
            }
            let combined = match parts.len() {
                2 => g.add(parts[0], parts[1]),
                1 => parts[0],
                _ => ys,
            };
            let sp_out = mlp_spa.forward(g, combined);
            y = shapes::from_spatial(g, sp_out, b, n, l, d);
        }

        let mid = self.mid_proj.forward(g, y);
        let gated = gated_activation(g, mid);
        let proj = self.out_proj.forward(g, gated);
        let res_half = g.slice_last(proj, 0, d);
        let skip = g.slice_last(proj, d, d);
        let residual = g.add_scale(x, res_half, std::f32::consts::FRAC_1_SQRT_2);
        (residual, skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelVariant, PristiConfig};
    use st_rand::StdRng;
    use st_rand::SeedableRng;
    use st_graph::random_plane_layout;
    use st_tensor::ndarray::NdArray;

    fn build(variant: ModelVariant, n: usize) -> (ParamStore, NoiseEstimationLayer, PristiConfig) {
        let mut rng = StdRng::seed_from_u64(50);
        let mut cfg = PristiConfig::small().with_variant(variant);
        cfg.virtual_nodes = 2; // exercise the Eq. 9 downsampling path in tests
        cfg.validate().unwrap();
        let graph = SensorGraph::from_coords(random_plane_layout(n, 20.0, 2), 0.1);
        let mut store = ParamStore::new();
        let layer = NoiseEstimationLayer::new(&mut store, "l0", &cfg, &graph, &mut rng);
        (store, layer, cfg)
    }

    fn run_layer(
        store: &ParamStore,
        layer: &NoiseEstimationLayer,
        with_prior: bool,
        b: usize,
        n: usize,
        l: usize,
        d: usize,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(51);
        let mut g = Graph::new(store);
        let x = g.input(NdArray::randn(&[b, n, l, d], &mut rng));
        let pri = with_prior.then(|| g.input(NdArray::randn(&[b, n, l, d], &mut rng)));
        let se = g.input(NdArray::randn(&[b, d], &mut rng));
        let (res, skip) = layer.forward(&mut g, x, pri, se, b, n, l);
        (g.shape(res).to_vec(), g.shape(skip).to_vec())
    }

    #[test]
    fn full_layer_shapes() {
        let (store, layer, cfg) = build(ModelVariant::Pristi, 5);
        let (r, s) = run_layer(&store, &layer, true, 2, 5, 6, cfg.d_model);
        assert_eq!(r, vec![2, 5, 6, cfg.d_model]);
        assert_eq!(s, vec![2, 5, 6, cfg.d_model]);
    }

    #[test]
    fn ablated_layers_still_run() {
        for v in [
            ModelVariant::WithoutSpatial,
            ModelVariant::WithoutTemporal,
            ModelVariant::WithoutMpnn,
            ModelVariant::WithoutAttention,
            ModelVariant::MixSti,
            ModelVariant::Csdi,
        ] {
            let (store, layer, cfg) = build(v, 4);
            let with_prior = cfg.use_cond_feature;
            let (r, _) = run_layer(&store, &layer, with_prior, 1, 4, 5, cfg.d_model);
            assert_eq!(r, vec![1, 4, 5, cfg.d_model], "variant {v:?}");
        }
    }

    #[test]
    fn without_spatial_registers_no_spatial_params() {
        let (store, _, _) = build(ModelVariant::WithoutSpatial, 4);
        assert!(!store.contains("l0.attn_spa.wq.w"));
        assert!(!store.contains("l0.mpnn.proj.w"));
        assert!(store.contains("l0.attn_tem.wq.w"));
    }

    #[test]
    fn without_mpnn_keeps_attention() {
        let (store, _, _) = build(ModelVariant::WithoutMpnn, 4);
        assert!(store.contains("l0.attn_spa.wq.w"));
        assert!(!store.contains("l0.mpnn.proj.w"));
    }

    #[test]
    fn prior_changes_output() {
        let (store, layer, cfg) = build(ModelVariant::Pristi, 4);
        let d = cfg.d_model;
        let mut rng = StdRng::seed_from_u64(52);
        let x_val = NdArray::randn(&[1, 4, 5, d], &mut rng);
        let se_val = NdArray::randn(&[1, d], &mut rng);
        let p1 = NdArray::randn(&[1, 4, 5, d], &mut rng);
        let p2 = NdArray::randn(&[1, 4, 5, d], &mut rng);
        let run = |pri_val: &NdArray| -> Vec<f32> {
            let mut g = Graph::new(&store);
            let x = g.input(x_val.clone());
            let pri = g.input(pri_val.clone());
            let se = g.input(se_val.clone());
            let (res, _) = layer.forward(&mut g, x, Some(pri), se, 1, 4, 5);
            g.value(res).data().to_vec()
        };
        let o1 = run(&p1);
        let o2 = run(&p2);
        let diff: f32 = o1.iter().zip(&o2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "prior should influence the layer output");
    }

    #[test]
    fn gradients_reach_all_active_components() {
        let (store, layer, cfg) = build(ModelVariant::Pristi, 4);
        let d = cfg.d_model;
        let mut rng = StdRng::seed_from_u64(53);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[1, 4, 5, d], &mut rng));
        let pri = g.input(NdArray::randn(&[1, 4, 5, d], &mut rng));
        let se = g.input(NdArray::randn(&[1, d], &mut rng));
        let (res, skip) = layer.forward(&mut g, x, Some(pri), se, 1, 4, 5);
        let total = g.add(res, skip);
        let t = g.input(NdArray::zeros(&[1, 4, 5, d]));
        let m = g.input(NdArray::ones(&[1, 4, 5, d]));
        let loss = g.mse_masked(total, t, m);
        let grads = g.backward(loss);
        for p in [
            "l0.step_proj.w",
            "l0.attn_tem.wv.w",
            "l0.attn_spa.wv.w",
            "l0.attn_spa.pk",
            "l0.mpnn.proj.w",
            "l0.mlp_spa.l1.w",
            "l0.mid_proj.w",
            "l0.out_proj.w",
        ] {
            assert!(grads.get(p).is_some(), "no gradient for {p}");
        }
    }
}
