//! The [`Sampler`] surface: which reverse-process solver runs, plus the one
//! spec parser/formatter shared by every entry point.
//!
//! CLI flags (`--sampler pndm:6`), serve JSONL requests (`"sampler":
//! "refine:4"`), and the loadtest schedule all speak the same little spec
//! grammar, round-tripped through [`std::str::FromStr`] /
//! [`std::fmt::Display`]:
//!
//! ```text
//! ddpm                      full T-step ancestral sampling
//! ddim:STEPS[:ETA]          DDIM, eta defaults to 0.0 (deterministic)
//! pndm:STEPS[:ORDER]        pseudo-numerical multistep, order defaults to 4
//! refine:STEPS[:STRENGTH]   noised-prior refine chain, strength defaults to 0.5
//! ```
//!
//! The spec string is also the serve coalescing key: two requests batch
//! together exactly when their specs are equal (checkpoint-independent — the
//! spec never mentions a model).

use crate::error::{PristiError, Result};
use st_diffusion::process::{self, GenerativeProcess};
use std::fmt;
use std::str::FromStr;

/// Default DDIM stochasticity when the spec omits it.
pub const DEFAULT_DDIM_ETA: f64 = 0.0;
/// Default PNDM multistep order when the spec omits it.
pub const DEFAULT_PNDM_ORDER: usize = 4;
/// Default refine noising strength when the spec omits it.
pub const DEFAULT_REFINE_STRENGTH: f64 = 0.5;

/// How the reverse process is sampled.
///
/// Each variant selects a [`GenerativeProcess`] implementation (see
/// [`Sampler::solver`]); the enum itself is the serializable, comparable
/// *spec*. Marked `#[non_exhaustive]`: downstream matches need a wildcard
/// arm so future solvers (flow matching is on the roadmap) are not breaking
/// changes.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Sampler {
    /// Full `T`-step ancestral DDPM sampling (Algorithm 2).
    #[default]
    Ddpm,
    /// Accelerated DDIM sampling (the efficiency direction named in the
    /// paper's conclusion): `steps` network evaluations instead of `T`, with
    /// `eta` interpolating between deterministic DDIM (0.0) and ancestral
    /// DDPM noise levels (1.0). 8–12 steps typically match the full loop
    /// closely.
    Ddim {
        /// Number of denoising steps (network evaluations).
        steps: usize,
        /// Stochasticity knob `η ∈ [0, 1]`.
        eta: f64,
    },
    /// Pseudo-numerical linear-multistep sampling ([`process::Pndm`], the
    /// FastSTI direction): deterministic DDIM transfer map over an
    /// Adams–Bashforth ε-history combination. ~6 steps track the full chain;
    /// `order` 1 degenerates to `Ddim { eta: 0.0 }` bitwise.
    Pndm {
        /// Number of denoising steps (network evaluations).
        steps: usize,
        /// Linear-multistep order, `1..=4`.
        order: usize,
    },
    /// Two-stage refine sampling ([`process::Refine`], the RDPI direction):
    /// the interpolated conditional serves as a deterministic prior estimate,
    /// noised to `strength·T` and refined by a short deterministic chain.
    /// 3–4 steps at strength ≈ 0.5 track the full chain.
    Refine {
        /// Number of denoising steps (network evaluations).
        steps: usize,
        /// Fraction of the schedule the prior estimate is noised to, `(0, 1]`.
        strength: f64,
    },
}

impl Sampler {
    /// Check the spec for degenerate values, with the same
    /// [`PristiError::DegenerateConfig`] contract everywhere a sampler enters
    /// the system (`impute_batch`, the serve admission path, CLI parsing).
    pub fn validate(&self) -> Result<()> {
        let deg = |msg: String| Err(PristiError::DegenerateConfig(msg));
        match *self {
            Sampler::Ddpm => Ok(()),
            Sampler::Ddim { steps, eta } => {
                if steps < 1 {
                    return deg("DDIM needs at least one step".into());
                }
                if !eta.is_finite() || eta < 0.0 {
                    return deg(format!("DDIM eta must be finite and non-negative, got {eta}"));
                }
                Ok(())
            }
            Sampler::Pndm { steps, order } => {
                if steps < 1 {
                    return deg("PNDM needs at least one step".into());
                }
                if !(1..=4).contains(&order) {
                    return deg(format!("PNDM order must be in 1..=4, got {order}"));
                }
                Ok(())
            }
            Sampler::Refine { steps, strength } => {
                if steps < 1 {
                    return deg("refine needs at least one step".into());
                }
                if !strength.is_finite() || strength <= 0.0 || strength > 1.0 {
                    return deg(format!(
                        "refine strength must be in (0, 1], got {strength}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Construct the [`GenerativeProcess`] this spec names. The returned
    /// solver is fresh (no multistep history); drivers still call
    /// [`GenerativeProcess::reset`] before each chain.
    pub fn solver(&self) -> Box<dyn GenerativeProcess> {
        match *self {
            Sampler::Ddpm => Box::new(process::Ddpm),
            Sampler::Ddim { steps, eta } => Box::new(process::Ddim::new(steps, eta)),
            Sampler::Pndm { steps, order } => Box::new(process::Pndm::new(steps, order)),
            Sampler::Refine { steps, strength } => Box::new(process::Refine::new(steps, strength)),
        }
    }
}

impl fmt::Display for Sampler {
    /// The canonical spec string; parameters equal to their defaults are
    /// omitted, so `Ddim { steps: 10, eta: 0.0 }` prints as `ddim:10` and
    /// round-trips through [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Sampler::Ddpm => write!(f, "ddpm"),
            Sampler::Ddim { steps, eta } => {
                if eta == DEFAULT_DDIM_ETA {
                    write!(f, "ddim:{steps}")
                } else {
                    write!(f, "ddim:{steps}:{eta:?}")
                }
            }
            Sampler::Pndm { steps, order } => {
                if order == DEFAULT_PNDM_ORDER {
                    write!(f, "pndm:{steps}")
                } else {
                    write!(f, "pndm:{steps}:{order}")
                }
            }
            Sampler::Refine { steps, strength } => {
                if strength == DEFAULT_REFINE_STRENGTH {
                    write!(f, "refine:{steps}")
                } else {
                    write!(f, "refine:{steps}:{strength:?}")
                }
            }
        }
    }
}

impl FromStr for Sampler {
    type Err = PristiError;

    /// Parse a spec string (see the module docs for the grammar). The parsed
    /// spec is [`validate`](Sampler::validate)d, so a syntactically valid but
    /// degenerate spec (e.g. `ddim:0`) is rejected here too.
    ///
    /// ```
    /// use pristi_core::Sampler;
    ///
    /// // The full grammar: ddpm | ddim:K[:eta] | pndm:K[:order] | refine:K[:strength].
    /// assert_eq!("ddpm".parse::<Sampler>().unwrap(), Sampler::Ddpm);
    /// assert_eq!(
    ///     "ddim:8".parse::<Sampler>().unwrap(),
    ///     Sampler::Ddim { steps: 8, eta: 0.0 },
    /// );
    /// assert_eq!(
    ///     "pndm:6:2".parse::<Sampler>().unwrap(),
    ///     Sampler::Pndm { steps: 6, order: 2 },
    /// );
    /// assert_eq!(
    ///     "refine:4".parse::<Sampler>().unwrap(),
    ///     Sampler::Refine { steps: 4, strength: 0.5 },
    /// );
    /// // Specs round-trip through Display — the serve coalescing key.
    /// assert_eq!("pndm:6:2".parse::<Sampler>().unwrap().to_string(), "pndm:6:2");
    /// // Degenerate specs are typed errors, not panics.
    /// assert!("ddim:0".parse::<Sampler>().is_err());
    /// assert!("warp:3".parse::<Sampler>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self> {
        let deg = |msg: String| PristiError::DegenerateConfig(msg);
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let arg1 = parts.next();
        let arg2 = parts.next();
        if parts.next().is_some() {
            return Err(deg(format!("sampler spec {s:?} has too many `:` fields")));
        }
        let steps = |a: Option<&str>| -> Result<usize> {
            let a = a.ok_or_else(|| deg(format!("sampler spec {s:?} is missing a step count")))?;
            a.parse::<usize>()
                .map_err(|_| deg(format!("sampler spec {s:?}: bad step count {a:?}")))
        };
        let sampler = match head {
            "ddpm" => {
                if arg1.is_some() {
                    return Err(deg(format!("sampler spec {s:?}: ddpm takes no parameters")));
                }
                Sampler::Ddpm
            }
            "ddim" => {
                let eta = match arg2 {
                    None => DEFAULT_DDIM_ETA,
                    Some(a) => a
                        .parse::<f64>()
                        .map_err(|_| deg(format!("sampler spec {s:?}: bad eta {a:?}")))?,
                };
                Sampler::Ddim { steps: steps(arg1)?, eta }
            }
            "pndm" => {
                let order = match arg2 {
                    None => DEFAULT_PNDM_ORDER,
                    Some(a) => a
                        .parse::<usize>()
                        .map_err(|_| deg(format!("sampler spec {s:?}: bad order {a:?}")))?,
                };
                Sampler::Pndm { steps: steps(arg1)?, order }
            }
            "refine" => {
                let strength = match arg2 {
                    None => DEFAULT_REFINE_STRENGTH,
                    Some(a) => a
                        .parse::<f64>()
                        .map_err(|_| deg(format!("sampler spec {s:?}: bad strength {a:?}")))?,
                };
                Sampler::Refine { steps: steps(arg1)?, strength }
            }
            other => {
                return Err(deg(format!(
                    "unknown sampler {other:?} (expected ddpm, ddim:K[:ETA], pndm:K[:ORDER], or refine:K[:STRENGTH])"
                )))
            }
        };
        sampler.validate()?;
        Ok(sampler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_display_and_parse() {
        let cases = [
            Sampler::Ddpm,
            Sampler::Ddim { steps: 10, eta: 0.0 },
            Sampler::Ddim { steps: 4, eta: 0.5 },
            Sampler::Pndm { steps: 6, order: 4 },
            Sampler::Pndm { steps: 6, order: 2 },
            Sampler::Refine { steps: 4, strength: 0.5 },
            Sampler::Refine { steps: 3, strength: 0.25 },
        ];
        for s in cases {
            let spec = s.to_string();
            let back: Sampler = spec.parse().unwrap();
            assert_eq!(back, s, "spec {spec:?} did not round-trip");
        }
    }

    #[test]
    fn canonical_specs_omit_default_parameters() {
        assert_eq!(Sampler::Ddim { steps: 10, eta: 0.0 }.to_string(), "ddim:10");
        assert_eq!(Sampler::Ddim { steps: 10, eta: 0.5 }.to_string(), "ddim:10:0.5");
        assert_eq!(Sampler::Pndm { steps: 6, order: 4 }.to_string(), "pndm:6");
        assert_eq!(Sampler::Refine { steps: 4, strength: 0.5 }.to_string(), "refine:4");
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        assert_eq!("ddpm".parse::<Sampler>().unwrap(), Sampler::Ddpm);
        assert_eq!(
            "ddim:10:0.0".parse::<Sampler>().unwrap(),
            Sampler::Ddim { steps: 10, eta: 0.0 }
        );
        assert_eq!("pndm:6".parse::<Sampler>().unwrap(), Sampler::Pndm { steps: 6, order: 4 });
        assert_eq!(
            "refine:4".parse::<Sampler>().unwrap(),
            Sampler::Refine { steps: 4, strength: 0.5 }
        );
    }

    #[test]
    fn parse_rejects_malformed_and_degenerate_specs() {
        for bad in [
            "", "ddqm", "ddpm:3", "ddim", "ddim:x", "ddim:0", "ddim:4:-1", "ddim:4:nope",
            "pndm:0", "pndm:6:0", "pndm:6:5", "refine:0", "refine:4:0", "refine:4:1.5",
            "ddim:4:0.0:9",
        ] {
            let err = bad.parse::<Sampler>().unwrap_err();
            assert!(
                matches!(err, PristiError::DegenerateConfig(_)),
                "spec {bad:?} should fail with DegenerateConfig, got {err:?}"
            );
        }
    }

    #[test]
    fn validate_matches_parse_rules() {
        assert!(Sampler::Ddim { steps: 4, eta: f64::NAN }.validate().is_err());
        assert!(Sampler::Pndm { steps: 6, order: 0 }.validate().is_err());
        assert!(Sampler::Refine { steps: 4, strength: 0.0 }.validate().is_err());
        assert!(Sampler::Refine { steps: 4, strength: 1.0 }.validate().is_ok());
    }

    #[test]
    fn solver_op_labels_are_distinct() {
        let labels: Vec<&str> = [
            Sampler::Ddpm,
            Sampler::Ddim { steps: 4, eta: 0.0 },
            Sampler::Pndm { steps: 4, order: 4 },
            Sampler::Refine { steps: 4, strength: 0.5 },
        ]
        .iter()
        .map(|s| s.solver().op_label())
        .collect();
        assert_eq!(labels, ["p_sample_step", "ddim_step", "pndm_step", "refine_step"]);
    }
}
