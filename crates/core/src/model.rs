//! Full noise prediction model `ε_θ(X̃ᵗ, 𝒳, A, t)` (paper Fig. 2).

use crate::aux::{AuxInfo, StepEmbedding};
use crate::cond_feature::CondFeatureModule;
use crate::config::PristiConfig;
use crate::error::PristiError;
use crate::noise_estimation::NoiseEstimationLayer;
use st_rand::{Rng, SeedableRng, StdRng};
use st_graph::SensorGraph;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::Linear;
use st_tensor::param::ParamStore;

/// The assembled PriSTI noise predictor: input projections, auxiliary
/// information, the conditional feature extraction module, a stack of noise
/// estimation layers, and the two-convolution output head.
#[derive(Debug)]
pub struct PristiModel {
    /// All learnable parameters.
    pub store: ParamStore,
    /// Model configuration (with ablation switches applied).
    pub cfg: PristiConfig,
    n_nodes: usize,
    len: usize,
    cond_proj: Linear,
    input_proj: Linear,
    aux: AuxInfo,
    step_emb: StepEmbedding,
    cond_feature: Option<CondFeatureModule>,
    layers: Vec<NoiseEstimationLayer>,
    out1: Linear,
    out2: Linear,
}

impl PristiModel {
    /// Build a model for a fixed sensor graph and window length.
    ///
    /// Returns [`PristiError::DegenerateConfig`] when the configuration's
    /// switch combination would leave the model degenerate.
    pub fn new<R: Rng + ?Sized>(
        cfg: PristiConfig,
        graph: &SensorGraph,
        len: usize,
        rng: &mut R,
    ) -> Result<Self, PristiError> {
        cfg.validate()?;
        let mut store = ParamStore::new();
        let d = cfg.d_model;
        let n = graph.n_nodes();
        let cond_proj = Linear::new(&mut store, "cond_proj", 1, d, rng);
        let input_proj = Linear::new(&mut store, "input_proj", 2, d, rng);
        let aux = AuxInfo::new(
            &mut store,
            "aux",
            n,
            len,
            cfg.time_emb_dim,
            cfg.node_emb_dim,
            d,
            rng,
        );
        let step_emb = StepEmbedding::new(&mut store, "step", cfg.step_emb_dim, d, rng);
        let cond_feature = cfg.use_cond_feature.then(|| {
            CondFeatureModule::new(
                &mut store,
                "cond_feat",
                d,
                cfg.heads,
                graph,
                cfg.mpnn_order,
                cfg.adaptive_dim,
                rng,
            )
        });
        let layers = (0..cfg.layers)
            .map(|i| NoiseEstimationLayer::new(&mut store, &format!("layer{i}"), &cfg, graph, rng))
            .collect();
        let out1 = Linear::new(&mut store, "out1", d, d, rng);
        // DiffWave zero-initialises this projection; at CPU-scale budgets the
        // zero head blocks upstream gradients for dozens of steps, so a small
        // Xavier init converges markedly faster with no observed instability.
        let out2 = Linear::new(&mut store, "out2", d, 1, rng);
        Ok(Self {
            store,
            cfg,
            n_nodes: n,
            len,
            cond_proj,
            input_proj,
            aux,
            step_emb,
            cond_feature,
            layers,
            out1,
            out2,
        })
    }

    /// Rebuild a model from a configuration plus an already-trained
    /// [`ParamStore`] (the checkpoint loading path).
    ///
    /// The architecture is reconstructed from `cfg`/`graph`/`len` (a fixed
    /// dummy seed initialises throw-away weights), then the store is swapped
    /// for `params` after verifying it holds exactly the parameter tensors —
    /// by name and shape — that this architecture owns. Any disagreement is
    /// reported as [`PristiError::CheckpointCorrupt`] /
    /// [`PristiError::ShapeMismatch`].
    pub fn from_parts(
        cfg: PristiConfig,
        graph: &SensorGraph,
        len: usize,
        params: ParamStore,
    ) -> Result<Self, PristiError> {
        let mut model = Self::new(cfg, graph, len, &mut StdRng::seed_from_u64(0))?;
        if params.len() != model.store.len() {
            return Err(PristiError::CheckpointCorrupt(format!(
                "parameter count mismatch: architecture owns {} tensors, checkpoint holds {}",
                model.store.len(),
                params.len()
            )));
        }
        for (name, arr) in model.store.iter() {
            match params.get(name) {
                None => {
                    return Err(PristiError::CheckpointCorrupt(format!(
                        "checkpoint is missing parameter `{name}`"
                    )))
                }
                Some(p) if p.shape() != arr.shape() => {
                    return Err(PristiError::ShapeMismatch {
                        what: "checkpoint parameter tensor",
                        expected: arr.shape().to_vec(),
                        got: p.shape().to_vec(),
                    })
                }
                Some(_) => {}
            }
        }
        model.store = params;
        Ok(model)
    }

    /// Number of sensors the model was built for.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Window length the model was built for.
    pub fn window_len(&self) -> usize {
        self.len
    }

    /// Total scalar parameter count.
    pub fn n_params(&self) -> usize {
        self.store.numel()
    }

    /// Build the ε-prediction graph.
    ///
    /// * `noisy` — `[B, N, L]` noisy imputation target (zero off-target);
    /// * `cond`  — `[B, N, L]` conditional information 𝒳 (interpolated
    ///   observations, or masked raw observations for `mix-STI`/CSDI);
    /// * `steps` — per-sample diffusion step indices, length `B`.
    ///
    /// Returns the predicted noise `[B, N, L]` on the tape.
    pub fn predict_eps(&self, g: &mut Graph<'_>, noisy: Tx, cond: Tx, steps: &[usize]) -> Tx {
        let (n, l) = (self.n_nodes, self.len);
        let b = steps.len();
        assert_eq!(g.shape(noisy), &[b, n, l], "noisy shape mismatch");
        assert_eq!(g.shape(cond), &[b, n, l], "cond shape mismatch");

        let cond4 = g.reshape(cond, &[b, n, l, 1]);
        let noisy4 = g.reshape(noisy, &[b, n, l, 1]);
        let u = self.aux.forward(g); // [N, L, d], broadcasts over batch

        // Conditional feature H^pri (Eq. 5) from noise-free information.
        let h_pri = self.cond_feature.as_ref().map(|cf| {
            let h0 = self.cond_proj.forward(g, cond4);
            let h = g.add(h0, u);
            cf.forward(g, h, b, n, l)
        });

        // Noisy input H^in = Conv(𝒳 ‖ X̃ᵗ) (+ U).
        let cat = g.concat_last(&[cond4, noisy4]);
        let hin0 = self.input_proj.forward(g, cat);
        let mut x = g.add(hin0, u);

        let se = self.step_emb.forward(g, steps); // [B, d]

        let mut skips: Vec<Tx> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (res, skip) = layer.forward(g, x, h_pri, se, b, n, l);
            x = res;
            skips.push(skip);
        }
        let mut skip_sum = skips[0];
        for &s in &skips[1..] {
            skip_sum = g.add(skip_sum, s);
        }
        let scaled = g.scale(skip_sum, 1.0 / (self.layers.len() as f32).sqrt());
        let a1 = g.relu(scaled);
        let h1 = self.out1.forward(g, a1);
        let a2 = g.relu(h1);
        let out = self.out2.forward(g, a2); // [B, N, L, 1]
        g.reshape(out, &[b, n, l])
    }

    /// Evaluation-mode convenience: predict noise for concrete arrays
    /// (used by the reverse sampling loop).
    pub fn predict_eps_eval(&self, noisy: &NdArray, cond: &NdArray, t: usize) -> NdArray {
        let b = noisy.shape()[0];
        let mut g = Graph::new_eval(&self.store);
        let noisy_tx = g.input(noisy.clone());
        let cond_tx = g.input(cond.clone());
        let steps = vec![t; b];
        let out = self.predict_eps(&mut g, noisy_tx, cond_tx, &steps);
        g.value(out).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelVariant;
    use st_rand::StdRng;
    use st_rand::SeedableRng;
    use st_graph::random_plane_layout;

    fn graph(n: usize) -> SensorGraph {
        SensorGraph::from_coords(random_plane_layout(n, 20.0, 3), 0.1)
    }

    fn tiny_cfg() -> PristiConfig {
        let mut c = PristiConfig::small();
        c.d_model = 8;
        c.heads = 2;
        c.layers = 2;
        c.t_steps = 10;
        c.time_emb_dim = 8;
        c.node_emb_dim = 4;
        c.step_emb_dim = 8;
        c.virtual_nodes = 3;
        c.adaptive_dim = 2;
        c
    }

    #[test]
    fn forward_output_shape() {
        let mut rng = StdRng::seed_from_u64(60);
        let model = PristiModel::new(tiny_cfg(), &graph(5), 6, &mut rng).unwrap();
        let mut g = Graph::new(&model.store);
        let noisy = g.input(NdArray::randn(&[2, 5, 6], &mut rng));
        let cond = g.input(NdArray::randn(&[2, 5, 6], &mut rng));
        let out = model.predict_eps(&mut g, noisy, cond, &[3, 7]);
        assert_eq!(g.shape(out), &[2, 5, 6]);
    }

    #[test]
    fn untrained_head_outputs_are_bounded() {
        let mut rng = StdRng::seed_from_u64(61);
        let model = PristiModel::new(tiny_cfg(), &graph(4), 5, &mut rng).unwrap();
        let noisy = NdArray::randn(&[1, 4, 5], &mut rng);
        let cond = NdArray::randn(&[1, 4, 5], &mut rng);
        let out = model.predict_eps_eval(&noisy, &cond, 5);
        assert!(out.data().iter().all(|v| v.is_finite()));
        assert!(out.max_abs() < 50.0, "untrained output blew up: {}", out.max_abs());
    }

    #[test]
    fn all_variants_forward() {
        let mut rng = StdRng::seed_from_u64(62);
        for v in [
            ModelVariant::Pristi,
            ModelVariant::MixSti,
            ModelVariant::WithoutCondFeature,
            ModelVariant::WithoutSpatial,
            ModelVariant::WithoutTemporal,
            ModelVariant::WithoutMpnn,
            ModelVariant::WithoutAttention,
            ModelVariant::Csdi,
        ] {
            let cfg = tiny_cfg().with_variant(v);
            let model = PristiModel::new(cfg, &graph(4), 5, &mut rng).unwrap();
            let noisy = NdArray::randn(&[1, 4, 5], &mut rng);
            let cond = NdArray::randn(&[1, 4, 5], &mut rng);
            let out = model.predict_eps_eval(&noisy, &cond, 2);
            assert_eq!(out.shape(), &[1, 4, 5], "variant {v:?}");
        }
    }

    #[test]
    fn loss_backward_touches_most_params() {
        let mut rng = StdRng::seed_from_u64(63);
        let model = PristiModel::new(tiny_cfg(), &graph(4), 5, &mut rng).unwrap();
        let mut g = Graph::new(&model.store);
        let noisy = g.input(NdArray::randn(&[2, 4, 5], &mut rng));
        let cond = g.input(NdArray::randn(&[2, 4, 5], &mut rng));
        let out = model.predict_eps(&mut g, noisy, cond, &[1, 9]);
        let target = g.input(NdArray::randn(&[2, 4, 5], &mut rng));
        let mask = g.input(NdArray::ones(&[2, 4, 5]));
        let loss = g.mse_masked(out, target, mask);
        let grads = g.backward(loss);
        // out2 is zero-init so gradients through it are still defined; at
        // minimum the output head and several layer params must be touched.
        assert!(grads.get("out2.w").is_some());
        assert!(grads.get("out1.w").is_some());
        let n_with_grad = grads.len();
        let n_params = model.store.len();
        assert!(
            n_with_grad * 2 >= n_params,
            "only {n_with_grad} of {n_params} parameter tensors received gradients"
        );
    }

    #[test]
    fn variant_param_counts_ordered() {
        let mut rng = StdRng::seed_from_u64(64);
        let full = PristiModel::new(tiny_cfg(), &graph(4), 5, &mut rng).unwrap();
        let wo_cf =
            PristiModel::new(tiny_cfg().with_variant(ModelVariant::WithoutCondFeature), &graph(4), 5, &mut rng).unwrap();
        let wo_spa =
            PristiModel::new(tiny_cfg().with_variant(ModelVariant::WithoutSpatial), &graph(4), 5, &mut rng).unwrap();
        assert!(full.n_params() > wo_cf.n_params());
        assert!(wo_cf.n_params() > wo_spa.n_params() || full.n_params() > wo_spa.n_params());
    }
}
