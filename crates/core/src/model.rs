//! Full noise prediction model `ε_θ(X̃ᵗ, 𝒳, A, t)` (paper Fig. 2).

use crate::aux::{AuxInfo, StepEmbedding};
use crate::cond_feature::CondFeatureModule;
use crate::config::PristiConfig;
use crate::error::PristiError;
use crate::noise_estimation::{LayerPriorCache, NoiseEstimationLayer};
use st_rand::{Rng, SeedableRng, StdRng};
use st_graph::SensorGraph;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::Linear;
use st_tensor::param::ParamStore;

/// The assembled PriSTI noise predictor: input projections, auxiliary
/// information, the conditional feature extraction module, a stack of noise
/// estimation layers, and the two-convolution output head.
#[derive(Debug)]
pub struct PristiModel {
    /// All learnable parameters.
    pub store: ParamStore,
    /// Model configuration (with ablation switches applied).
    pub cfg: PristiConfig,
    n_nodes: usize,
    len: usize,
    cond_proj: Linear,
    input_proj: Linear,
    aux: AuxInfo,
    step_emb: StepEmbedding,
    cond_feature: Option<CondFeatureModule>,
    layers: Vec<NoiseEstimationLayer>,
    out1: Linear,
    out2: Linear,
}

impl PristiModel {
    /// Build a model for a fixed sensor graph and window length.
    ///
    /// Returns [`PristiError::DegenerateConfig`] when the configuration's
    /// switch combination would leave the model degenerate.
    pub fn new<R: Rng + ?Sized>(
        cfg: PristiConfig,
        graph: &SensorGraph,
        len: usize,
        rng: &mut R,
    ) -> Result<Self, PristiError> {
        cfg.validate()?;
        let mut store = ParamStore::new();
        let d = cfg.d_model;
        let n = graph.n_nodes();
        let cond_proj = Linear::new(&mut store, "cond_proj", 1, d, rng);
        let input_proj = Linear::new(&mut store, "input_proj", 2, d, rng);
        let aux = AuxInfo::new(
            &mut store,
            "aux",
            n,
            len,
            cfg.time_emb_dim,
            cfg.node_emb_dim,
            d,
            rng,
        );
        let step_emb = StepEmbedding::new(&mut store, "step", cfg.step_emb_dim, d, rng);
        let cond_feature = cfg.use_cond_feature.then(|| {
            CondFeatureModule::new(
                &mut store,
                "cond_feat",
                d,
                cfg.heads,
                graph,
                cfg.mpnn_order,
                cfg.adaptive_dim,
                rng,
            )
        });
        let layers = (0..cfg.layers)
            .map(|i| NoiseEstimationLayer::new(&mut store, &format!("layer{i}"), &cfg, graph, rng))
            .collect();
        let out1 = Linear::new(&mut store, "out1", d, d, rng);
        // DiffWave zero-initialises this projection; at CPU-scale budgets the
        // zero head blocks upstream gradients for dozens of steps, so a small
        // Xavier init converges markedly faster with no observed instability.
        let out2 = Linear::new(&mut store, "out2", d, 1, rng);
        Ok(Self {
            store,
            cfg,
            n_nodes: n,
            len,
            cond_proj,
            input_proj,
            aux,
            step_emb,
            cond_feature,
            layers,
            out1,
            out2,
        })
    }

    /// Rebuild a model from a configuration plus an already-trained
    /// [`ParamStore`] (the checkpoint loading path).
    ///
    /// The architecture is reconstructed from `cfg`/`graph`/`len` (a fixed
    /// dummy seed initialises throw-away weights), then the store is swapped
    /// for `params` after verifying it holds exactly the parameter tensors —
    /// by name and shape — that this architecture owns. Any disagreement is
    /// reported as [`PristiError::CheckpointCorrupt`] /
    /// [`PristiError::ShapeMismatch`].
    pub fn from_parts(
        cfg: PristiConfig,
        graph: &SensorGraph,
        len: usize,
        params: ParamStore,
    ) -> Result<Self, PristiError> {
        let mut model = Self::new(cfg, graph, len, &mut StdRng::seed_from_u64(0))?;
        if params.len() != model.store.len() {
            return Err(PristiError::CheckpointCorrupt(format!(
                "parameter count mismatch: architecture owns {} tensors, checkpoint holds {}",
                model.store.len(),
                params.len()
            )));
        }
        for (name, arr) in model.store.iter() {
            match params.get(name) {
                None => {
                    return Err(PristiError::CheckpointCorrupt(format!(
                        "checkpoint is missing parameter `{name}`"
                    )))
                }
                Some(p) if p.shape() != arr.shape() => {
                    return Err(PristiError::ShapeMismatch {
                        what: "checkpoint parameter tensor",
                        expected: arr.shape().to_vec(),
                        got: p.shape().to_vec(),
                    })
                }
                Some(_) => {}
            }
        }
        model.store = params;
        Ok(model)
    }

    /// Number of sensors the model was built for.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Window length the model was built for.
    pub fn window_len(&self) -> usize {
        self.len
    }

    /// Total scalar parameter count.
    pub fn n_params(&self) -> usize {
        self.store.numel()
    }

    /// Build the ε-prediction graph.
    ///
    /// * `noisy` — `[B, N, L]` noisy imputation target (zero off-target);
    /// * `cond`  — `[B, N, L]` conditional information 𝒳 (interpolated
    ///   observations, or masked raw observations for `mix-STI`/CSDI);
    /// * `steps` — per-sample diffusion step indices, length `B`.
    ///
    /// Returns the predicted noise `[B, N, L]` on the tape.
    pub fn predict_eps(&self, g: &mut Graph<'_>, noisy: Tx, cond: Tx, steps: &[usize]) -> Tx {
        let (n, l) = (self.n_nodes, self.len);
        let b = steps.len();
        assert_eq!(g.shape(noisy), &[b, n, l], "noisy shape mismatch");
        assert_eq!(g.shape(cond), &[b, n, l], "cond shape mismatch");

        let cond4 = g.reshape(cond, &[b, n, l, 1]);
        let noisy4 = g.reshape(noisy, &[b, n, l, 1]);
        let u = self.aux.forward(g); // [N, L, d], broadcasts over batch

        // Conditional feature H^pri (Eq. 5) from noise-free information.
        let h_pri = self.cond_feature.as_ref().map(|cf| {
            let h0 = self.cond_proj.forward(g, cond4);
            let h = g.add(h0, u);
            cf.forward(g, h, b, n, l)
        });

        // Noisy input H^in = Conv(𝒳 ‖ X̃ᵗ) (+ U).
        let cat = g.concat_last(&[cond4, noisy4]);
        let hin0 = self.input_proj.forward(g, cat);
        let mut x = g.add(hin0, u);

        let se = self.step_emb.forward(g, steps); // [B, d]

        let mut skips: Vec<Tx> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (res, skip) = layer.forward(g, x, h_pri, se, b, n, l);
            x = res;
            skips.push(skip);
        }
        let mut skip_sum = skips[0];
        for &s in &skips[1..] {
            skip_sum = g.add(skip_sum, s);
        }
        let scaled = g.scale(skip_sum, 1.0 / (self.layers.len() as f32).sqrt());
        let a1 = g.relu(scaled);
        let h1 = self.out1.forward(g, a1);
        let a2 = g.relu(h1);
        let out = self.out2.forward(g, a2); // [B, N, L, 1]
        g.reshape(out, &[b, n, l])
    }

    /// Evaluation-mode convenience: predict noise for concrete arrays
    /// (used by the reverse sampling loop).
    pub fn predict_eps_eval(&self, noisy: &NdArray, cond: &NdArray, t: usize) -> NdArray {
        let b = noisy.shape()[0];
        let mut g = Graph::new_eval(&self.store);
        let noisy_tx = g.input(noisy.clone());
        let cond_tx = g.input(cond.clone());
        let steps = vec![t; b];
        let out = self.predict_eps(&mut g, noisy_tx, cond_tx, &steps);
        g.value(out).clone()
    }

    /// Materialise everything in the ε-prediction graph that does not depend
    /// on the diffusion step: the conditional prior `H^pri` (Eq. 5), the
    /// auxiliary embedding `U`, the replicated conditional input, and each
    /// layer's prior-derived attention weights / adaptive adjacency.
    ///
    /// * `cond` — `[R, N, L]` conditional information, one row per *request*
    ///   (deduplicated: not per ensemble sample);
    /// * `counts` — ensemble size of each request (`counts.len() == R`).
    ///
    /// The prior runs once at batch `R` and its batch-carrying outputs are
    /// replicated per request to `S_total = Σ counts` rows — valid bitwise
    /// because every kernel in the model is batch-slice independent (each
    /// batch element's output depends only on its own slice; pinned by the
    /// batched-vs-solo tests). [`Self::predict_eps_eval_cached`] then runs
    /// only the step-dependent noise path per denoise step.
    pub fn build_prior_cache(&self, cond: &NdArray, counts: &[usize]) -> PriorCache {
        let (n, l) = (self.n_nodes, self.len);
        let r = counts.len();
        assert!(r > 0, "prior cache needs at least one request");
        assert!(counts.iter().all(|&c| c > 0), "requests need at least one sample");
        assert_eq!(cond.shape(), &[r, n, l], "cond shape mismatch");
        let s_total: usize = counts.iter().sum();

        let mut g = Graph::new_eval(&self.store);
        let cond_tx = g.input(cond.clone());
        let cond4_tx = g.reshape(cond_tx, &[r, n, l, 1]);
        let u_tx = self.aux.forward(&mut g);
        let h_pri_tx = self.cond_feature.as_ref().map(|cf| {
            let h0 = self.cond_proj.forward(&mut g, cond4_tx);
            let h = g.add(h0, u_tx);
            cf.forward(&mut g, h, r, n, l)
        });
        let layers = self
            .layers
            .iter()
            .map(|layer| {
                let lc = layer.precompute(&mut g, h_pri_tx, r, n, l);
                LayerPriorCache {
                    attn_tem: lc.attn_tem.map(|w| expand_batch(&w, r, counts, s_total)),
                    attn_spa: lc.attn_spa.map(|w| expand_batch(&w, r, counts, s_total)),
                    mpnn_adp: lc.mpnn_adp,
                }
            })
            .collect();
        PriorCache {
            s_total,
            cond4: expand_batch(g.value(cond4_tx), r, counts, s_total),
            u: g.value(u_tx).clone(),
            h_pri: h_pri_tx.map(|t| g.value(t).clone()),
            layers,
        }
    }

    /// Build the step-dependent half of the ε-prediction graph against a
    /// [`PriorCache`]: input projection of `𝒳 ‖ X̃ᵗ`, step embedding, and the
    /// layer stack replaying the cached attention weights. Bitwise identical
    /// to [`Self::predict_eps`] on the replicated conditional.
    ///
    /// `noisy` must be `[S_total, N, L]` with `S_total` matching the cache.
    pub fn predict_eps_cached(
        &self,
        g: &mut Graph<'_>,
        cache: &PriorCache,
        noisy: Tx,
        t: usize,
    ) -> Tx {
        let (n, l) = (self.n_nodes, self.len);
        let b = cache.s_total;
        assert_eq!(g.shape(noisy), &[b, n, l], "noisy shape mismatch");

        let noisy4 = g.reshape(noisy, &[b, n, l, 1]);
        let cond4 = g.input(cache.cond4.clone());
        let u = g.input(cache.u.clone());

        // Noisy input H^in = Conv(𝒳 ‖ X̃ᵗ) (+ U); the prior is already in
        // the cache as per-layer attention weights.
        let cat = g.concat_last(&[cond4, noisy4]);
        let hin0 = self.input_proj.forward(g, cat);
        let mut x = g.add(hin0, u);

        let steps = vec![t; b];
        let se = self.step_emb.forward(g, &steps); // [B, d]

        let mut skips: Vec<Tx> = Vec::with_capacity(self.layers.len());
        for (layer, lc) in self.layers.iter().zip(&cache.layers) {
            let (res, skip) = layer.forward_cached(g, x, lc, se, b, n, l);
            x = res;
            skips.push(skip);
        }
        let mut skip_sum = skips[0];
        for &s in &skips[1..] {
            skip_sum = g.add(skip_sum, s);
        }
        let scaled = g.scale(skip_sum, 1.0 / (self.layers.len() as f32).sqrt());
        let a1 = g.relu(scaled);
        let h1 = self.out1.forward(g, a1);
        let a2 = g.relu(h1);
        let out = self.out2.forward(g, a2); // [B, N, L, 1]
        g.reshape(out, &[b, n, l])
    }

    /// Evaluation-mode counterpart of [`Self::predict_eps_eval`] for the
    /// prior-cached path: one fresh eval graph holding only the
    /// step-dependent ops, with the cached tensors injected as inputs.
    pub fn predict_eps_eval_cached(&self, cache: &PriorCache, noisy: &NdArray, t: usize) -> NdArray {
        let mut g = Graph::new_eval(&self.store);
        let noisy_tx = g.input(noisy.clone());
        let out = self.predict_eps_cached(&mut g, cache, noisy_tx, t);
        g.value(out).clone()
    }
}

/// Step-invariant tensors for one coalesced impute batch, built by
/// [`PristiModel::build_prior_cache`] and consumed by
/// [`PristiModel::predict_eps_eval_cached`] at every reverse-diffusion step.
///
/// See DESIGN.md §11 for what is step-invariant in PriSTI and why, the memory
/// footprint, and the bitwise-equality argument.
#[derive(Debug, Clone)]
pub struct PriorCache {
    /// Total ensemble rows `Σ counts` the cache was expanded to.
    s_total: usize,
    /// Conditional information replicated per sample, `[S_total, N, L, 1]`.
    cond4: NdArray,
    /// Auxiliary embedding `U`, `[N, L, d]` (broadcasts over the batch).
    u: NdArray,
    /// Conditional feature `H^pri` (Eq. 5) per request, `[R, N, L, d]`;
    /// `None` for prior-free variants. The per-step path only needs the
    /// attention weights derived from it, but the prior itself is retained
    /// for inspection and footprint accounting.
    h_pri: Option<NdArray>,
    /// Per-layer cached attention weights and adaptive adjacency.
    layers: Vec<LayerPriorCache>,
}

impl PriorCache {
    /// Total ensemble rows (`Σ counts`) this cache serves per step.
    pub fn n_samples_total(&self) -> usize {
        self.s_total
    }

    /// The conditional feature `H^pri`, `[R, N, L, d]`, when the model has a
    /// conditional feature module.
    pub fn h_pri(&self) -> Option<&NdArray> {
        self.h_pri.as_ref()
    }

    /// Approximate memory footprint of all cached tensors in bytes.
    pub fn bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        self.cond4.numel() * f
            + self.u.numel() * f
            + self.h_pri.as_ref().map_or(0, |h| h.numel() * f)
            + self.layers.iter().map(LayerPriorCache::bytes).sum::<usize>()
    }
}

/// Replicate each request's contiguous chunk of a batch-major tensor
/// (`shape[0]` divisible by `r`, request-major) `counts[r]` times, growing the
/// leading dimension from `R·rest` to `S_total·rest`.
fn expand_batch(arr: &NdArray, r: usize, counts: &[usize], s_total: usize) -> NdArray {
    if counts.iter().all(|&c| c == 1) {
        return arr.clone();
    }
    let shape = arr.shape();
    debug_assert_eq!(shape[0] % r, 0, "leading dim {} not divisible by {r}", shape[0]);
    let chunk = arr.numel() / r;
    let mut out_shape = shape.to_vec();
    out_shape[0] = shape[0] / r * s_total;
    let mut data = Vec::with_capacity(chunk * s_total);
    for (ri, &c) in counts.iter().enumerate() {
        let src = &arr.data()[ri * chunk..(ri + 1) * chunk];
        for _ in 0..c {
            data.extend_from_slice(src);
        }
    }
    NdArray::from_vec(&out_shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelVariant;
    use st_rand::StdRng;
    use st_rand::SeedableRng;
    use st_graph::random_plane_layout;

    fn graph(n: usize) -> SensorGraph {
        SensorGraph::from_coords(random_plane_layout(n, 20.0, 3), 0.1)
    }

    fn tiny_cfg() -> PristiConfig {
        let mut c = PristiConfig::small();
        c.d_model = 8;
        c.heads = 2;
        c.layers = 2;
        c.t_steps = 10;
        c.time_emb_dim = 8;
        c.node_emb_dim = 4;
        c.step_emb_dim = 8;
        c.virtual_nodes = 3;
        c.adaptive_dim = 2;
        c
    }

    #[test]
    fn forward_output_shape() {
        let mut rng = StdRng::seed_from_u64(60);
        let model = PristiModel::new(tiny_cfg(), &graph(5), 6, &mut rng).unwrap();
        let mut g = Graph::new(&model.store);
        let noisy = g.input(NdArray::randn(&[2, 5, 6], &mut rng));
        let cond = g.input(NdArray::randn(&[2, 5, 6], &mut rng));
        let out = model.predict_eps(&mut g, noisy, cond, &[3, 7]);
        assert_eq!(g.shape(out), &[2, 5, 6]);
    }

    #[test]
    fn untrained_head_outputs_are_bounded() {
        let mut rng = StdRng::seed_from_u64(61);
        let model = PristiModel::new(tiny_cfg(), &graph(4), 5, &mut rng).unwrap();
        let noisy = NdArray::randn(&[1, 4, 5], &mut rng);
        let cond = NdArray::randn(&[1, 4, 5], &mut rng);
        let out = model.predict_eps_eval(&noisy, &cond, 5);
        assert!(out.data().iter().all(|v| v.is_finite()));
        assert!(out.max_abs() < 50.0, "untrained output blew up: {}", out.max_abs());
    }

    #[test]
    fn all_variants_forward() {
        let mut rng = StdRng::seed_from_u64(62);
        for v in [
            ModelVariant::Pristi,
            ModelVariant::MixSti,
            ModelVariant::WithoutCondFeature,
            ModelVariant::WithoutSpatial,
            ModelVariant::WithoutTemporal,
            ModelVariant::WithoutMpnn,
            ModelVariant::WithoutAttention,
            ModelVariant::Csdi,
        ] {
            let cfg = tiny_cfg().with_variant(v);
            let model = PristiModel::new(cfg, &graph(4), 5, &mut rng).unwrap();
            let noisy = NdArray::randn(&[1, 4, 5], &mut rng);
            let cond = NdArray::randn(&[1, 4, 5], &mut rng);
            let out = model.predict_eps_eval(&noisy, &cond, 2);
            assert_eq!(out.shape(), &[1, 4, 5], "variant {v:?}");
        }
    }

    /// The cached evaluator must be bitwise identical to the plain one for
    /// every ablation variant — including the prior-free ones, where the
    /// attention weights cannot be cached and the cached path must fall back
    /// to self-attention — and across per-request expansion (counts ≠ 1).
    #[test]
    fn cached_eval_matches_uncached_for_all_variants() {
        let mut rng = StdRng::seed_from_u64(65);
        for v in [
            ModelVariant::Pristi,
            ModelVariant::MixSti,
            ModelVariant::WithoutCondFeature,
            ModelVariant::WithoutSpatial,
            ModelVariant::WithoutTemporal,
            ModelVariant::WithoutMpnn,
            ModelVariant::WithoutAttention,
            ModelVariant::Csdi,
        ] {
            let cfg = tiny_cfg().with_variant(v);
            let model = PristiModel::new(cfg, &graph(4), 5, &mut rng).unwrap();
            let (n, l) = (4, 5);
            // Two requests with ensemble sizes 2 and 1.
            let cond_r = NdArray::randn(&[2, n, l], &mut rng);
            let counts = [2usize, 1];
            let mut cond_b = NdArray::zeros(&[3, n, l]);
            let chunk = n * l;
            for (row, req) in [0usize, 0, 1].into_iter().enumerate() {
                cond_b.data_mut()[row * chunk..(row + 1) * chunk]
                    .copy_from_slice(&cond_r.data()[req * chunk..(req + 1) * chunk]);
            }
            let noisy = NdArray::randn(&[3, n, l], &mut rng);
            let cache = model.build_prior_cache(&cond_r, &counts);
            for t in [1usize, 5] {
                let plain = model.predict_eps_eval(&noisy, &cond_b, t);
                let cached = model.predict_eps_eval_cached(&cache, &noisy, t);
                assert!(
                    plain.to_bytes() == cached.to_bytes(),
                    "cached eval diverges for variant {v:?} at t {t}"
                );
            }
        }
    }

    #[test]
    fn loss_backward_touches_most_params() {
        let mut rng = StdRng::seed_from_u64(63);
        let model = PristiModel::new(tiny_cfg(), &graph(4), 5, &mut rng).unwrap();
        let mut g = Graph::new(&model.store);
        let noisy = g.input(NdArray::randn(&[2, 4, 5], &mut rng));
        let cond = g.input(NdArray::randn(&[2, 4, 5], &mut rng));
        let out = model.predict_eps(&mut g, noisy, cond, &[1, 9]);
        let target = g.input(NdArray::randn(&[2, 4, 5], &mut rng));
        let mask = g.input(NdArray::ones(&[2, 4, 5]));
        let loss = g.mse_masked(out, target, mask);
        let grads = g.backward(loss);
        // out2 is zero-init so gradients through it are still defined; at
        // minimum the output head and several layer params must be touched.
        assert!(grads.get("out2.w").is_some());
        assert!(grads.get("out1.w").is_some());
        let n_with_grad = grads.len();
        let n_params = model.store.len();
        assert!(
            n_with_grad * 2 >= n_params,
            "only {n_with_grad} of {n_params} parameter tensors received gradients"
        );
    }

    #[test]
    fn variant_param_counts_ordered() {
        let mut rng = StdRng::seed_from_u64(64);
        let full = PristiModel::new(tiny_cfg(), &graph(4), 5, &mut rng).unwrap();
        let wo_cf =
            PristiModel::new(tiny_cfg().with_variant(ModelVariant::WithoutCondFeature), &graph(4), 5, &mut rng).unwrap();
        let wo_spa =
            PristiModel::new(tiny_cfg().with_variant(ModelVariant::WithoutSpatial), &graph(4), 5, &mut rng).unwrap();
        assert!(full.n_params() > wo_cf.n_params());
        assert!(wo_cf.n_params() > wo_spa.n_params() || full.n_params() > wo_spa.n_params());
    }
}
