//! DDIM-style accelerated sampling (Song, Meng & Ermon, ICLR 2021).
//!
//! The paper's conclusion names sampling efficiency as future work: the
//! reverse DDPM loop costs one network evaluation per diffusion step
//! (50–100 for PriSTI). DDIM reinterprets the same trained ε-predictor as a
//! non-Markovian implicit model, allowing a *subsequence* of steps
//! `τ_1 < τ_2 < … < τ_S` (S ≪ T) with the deterministic update
//!
//! ```text
//! x̂₀  = (x_τ − √(1−ᾱ_τ)·ε̂) / √ᾱ_τ
//! x_{τ'} = √ᾱ_{τ'}·x̂₀ + √(1−ᾱ_{τ'} − σ²)·ε̂ + σ·z
//! ```
//!
//! with `σ = η·σ_DDPM` (η = 0 gives fully deterministic sampling). The same
//! [`NoisePredictor`] drives both samplers, so a model trained once can be
//! sampled at any speed/quality trade-off.

use crate::ddpm::NoisePredictor;
use crate::schedule::DiffusionSchedule;
use st_rand::StdRng;
use st_tensor::NdArray;

/// Evenly spaced subsequence of diffusion steps, always containing 1 and `T`.
pub fn ddim_timesteps(t_total: usize, n_steps: usize) -> Vec<usize> {
    assert!(n_steps >= 1, "need at least one DDIM step");
    assert!(t_total >= 1);
    let n = n_steps.min(t_total);
    let mut out: Vec<usize> = (0..n)
        .map(|i| 1 + (i as f64 * (t_total - 1) as f64 / (n.max(2) - 1) as f64).round() as usize)
        .collect();
    out.dedup();
    if *out.last().unwrap() != t_total {
        out.push(t_total);
    }
    out
}

/// Deterministic half of one DDIM update from step `t` to `t_prev`
/// (`t_prev < t`, or 0 to end): the predicted-`x₀` projection plus the
/// direction term, *without* the `σ·z` noise.
///
/// Element-wise, so any batch slice's mean equals the slice computed alone —
/// the property the micro-batching imputation service relies on.
pub fn ddim_mean(
    x_t: &NdArray,
    eps_hat: &NdArray,
    schedule: &DiffusionSchedule,
    t: usize,
    t_prev: usize,
    eta: f64,
) -> NdArray {
    assert!(t_prev < t, "ddim_step must move backwards: {t_prev} !< {t}");
    assert_eq!(x_t.shape(), eps_hat.shape(), "x_t/eps shape mismatch");
    let ab_t = schedule.alpha_bar(t);
    let ab_prev = if t_prev == 0 { 1.0 } else { schedule.alpha_bar(t_prev) };
    // predicted clean sample
    let c_x = 1.0 / ab_t.sqrt();
    let c_e = (1.0 - ab_t).sqrt() / ab_t.sqrt();
    let sigma = ddim_noise_scale(schedule, t, t_prev, eta);
    let dir_coef = (1.0 - ab_prev - sigma * sigma).max(0.0).sqrt();
    let a = ab_prev.sqrt();

    let mut out = NdArray::zeros(x_t.shape());
    for ((o, &x), &e) in out.data_mut().iter_mut().zip(x_t.data()).zip(eps_hat.data()) {
        let x0_hat = c_x as f32 * x - c_e as f32 * e;
        *o = a as f32 * x0_hat + dir_coef as f32 * e;
    }
    out
}

/// The DDIM noise standard deviation `σ = η·√((1−ᾱ_{τ'})/(1−ᾱ_τ))·√(1−ᾱ_τ/ᾱ_{τ'})`
/// (0 for deterministic sampling, `η = 0`).
pub fn ddim_noise_scale(schedule: &DiffusionSchedule, t: usize, t_prev: usize, eta: f64) -> f64 {
    let ab_t = schedule.alpha_bar(t);
    let ab_prev = if t_prev == 0 { 1.0 } else { schedule.alpha_bar(t_prev) };
    eta * ((1.0 - ab_prev) / (1.0 - ab_t)).sqrt() * (1.0 - ab_t / ab_prev).sqrt()
}

/// One DDIM update from step `t` to step `t_prev` (`t_prev < t`, or 0 to end).
///
/// `eta` interpolates between deterministic DDIM (0.0) and ancestral DDPM
/// noise levels (1.0): [`ddim_mean`] plus `σ·z` noise.
#[allow(clippy::too_many_arguments)]
pub fn ddim_step(
    x_t: &NdArray,
    eps_hat: &NdArray,
    schedule: &DiffusionSchedule,
    t: usize,
    t_prev: usize,
    eta: f64,
    rng: &mut StdRng,
) -> NdArray {
    let mut out = ddim_mean(x_t, eps_hat, schedule, t, t_prev, eta);
    crate::ddpm::add_reverse_noise_slice(
        out.data_mut(),
        ddim_noise_scale(schedule, t, t_prev, eta),
        rng,
    );
    out
}

/// Full accelerated reverse process: `n_steps` network evaluations instead of
/// `schedule.t_steps()`.
pub fn ddim_sample<P: NoisePredictor + ?Sized>(
    predictor: &P,
    shape: &[usize],
    schedule: &DiffusionSchedule,
    n_steps: usize,
    eta: f64,
    rng: &mut StdRng,
) -> NdArray {
    let taus = ddim_timesteps(schedule.t_steps(), n_steps);
    let mut x = NdArray::randn(shape, rng);
    for i in (0..taus.len()).rev() {
        let t = taus[i];
        let t_prev = if i == 0 { 0 } else { taus[i - 1] };
        let eps_hat = predictor.predict(&x, t);
        x = ddim_step(&x, &eps_hat, schedule, t, t_prev, eta, rng);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::SeedableRng;

    #[test]
    fn timesteps_subsequence_properties() {
        let taus = ddim_timesteps(50, 10);
        assert_eq!(*taus.first().unwrap(), 1);
        assert_eq!(*taus.last().unwrap(), 50);
        for w in taus.windows(2) {
            assert!(w[0] < w[1], "not strictly increasing: {taus:?}");
        }
        assert!(taus.len() <= 11);
    }

    #[test]
    fn timesteps_degenerate_cases() {
        assert_eq!(ddim_timesteps(50, 1), vec![1, 50]);
        let all = ddim_timesteps(10, 10);
        assert_eq!(all, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    /// With an oracle ε-predictor, deterministic DDIM recovers the target in
    /// very few steps — much more precisely than DDPM at the same count.
    #[test]
    fn oracle_ddim_recovers_target_in_few_steps() {
        let schedule = DiffusionSchedule::pristi_default(50);
        let target = -0.8f32;
        let sched = schedule.clone();
        let oracle = move |x_t: &NdArray, t: usize| -> NdArray {
            let ab = sched.alpha_bar(t) as f32;
            x_t.map(|x| (x - ab.sqrt() * target) / (1.0 - ab).sqrt())
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut acc = 0.0f64;
        for _ in 0..10 {
            let x0 = ddim_sample(&oracle, &[4], &schedule, 8, 0.0, &mut rng);
            acc += x0.mean();
        }
        let mean = acc / 10.0;
        assert!(
            (mean - target as f64).abs() < 0.05,
            "8-step deterministic DDIM should land on {target}, got {mean}"
        );
    }

    #[test]
    fn eta_zero_is_deterministic() {
        let schedule = DiffusionSchedule::pristi_default(20);
        let x = NdArray::from_vec(&[3], vec![0.3, -0.2, 1.0]);
        let e = NdArray::from_vec(&[3], vec![0.1, 0.0, -0.5]);
        let a = ddim_step(&x, &e, &schedule, 10, 5, 0.0, &mut StdRng::seed_from_u64(1));
        let b = ddim_step(&x, &e, &schedule, 10, 5, 0.0, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
    }

    #[test]
    fn eta_one_adds_noise() {
        let schedule = DiffusionSchedule::pristi_default(20);
        let x = NdArray::from_vec(&[3], vec![0.3, -0.2, 1.0]);
        let e = NdArray::from_vec(&[3], vec![0.1, 0.0, -0.5]);
        let a = ddim_step(&x, &e, &schedule, 10, 5, 1.0, &mut StdRng::seed_from_u64(1));
        let b = ddim_step(&x, &e, &schedule, 10, 5, 1.0, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b, "η=1 must inject noise");
    }

    /// The η=1 single-gap DDIM variance matches the DDPM posterior variance.
    #[test]
    fn eta_one_matches_ddpm_variance() {
        let s = DiffusionSchedule::pristi_default(30);
        for t in 2..=30 {
            let ab_t = s.alpha_bar(t);
            let ab_prev = s.alpha_bar(t - 1);
            let sigma_ddim_sq = ((1.0 - ab_prev) / (1.0 - ab_t)) * (1.0 - ab_t / ab_prev);
            assert!(
                (sigma_ddim_sq - s.sigma_sq(t)).abs() < 1e-10,
                "variance mismatch at t={t}: {sigma_ddim_sq} vs {}",
                s.sigma_sq(t)
            );
        }
    }
}
