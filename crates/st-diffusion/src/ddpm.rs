//! Forward noising and reverse sampling (paper Section III-A, Algorithms 1–2).

use crate::schedule::DiffusionSchedule;
use st_rand::StdRng;
use st_rand::{Distribution, Normal};
use st_tensor::NdArray;

/// Anything that can predict the noise `ε` added to a noisy imputation target.
///
/// The conditioning information (interpolated observations `𝒳`, adjacency
/// `A`, auxiliary encodings) is captured by the implementor, so the sampling
/// loop only ever sees the noisy target and the step index.
pub trait NoisePredictor {
    /// Predict `ε̂ = ε_θ(X̃ᵗ, 𝒳, A, t)` for a noisy target `X̃ᵗ`.
    ///
    /// `noisy` and the returned array share the same shape.
    fn predict(&self, noisy: &NdArray, t: usize) -> NdArray;
}

impl<F: Fn(&NdArray, usize) -> NdArray> NoisePredictor for F {
    fn predict(&self, noisy: &NdArray, t: usize) -> NdArray {
        self(noisy, t)
    }
}

/// Forward process: draw `X̃ᵗ = √ᾱ_t X̃⁰ + √(1−ᾱ_t) ε` for a given `ε`.
pub fn q_sample(x0: &NdArray, eps: &NdArray, schedule: &DiffusionSchedule, t: usize) -> NdArray {
    assert_eq!(x0.shape(), eps.shape(), "x0/eps shape mismatch");
    let t0 = st_obs::op_start();
    let ab = schedule.alpha_bar(t);
    let a = ab.sqrt() as f32;
    let b = (1.0 - ab).sqrt() as f32;
    let out = x0.zip_map(eps, |x, e| a * x + b * e);
    st_obs::record_op(st_obs::Phase::Fwd, "q_sample", t0, out.numel() as u64);
    out
}

/// Deterministic half of one reverse step: the posterior mean
/// `μ = (X̃ᵗ − β_t/√(1−ᾱ_t)·ε̂) / √α_t`
/// (the paper's Eq. 3 prints `√ᾱ_t` in the denominator, a well-known typo for
/// `√α_t`; the authors' released code uses `√α_t`).
///
/// The computation is purely element-wise, so the mean of any batch slice is
/// bitwise identical to the mean of that slice computed on its own — the
/// property the micro-batching imputation service relies on.
pub fn p_sample_mean(
    x_t: &NdArray,
    eps_hat: &NdArray,
    schedule: &DiffusionSchedule,
    t: usize,
) -> NdArray {
    assert_eq!(x_t.shape(), eps_hat.shape(), "x_t/eps shape mismatch");
    let beta = schedule.beta(t) as f32;
    let alpha = schedule.alpha(t) as f32;
    let ab = schedule.alpha_bar(t) as f32;
    let coef = beta / (1.0 - ab).sqrt();
    let inv_sqrt_alpha = 1.0 / alpha.sqrt();
    x_t.zip_map(eps_hat, |x, e| inv_sqrt_alpha * (x - coef * e))
}

/// Standard deviation `σ_t` of the noise added after [`p_sample_mean`]
/// (`0` at `t = 1`, Algorithm 2 line 5).
pub fn p_sample_noise_scale(schedule: &DiffusionSchedule, t: usize) -> f64 {
    if t <= 1 { 0.0 } else { schedule.sigma_sq(t).sqrt() }
}

/// Add `scale · z, z ~ N(0, 1)` to every element of `buf`, drawing from
/// `rng` in buffer order. No-op (and no RNG draws) when `scale == 0`.
///
/// Exposed on the raw slice so callers owning a batched `[S, N, L]` tensor
/// can drive each request's slice from its own RNG stream.
pub fn add_reverse_noise_slice(buf: &mut [f32], scale: f64, rng: &mut StdRng) {
    if scale == 0.0 {
        return;
    }
    let normal = Normal::new(0.0f32, 1.0).expect("valid normal");
    let s = scale as f32;
    for v in buf {
        *v += s * normal.sample(rng);
    }
}

/// One reverse step (Algorithm 2, lines 4–5): given `X̃ᵗ` and the predicted
/// noise, produce `X̃ᵗ⁻¹` — [`p_sample_mean`] plus `σ_t`-scaled noise. At
/// `t = 1` no noise is added (`σ₁ = 0`).
pub fn p_sample_step(
    x_t: &NdArray,
    eps_hat: &NdArray,
    schedule: &DiffusionSchedule,
    t: usize,
    rng: &mut StdRng,
) -> NdArray {
    let t0 = st_obs::op_start();
    let mut out = p_sample_mean(x_t, eps_hat, schedule, t);
    add_reverse_noise_slice(out.data_mut(), p_sample_noise_scale(schedule, t), rng);
    st_obs::record_op(st_obs::Phase::Fwd, "p_sample_step", t0, out.numel() as u64);
    out
}

/// Full reverse process (Algorithm 2): start from `X̃ᵀ ~ N(0, I)` and denoise
/// down to `X̃⁰` using the trained predictor.
pub fn reverse_sample<P: NoisePredictor + ?Sized>(
    predictor: &P,
    shape: &[usize],
    schedule: &DiffusionSchedule,
    rng: &mut StdRng,
) -> NdArray {
    let _span = st_obs::span!("reverse_sample", t_steps = schedule.t_steps() as u64);
    let mut x = NdArray::randn(shape, rng);
    for t in (1..=schedule.t_steps()).rev() {
        let _step_span = st_obs::span!("denoise_step", t = t as u64);
        let eps_hat = predictor.predict(&x, t);
        x = p_sample_step(&x, &eps_hat, schedule, t, rng);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::SeedableRng;

    #[test]
    fn q_sample_interpolates_signal_and_noise() {
        let s = DiffusionSchedule::pristi_default(50);
        let x0 = NdArray::full(&[4], 2.0);
        let eps = NdArray::full(&[4], -1.0);
        let x1 = q_sample(&x0, &eps, &s, 1);
        // at t=1 almost all signal
        assert!((x1.data()[0] - 2.0).abs() < 0.05);
        // at t=T the noise coefficient dominates the signal coefficient
        let ab_t = s.alpha_bar(50);
        assert!(ab_t.sqrt() < 0.2, "signal coefficient too large: {}", ab_t.sqrt());
        assert!((1.0 - ab_t).sqrt() > 0.95);
        let xt = q_sample(&x0, &eps, &s, 50);
        let expected = (ab_t.sqrt() as f32) * 2.0 - (1.0 - ab_t).sqrt() as f32;
        assert!((xt.data()[0] - expected).abs() < 1e-5);
    }

    #[test]
    fn q_sample_variance_preserving() {
        // ᾱ + (1-ᾱ) = 1, so squared coefficients sum to 1:
        let s = DiffusionSchedule::pristi_default(50);
        for t in [1, 10, 25, 50] {
            let ab = s.alpha_bar(t);
            assert!((ab + (1.0 - ab) - 1.0).abs() < 1e-12);
        }
    }

    /// With an oracle predictor that knows the true x0, the reverse process
    /// must converge to (approximately) x0 — this exercises the exact
    /// constants in `p_sample_step`.
    #[test]
    fn reverse_with_oracle_recovers_target() {
        let schedule = DiffusionSchedule::pristi_default(50);
        let target = 1.7f32;
        let sched2 = schedule.clone();
        let oracle = move |x_t: &NdArray, t: usize| -> NdArray {
            // eps = (x_t - sqrt(ab) x0) / sqrt(1-ab)
            let ab = sched2.alpha_bar(t) as f32;
            x_t.map(|x| (x - ab.sqrt() * target) / (1.0 - ab).sqrt())
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut acc = 0.0f64;
        let n_trials = 20;
        for _ in 0..n_trials {
            let x0 = reverse_sample(&oracle, &[8], &schedule, &mut rng);
            acc += x0.mean();
        }
        let mean = acc / n_trials as f64;
        assert!(
            (mean - target as f64).abs() < 0.15,
            "oracle reverse process should land near {target}, got {mean}"
        );
    }

    #[test]
    fn last_step_deterministic() {
        let s = DiffusionSchedule::pristi_default(10);
        let x = NdArray::full(&[3], 0.5);
        let e = NdArray::zeros(&[3]);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(999);
        let a = p_sample_step(&x, &e, &s, 1, &mut r1);
        let b = p_sample_step(&x, &e, &s, 1, &mut r2);
        assert_eq!(a, b, "t=1 must not inject noise");
    }

    #[test]
    fn closure_implements_trait() {
        let s = DiffusionSchedule::pristi_default(5);
        let zero = |x: &NdArray, _t: usize| NdArray::zeros(x.shape());
        let mut rng = StdRng::seed_from_u64(3);
        let out = reverse_sample(&zero, &[2, 2], &s, &mut rng);
        assert_eq!(out.shape(), &[2, 2]);
    }
}
