//! The [`GenerativeProcess`] solver interface: the reverse process as an
//! object-safe trait.
//!
//! Historically the reverse loop was a hard-coded `match` over DDPM and DDIM
//! inside the imputation driver. This module turns "how do we walk from noise
//! to data" into a small trait so new solvers plug in without touching the
//! batched engine:
//!
//! * [`Ddpm`] — full `T`-step ancestral sampling (Algorithm 2), bitwise
//!   identical to the pre-trait inline loop;
//! * [`Ddim`] — the accelerated subsequence sampler, likewise pinned bitwise
//!   to the inline path it replaced;
//! * [`Pndm`] — a pseudo-numerical linear-multistep solver (FastSTI /
//!   PNDM-PLMS style): the DDIM transfer map applied to an Adams–Bashforth
//!   combination of the ε history, reaching near-full-chain accuracy in ~6
//!   network evaluations;
//! * [`Refine`] — a two-stage pipeline (RDPI style): a deterministic prior
//!   estimate is noised to an intermediate step and a *short* diffusion chain
//!   refines only the residual between that estimate and the data.
//!
//! # The driver contract
//!
//! A driver owns the batched state tensor and the per-request RNG streams;
//! the solver owns only the schedule walk and the deterministic update:
//!
//! 1. [`GenerativeProcess::init`] says how to build `x` at the chain head —
//!    pure Gaussian noise, or a noised prior estimate
//!    ([`ChainInit::NoisedPrior`]).
//! 2. [`GenerativeProcess::timesteps`] returns the descending `(t, t_prev)`
//!    pairs to walk; its length is the number of network evaluations.
//! 3. For each pair the driver evaluates `ε̂` and calls
//!    [`GenerativeProcess::step`], which returns the **deterministic mean**
//!    plus the noise scale `σ` — the driver adds `σ·z` itself, per request
//!    slice, from each request's own stream.
//!
//! Splitting the update this way (mean from the solver, noise from the
//! driver) is what keeps batch-slice exactness: every solver update is
//! element-wise over the batch tensor, so a request's slice is bitwise
//! identical no matter which other requests share its batch. Multistep state
//! (the [`Pndm`] ε history) lives on the whole batch tensor, which is safe
//! for the same reason — the history combination is element-wise, and a
//! batch never changes membership mid-chain, so each request's slice of the
//! history equals the history a solo run would have kept.

use crate::ddim::{ddim_mean, ddim_noise_scale, ddim_timesteps};
use crate::ddpm::{p_sample_mean, p_sample_noise_scale};
use crate::schedule::DiffusionSchedule;
use st_tensor::NdArray;

/// How a solver wants the reverse chain initialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainInit {
    /// Start from pure Gaussian noise `x ~ N(0, I)` at the top of the chain
    /// (DDPM / DDIM / PNDM).
    Gaussian,
    /// Start from a deterministic prior estimate `x̂⁰` noised forward to step
    /// `t_start`: `x = √ᾱ_{t_start}·x̂⁰ + √(1−ᾱ_{t_start})·z`. The driver
    /// supplies `x̂⁰` (for imputation: the interpolated conditional, which is
    /// already the model's coarse estimate of the missing values), so the
    /// chain only has to remove `1−ᾱ_{t_start}` worth of noise — the residual
    /// between the prior estimate and the data.
    NoisedPrior {
        /// The diffusion step the prior estimate is noised to (`1..=T`).
        t_start: usize,
    },
}

/// One reverse update, split for batch-slice exactness: the deterministic
/// mean (element-wise over the whole batch) and the scale of the Gaussian
/// noise the **driver** adds per request slice (0 for deterministic solvers).
#[derive(Debug)]
pub struct SolverStep {
    /// Deterministic half of the update (same shape as `x_t`).
    pub mean: NdArray,
    /// Standard deviation of the `σ·z` noise to add (no draws when 0).
    pub noise_scale: f64,
}

/// An object-safe reverse-process solver: the schedule walk plus the
/// deterministic update rule, with all randomness left to the caller.
///
/// Implementations may keep per-chain state (e.g. the [`Pndm`] ε history);
/// [`reset`](Self::reset) clears it so one solver value can drive several
/// chains. See the module docs for the driver contract.
pub trait GenerativeProcess {
    /// The descending `(t, t_prev)` pairs the driver will walk, in
    /// application order (`t_prev == 0` ends the chain). One network
    /// evaluation happens per pair, so `timesteps().len()` is the NFE cost.
    fn timesteps(&self, schedule: &DiffusionSchedule) -> Vec<(usize, usize)>;

    /// How the chain head is built (defaults to [`ChainInit::Gaussian`]).
    fn init(&self, _schedule: &DiffusionSchedule) -> ChainInit {
        ChainInit::Gaussian
    }

    /// One reverse update from `t` to `t_prev` given the network's `ε̂`.
    ///
    /// Must be element-wise over the batch tensor (see the module docs);
    /// stateful solvers may record `eps_hat` here for later steps.
    fn step(
        &mut self,
        x_t: &NdArray,
        eps_hat: &NdArray,
        schedule: &DiffusionSchedule,
        t: usize,
        t_prev: usize,
    ) -> SolverStep;

    /// Clear any per-chain state (multistep history). Drivers call this
    /// before walking a fresh chain.
    fn reset(&mut self);

    /// The `st-obs` op label recorded per step (e.g. `"p_sample_step"`).
    fn op_label(&self) -> &'static str;
}

/// Full `T`-step ancestral DDPM sampling (Algorithm 2) behind the trait.
///
/// Bitwise identical to the pre-trait inline loop: the mean is
/// [`p_sample_mean`] and the noise scale is [`p_sample_noise_scale`], applied
/// on the same grid `(T, T−1), …, (1, 0)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ddpm;

impl GenerativeProcess for Ddpm {
    fn timesteps(&self, schedule: &DiffusionSchedule) -> Vec<(usize, usize)> {
        (1..=schedule.t_steps()).rev().map(|t| (t, t - 1)).collect()
    }

    fn step(
        &mut self,
        x_t: &NdArray,
        eps_hat: &NdArray,
        schedule: &DiffusionSchedule,
        t: usize,
        _t_prev: usize,
    ) -> SolverStep {
        SolverStep {
            mean: p_sample_mean(x_t, eps_hat, schedule, t),
            noise_scale: p_sample_noise_scale(schedule, t),
        }
    }

    fn reset(&mut self) {}

    fn op_label(&self) -> &'static str {
        "p_sample_step"
    }
}

/// Accelerated DDIM sampling behind the trait: `steps` network evaluations on
/// the [`ddim_timesteps`] grid, `eta` interpolating deterministic (0) to
/// ancestral (1) noise levels. Bitwise identical to the pre-trait inline
/// DDIM loop.
#[derive(Debug, Clone, Copy)]
pub struct Ddim {
    /// Requested denoising steps (network evaluations; the realised grid may
    /// differ by one at degenerate counts, see [`ddim_timesteps`]).
    pub steps: usize,
    /// Stochasticity knob `η ∈ [0, 1]`.
    pub eta: f64,
}

impl Ddim {
    /// A DDIM solver with `steps` evaluations and stochasticity `eta`.
    pub fn new(steps: usize, eta: f64) -> Self {
        Self { steps, eta }
    }
}

/// Descending `(t, t_prev)` pairs over a [`ddim_timesteps`] subsequence of
/// `1..=t_total`.
fn ddim_pairs(t_total: usize, n_steps: usize) -> Vec<(usize, usize)> {
    let taus = ddim_timesteps(t_total, n_steps);
    (0..taus.len())
        .rev()
        .map(|i| (taus[i], if i == 0 { 0 } else { taus[i - 1] }))
        .collect()
}

impl GenerativeProcess for Ddim {
    fn timesteps(&self, schedule: &DiffusionSchedule) -> Vec<(usize, usize)> {
        ddim_pairs(schedule.t_steps(), self.steps)
    }

    fn step(
        &mut self,
        x_t: &NdArray,
        eps_hat: &NdArray,
        schedule: &DiffusionSchedule,
        t: usize,
        t_prev: usize,
    ) -> SolverStep {
        SolverStep {
            mean: ddim_mean(x_t, eps_hat, schedule, t, t_prev, self.eta),
            noise_scale: ddim_noise_scale(schedule, t, t_prev, self.eta),
        }
    }

    fn reset(&mut self) {}

    fn op_label(&self) -> &'static str {
        "ddim_step"
    }
}

/// Pseudo-numerical linear-multistep solver (PNDM / PLMS, the FastSTI
/// direction): the deterministic DDIM transfer map applied to an
/// Adams–Bashforth combination of the ε history instead of the raw `ε̂`.
///
/// The reverse ODE is solved to `order`-th accuracy without extra network
/// evaluations: past `ε̂` values are free, so the effective noise estimate at
/// history length `k` is
///
/// ```text
/// k = 0:  ε̂
/// k = 1:  (3ε̂ − ε₁) / 2
/// k = 2:  (23ε̂ − 16ε₁ + 5ε₂) / 12
/// k ≥ 3:  (55ε̂ − 59ε₁ + 37ε₂ − 9ε₃) / 24
/// ```
///
/// (`ε_i` the estimate from `i` steps ago). Warmup is progressive — the first
/// step runs at order 1, the second at order 2, … — so every step costs
/// exactly one evaluation; the original PNDM's Runge–Kutta warmup spends 4
/// evaluations per warmup step, which is the wrong trade in the ≤6-evaluation
/// regime this solver targets.
///
/// With `order == 1` the history is never consulted and every step is
/// exactly the deterministic DDIM update — bitwise, on the same grid (the
/// solver-equivalence suite pins this).
#[derive(Debug, Clone)]
pub struct Pndm {
    /// Denoising steps (network evaluations) on the [`ddim_timesteps`] grid.
    pub steps: usize,
    /// Maximum linear-multistep order, `1..=4` (4 is the classic PNDM).
    pub order: usize,
    /// ε history, most recent first, capped at `order − 1` entries.
    history: Vec<NdArray>,
}

impl Pndm {
    /// A PNDM solver with `steps` evaluations at multistep order `order`
    /// (clamped to `1..=4`).
    pub fn new(steps: usize, order: usize) -> Self {
        Self { steps, order: order.clamp(1, 4), history: Vec::new() }
    }

    /// The Adams–Bashforth combination of `eps_hat` with the recorded
    /// history, at the order the warmup has reached.
    fn effective_eps(&self, eps_hat: &NdArray) -> NdArray {
        let k = self.history.len().min(self.order - 1);
        let mut out = NdArray::zeros(eps_hat.shape());
        let e = eps_hat.data();
        let o = out.data_mut();
        match k {
            0 => o.copy_from_slice(e),
            1 => {
                let e1 = self.history[0].data();
                for i in 0..o.len() {
                    o[i] = (3.0 * e[i] - e1[i]) / 2.0;
                }
            }
            2 => {
                let (e1, e2) = (self.history[0].data(), self.history[1].data());
                for i in 0..o.len() {
                    o[i] = (23.0 * e[i] - 16.0 * e1[i] + 5.0 * e2[i]) / 12.0;
                }
            }
            _ => {
                let (e1, e2, e3) = (
                    self.history[0].data(),
                    self.history[1].data(),
                    self.history[2].data(),
                );
                for i in 0..o.len() {
                    o[i] = (55.0 * e[i] - 59.0 * e1[i] + 37.0 * e2[i] - 9.0 * e3[i]) / 24.0;
                }
            }
        }
        out
    }
}

impl GenerativeProcess for Pndm {
    fn timesteps(&self, schedule: &DiffusionSchedule) -> Vec<(usize, usize)> {
        ddim_pairs(schedule.t_steps(), self.steps)
    }

    fn step(
        &mut self,
        x_t: &NdArray,
        eps_hat: &NdArray,
        schedule: &DiffusionSchedule,
        t: usize,
        t_prev: usize,
    ) -> SolverStep {
        // Order 1 keeps the raw ε̂ untouched — the update below is then the
        // exact DDIM η=0 arithmetic, bit for bit.
        let mean = if self.order == 1 || self.history.is_empty() {
            ddim_mean(x_t, eps_hat, schedule, t, t_prev, 0.0)
        } else {
            let eps_eff = self.effective_eps(eps_hat);
            ddim_mean(x_t, &eps_eff, schedule, t, t_prev, 0.0)
        };
        if self.order > 1 {
            self.history.insert(0, eps_hat.clone());
            self.history.truncate(self.order - 1);
        }
        SolverStep { mean, noise_scale: 0.0 }
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn op_label(&self) -> &'static str {
        "pndm_step"
    }
}

/// Two-stage refine pipeline (the RDPI direction): a deterministic prior
/// estimate does the coarse work, and a short deterministic diffusion chain
/// refines only the residual.
///
/// Stage 1 is free: the driver already owns a deterministic estimate `x̂⁰`
/// (for imputation, the linearly interpolated conditional — PriSTI's own
/// "coarse yet effective" prior). Stage 2 noises it forward to
/// `t_start = ⌈strength·T⌉` ([`ChainInit::NoisedPrior`]) and walks a
/// `steps`-evaluation DDIM η=0 grid over `1..=t_start` only. Because
/// `√ᾱ_{t_start}` of the prior estimate survives in the chain head, the
/// network only has to correct the prior's residual instead of generating
/// from scratch — which is why 3–4 evaluations at `strength ≈ 0.5` track the
/// full chain.
#[derive(Debug, Clone, Copy)]
pub struct Refine {
    /// Denoising steps (network evaluations) spent on the residual chain.
    pub steps: usize,
    /// Fraction of the schedule the prior estimate is noised to, `(0, 1]`.
    pub strength: f64,
}

impl Refine {
    /// A refine solver with `steps` evaluations over the top `strength`
    /// fraction of the schedule (clamped to `(0, 1]`).
    pub fn new(steps: usize, strength: f64) -> Self {
        let strength = if strength.is_finite() { strength.clamp(f64::MIN_POSITIVE, 1.0) } else { 0.5 };
        Self { steps, strength }
    }

    /// The chain-head step `t_start = max(1, round(strength·T))`.
    pub fn t_start(&self, schedule: &DiffusionSchedule) -> usize {
        let t = (self.strength * schedule.t_steps() as f64).round() as usize;
        t.clamp(1, schedule.t_steps())
    }
}

impl GenerativeProcess for Refine {
    fn timesteps(&self, schedule: &DiffusionSchedule) -> Vec<(usize, usize)> {
        ddim_pairs(self.t_start(schedule), self.steps)
    }

    fn init(&self, schedule: &DiffusionSchedule) -> ChainInit {
        ChainInit::NoisedPrior { t_start: self.t_start(schedule) }
    }

    fn step(
        &mut self,
        x_t: &NdArray,
        eps_hat: &NdArray,
        schedule: &DiffusionSchedule,
        t: usize,
        t_prev: usize,
    ) -> SolverStep {
        SolverStep {
            mean: ddim_mean(x_t, eps_hat, schedule, t, t_prev, 0.0),
            noise_scale: 0.0,
        }
    }

    fn reset(&mut self) {}

    fn op_label(&self) -> &'static str {
        "refine_step"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddpm::p_sample_step;
    use crate::schedule::DiffusionSchedule;
    use st_rand::{SeedableRng, StdRng};

    /// Drive a solver end to end with an oracle ε-predictor, mirroring the
    /// batched driver: solver mean + (here unused) noise scale.
    fn run_solver(
        solver: &mut dyn GenerativeProcess,
        schedule: &DiffusionSchedule,
        target: f32,
        prior: f32,
        rng: &mut StdRng,
    ) -> NdArray {
        let oracle = |x_t: &NdArray, t: usize| -> NdArray {
            let ab = schedule.alpha_bar(t) as f32;
            x_t.map(|x| (x - ab.sqrt() * target) / (1.0 - ab).sqrt())
        };
        solver.reset();
        let noise = NdArray::randn(&[6], rng);
        let mut x = match solver.init(schedule) {
            ChainInit::Gaussian => noise,
            ChainInit::NoisedPrior { t_start } => {
                let ab = schedule.alpha_bar(t_start);
                let (a, b) = (ab.sqrt() as f32, (1.0 - ab).sqrt() as f32);
                noise.map(|z| a * prior + b * z)
            }
        };
        for (t, t_prev) in solver.timesteps(schedule) {
            let eps = oracle(&x, t);
            let step = solver.step(&x, &eps, schedule, t, t_prev);
            assert_eq!(step.noise_scale, 0.0_f64.max(step.noise_scale));
            // deterministic drive: skip the σ·z half (η=0 solvers have σ=0
            // anyway; DDPM is exercised separately against p_sample_step).
            x = step.mean;
        }
        x
    }

    #[test]
    fn ddpm_solver_matches_inline_p_sample_sequence() {
        let schedule = DiffusionSchedule::pristi_default(12);
        let mut solver = Ddpm;
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let mut x_a = NdArray::randn(&[5], &mut rng_a);
        let mut x_b = NdArray::from_vec(&[5], x_a.data().to_vec());
        let sched2 = schedule.clone();
        let oracle = move |x_t: &NdArray, t: usize| -> NdArray {
            let ab = sched2.alpha_bar(t) as f32;
            x_t.map(|x| (x - ab.sqrt() * 0.4) / (1.0 - ab).sqrt())
        };
        // Advance rng_b to match rng_a (both drew the same init noise).
        let _ = NdArray::randn(&[5], &mut rng_b);
        for (t, t_prev) in solver.timesteps(&schedule) {
            assert_eq!(t_prev, t - 1);
            let eps = oracle(&x_a, t);
            // inline reference
            x_b = p_sample_step(&x_b, &eps, &schedule, t, &mut rng_b);
            // trait path: mean + driver-added noise from the same stream
            let step = solver.step(&x_a, &eps, &schedule, t, t_prev);
            let mut next = step.mean;
            crate::ddpm::add_reverse_noise_slice(next.data_mut(), step.noise_scale, &mut rng_a);
            x_a = next;
            assert_eq!(x_a.to_bytes(), x_b.to_bytes(), "divergence at t={t}");
        }
    }

    #[test]
    fn ddim_and_order1_pndm_walk_identical_grids() {
        let schedule = DiffusionSchedule::pristi_default(50);
        let ddim = Ddim::new(6, 0.0);
        let pndm = Pndm::new(6, 1);
        assert_eq!(ddim.timesteps(&schedule), pndm.timesteps(&schedule));
        assert_eq!(ddim.timesteps(&schedule).len(), 6);
        // descending, ends at (.., 0)
        let pairs = ddim.timesteps(&schedule);
        assert_eq!(pairs.last().unwrap().1, 0);
        for w in pairs.windows(2) {
            assert!(w[0].0 > w[1].0);
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn order1_pndm_steps_are_bitwise_ddim() {
        let schedule = DiffusionSchedule::pristi_default(30);
        let mut rng = StdRng::seed_from_u64(9);
        let x = NdArray::randn(&[8], &mut rng);
        let e = NdArray::randn(&[8], &mut rng);
        let mut pndm = Pndm::new(5, 1);
        let mut ddim = Ddim::new(5, 0.0);
        for (t, t_prev) in [(30usize, 17usize), (17, 9), (9, 0)] {
            let a = pndm.step(&x, &e, &schedule, t, t_prev);
            let b = ddim.step(&x, &e, &schedule, t, t_prev);
            assert_eq!(a.mean.to_bytes(), b.mean.to_bytes());
            assert_eq!(a.noise_scale, 0.0);
            assert_eq!(b.noise_scale, 0.0);
        }
    }

    #[test]
    fn pndm_history_is_capped_and_reset_clears_it() {
        let schedule = DiffusionSchedule::pristi_default(50);
        let mut pndm = Pndm::new(8, 4);
        let x = NdArray::full(&[4], 0.1);
        let e = NdArray::full(&[4], 0.2);
        let pairs = pndm.timesteps(&schedule);
        for &(t, t_prev) in &pairs {
            pndm.step(&x, &e, &schedule, t, t_prev);
        }
        assert_eq!(pndm.history.len(), 3, "history must cap at order − 1");
        pndm.reset();
        assert!(pndm.history.is_empty());
    }

    /// With an oracle predictor, 4-step PNDM lands at least as close to the
    /// target as 4-step DDIM (the multistep correction must not hurt on the
    /// exact-ε case, where both are exact up to float error), and both land
    /// close in absolute terms.
    #[test]
    fn oracle_pndm_tracks_target_in_few_steps() {
        let schedule = DiffusionSchedule::pristi_default(50);
        let target = -0.6f32;
        for (name, solver) in [
            ("pndm4", &mut Pndm::new(4, 4) as &mut dyn GenerativeProcess),
            ("ddim4", &mut Ddim::new(4, 0.0)),
        ] {
            let mut rng = StdRng::seed_from_u64(11);
            let mut acc = 0.0;
            for _ in 0..10 {
                let x0 = run_solver(solver, &schedule, target, 0.0, &mut rng);
                acc += x0.mean();
            }
            let mean = acc / 10.0;
            assert!(
                (mean - target as f64).abs() < 0.08,
                "{name}: expected ~{target}, got {mean}"
            );
        }
    }

    /// The refine chain starts from the noised prior and only walks the
    /// bottom `strength` fraction of the schedule.
    #[test]
    fn refine_grid_and_init_respect_strength() {
        let schedule = DiffusionSchedule::pristi_default(50);
        let refine = Refine::new(4, 0.5);
        assert_eq!(refine.t_start(&schedule), 25);
        assert_eq!(refine.init(&schedule), ChainInit::NoisedPrior { t_start: 25 });
        let pairs = refine.timesteps(&schedule);
        assert_eq!(pairs[0].0, 25, "chain must start at t_start");
        assert_eq!(pairs.last().unwrap(), &(1, 0));
        assert!(pairs.len() <= 5);
        // degenerate strengths stay in range
        assert_eq!(Refine::new(2, 1.0).t_start(&schedule), 50);
        assert_eq!(Refine::new(2, 1e-9).t_start(&schedule), 1);
    }

    /// With an oracle predictor and an *imperfect* prior, the refine chain
    /// still recovers the target: the diffusion stage corrects the residual.
    #[test]
    fn oracle_refine_corrects_prior_residual() {
        let schedule = DiffusionSchedule::pristi_default(50);
        let target = 1.2f32;
        let prior = 0.8f32; // deliberately off by 0.4
        let mut solver = Refine::new(4, 0.5);
        let mut rng = StdRng::seed_from_u64(13);
        let mut acc = 0.0;
        for _ in 0..10 {
            let x0 = run_solver(&mut solver, &schedule, target, prior, &mut rng);
            acc += x0.mean();
        }
        let mean = acc / 10.0;
        assert!(
            (mean - target as f64).abs() < 0.08,
            "refine should land on the target {target}, not the prior {prior}: got {mean}"
        );
    }

    #[test]
    fn timesteps_edge_cases() {
        let schedule = DiffusionSchedule::pristi_default(8);
        // steps >= T: the grid degenerates to the full chain
        assert_eq!(Ddim::new(20, 0.0).timesteps(&schedule).len(), 8);
        assert_eq!(Pndm::new(8, 4).timesteps(&schedule).len(), 8);
        // steps == 1 keeps both chain ends (ddim_timesteps contract)
        let one = Ddim::new(1, 0.0).timesteps(&schedule);
        assert_eq!(one, vec![(8, 1), (1, 0)]);
        // DDPM ignores step hints entirely
        assert_eq!(Ddpm.timesteps(&schedule).len(), 8);
    }
}
