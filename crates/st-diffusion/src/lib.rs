//! # st-diffusion
//!
//! Denoising-diffusion machinery (Ho et al. 2020) as used by PriSTI and CSDI
//! for conditional spatiotemporal imputation: noise schedules (including the
//! paper's quadratic schedule, Eq. 13), the forward noising process
//! `q(X̃ᵗ | X̃⁰)`, and the reverse sampling loop of Algorithm 2, generic over
//! a [`NoisePredictor`] so the same loop drives PriSTI, CSDI and ablated
//! variants.
//!
//! ```
//! use st_diffusion::{q_sample, DiffusionSchedule};
//! use st_rand::{SeedableRng, StdRng};
//! use st_tensor::NdArray;
//!
//! // The paper's quadratic schedule (Eq. 13), steps t ∈ 1..=T:
//! // ᾱ_t decays toward 0 as t → T.
//! let schedule = DiffusionSchedule::pristi_default(50);
//! assert!(schedule.alpha_bar(50) < schedule.alpha_bar(1));
//!
//! // Forward noising: x_t = √ᾱ_t · x0 + √(1-ᾱ_t) · ε, shape-preserving.
//! let mut rng = StdRng::seed_from_u64(7);
//! let x0 = NdArray::randn(&[2, 4, 8], &mut rng);
//! let eps = NdArray::randn(&[2, 4, 8], &mut rng);
//! let x_t = q_sample(&x0, &eps, &schedule, 25);
//! assert_eq!(x_t.shape(), x0.shape());
//! ```

#![deny(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod ddim;
pub mod ddpm;
pub mod process;
pub mod schedule;

pub use ddim::{ddim_mean, ddim_noise_scale, ddim_sample, ddim_step, ddim_timesteps};
pub use ddpm::{
    add_reverse_noise_slice, p_sample_mean, p_sample_noise_scale, p_sample_step, q_sample,
    reverse_sample, NoisePredictor,
};
pub use process::{ChainInit, Ddim as DdimSolver, Ddpm as DdpmSolver, GenerativeProcess, Pndm, Refine, SolverStep};
pub use schedule::{BetaSchedule, DiffusionSchedule};
