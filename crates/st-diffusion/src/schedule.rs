//! Noise-level schedules.
//!
//! The paper adopts the quadratic schedule of CSDI (Eq. 13):
//! `β_t = ((T−t)/(T−1) √β₁ + (t−1)/(T−1) √β_T)²` — note that despite the
//! name this interpolates the *square roots* of the endpoints linearly.
//! A plain linear schedule is included for ablation comparisons.

/// How `β_t` progresses from `beta_min` to `beta_max` over `T` steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BetaSchedule {
    /// The paper's quadratic schedule (Eq. 13), default for all experiments.
    Quadratic,
    /// Linear interpolation `β_t = β₁ + (t−1)/(T−1)(β_T − β₁)`.
    Linear,
}

/// Precomputed diffusion constants for `T` steps.
///
/// Indexing convention: `beta(t)`, `alpha(t)`, `alpha_bar(t)` accept
/// `t ∈ 1..=T` as in the paper's notation.
#[derive(Debug, Clone)]
pub struct DiffusionSchedule {
    betas: Vec<f64>,
    alphas: Vec<f64>,
    alpha_bars: Vec<f64>,
}

impl DiffusionSchedule {
    /// Build a schedule with `t_steps` steps from `beta_min` (β₁) to
    /// `beta_max` (β_T). The paper uses β₁=1e-4, β_T=0.2, T=50–100.
    pub fn new(kind: BetaSchedule, t_steps: usize, beta_min: f64, beta_max: f64) -> Self {
        assert!(t_steps >= 2, "need at least 2 diffusion steps");
        assert!(
            0.0 < beta_min && beta_min <= beta_max && beta_max < 1.0,
            "invalid beta range [{beta_min}, {beta_max}]"
        );
        let betas: Vec<f64> = (1..=t_steps)
            .map(|t| {
                let frac = (t - 1) as f64 / (t_steps - 1) as f64;
                match kind {
                    BetaSchedule::Quadratic => {
                        let s = (1.0 - frac) * beta_min.sqrt() + frac * beta_max.sqrt();
                        s * s
                    }
                    BetaSchedule::Linear => beta_min + frac * (beta_max - beta_min),
                }
            })
            .collect();
        let alphas: Vec<f64> = betas.iter().map(|b| 1.0 - b).collect();
        let mut alpha_bars = Vec::with_capacity(t_steps);
        let mut prod = 1.0;
        for &a in &alphas {
            prod *= a;
            alpha_bars.push(prod);
        }
        Self { betas, alphas, alpha_bars }
    }

    /// The paper's default schedule for a given number of steps
    /// (quadratic, β₁ = 1e-4, β_T = 0.2).
    pub fn pristi_default(t_steps: usize) -> Self {
        Self::new(BetaSchedule::Quadratic, t_steps, 1e-4, 0.2)
    }

    /// Rebuild a schedule from its raw `β` sequence (the checkpoint format
    /// stores `betas` verbatim). The derived `α` / `ᾱ` tables are recomputed
    /// with the same fold as [`Self::new`], so a schedule round-tripped
    /// through its betas is bitwise identical to the original.
    pub fn from_betas(betas: Vec<f64>) -> Self {
        assert!(betas.len() >= 2, "need at least 2 diffusion steps");
        assert!(
            betas.iter().all(|&b| 0.0 < b && b < 1.0),
            "betas must lie strictly inside (0, 1)"
        );
        let alphas: Vec<f64> = betas.iter().map(|b| 1.0 - b).collect();
        let mut alpha_bars = Vec::with_capacity(betas.len());
        let mut prod = 1.0;
        for &a in &alphas {
            prod *= a;
            alpha_bars.push(prod);
        }
        Self { betas, alphas, alpha_bars }
    }

    /// The raw `β` sequence, indexable as `betas()[t - 1]` for `t ∈ 1..=T`.
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// Number of diffusion steps `T`.
    pub fn t_steps(&self) -> usize {
        self.betas.len()
    }

    /// `β_t` for `t ∈ 1..=T`.
    pub fn beta(&self, t: usize) -> f64 {
        self.betas[self.idx(t)]
    }

    /// `α_t = 1 − β_t`.
    pub fn alpha(&self, t: usize) -> f64 {
        self.alphas[self.idx(t)]
    }

    /// `ᾱ_t = ∏_{i≤t} α_i`.
    pub fn alpha_bar(&self, t: usize) -> f64 {
        self.alpha_bars[self.idx(t)]
    }

    /// Reverse-process variance `σ_t² = (1−ᾱ_{t−1})/(1−ᾱ_t) · β_t`
    /// (with `ᾱ₀ = 1`, so `σ₁² = 0`).
    pub fn sigma_sq(&self, t: usize) -> f64 {
        let ab_prev = if t <= 1 { 1.0 } else { self.alpha_bar(t - 1) };
        (1.0 - ab_prev) / (1.0 - self.alpha_bar(t)) * self.beta(t)
    }

    fn idx(&self, t: usize) -> usize {
        assert!(
            (1..=self.t_steps()).contains(&t),
            "diffusion step {t} out of range 1..={}",
            self.t_steps()
        );
        t - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_config() {
        let s = DiffusionSchedule::pristi_default(50);
        assert!((s.beta(1) - 1e-4).abs() < 1e-12);
        assert!((s.beta(50) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn betas_monotone_increasing() {
        for kind in [BetaSchedule::Quadratic, BetaSchedule::Linear] {
            let s = DiffusionSchedule::new(kind, 100, 1e-4, 0.2);
            for t in 2..=100 {
                assert!(s.beta(t) > s.beta(t - 1), "{kind:?} not increasing at {t}");
            }
        }
    }

    #[test]
    fn alpha_bar_decreasing_to_small() {
        let s = DiffusionSchedule::pristi_default(100);
        for t in 2..=100 {
            assert!(s.alpha_bar(t) < s.alpha_bar(t - 1));
        }
        assert!(s.alpha_bar(100) < 0.01, "ᾱ_T = {} should be near 0", s.alpha_bar(100));
    }

    #[test]
    fn alpha_bar_in_unit_interval_strictly_decreasing() {
        for kind in [BetaSchedule::Quadratic, BetaSchedule::Linear] {
            for t_steps in [2usize, 10, 50, 200] {
                let s = DiffusionSchedule::new(kind, t_steps, 1e-4, 0.2);
                let mut prev = 1.0f64;
                for t in 1..=t_steps {
                    let ab = s.alpha_bar(t);
                    assert!(ab > 0.0 && ab <= 1.0, "{kind:?} ᾱ_{t} = {ab} outside (0,1]");
                    assert!(ab < prev, "{kind:?} ᾱ not strictly decreasing at {t}");
                    prev = ab;
                }
            }
        }
    }

    #[test]
    fn quadratic_matches_eq13_closed_form() {
        // Eq. 13: β_t = ((T−t)/(T−1)·√β₁ + (t−1)/(T−1)·√β_T)²
        let (t_steps, bmin, bmax) = (50usize, 1e-4f64, 0.2f64);
        let s = DiffusionSchedule::new(BetaSchedule::Quadratic, t_steps, bmin, bmax);
        for t in 1..=t_steps {
            let a = (t_steps - t) as f64 / (t_steps - 1) as f64;
            let b = (t - 1) as f64 / (t_steps - 1) as f64;
            let expect = (a * bmin.sqrt() + b * bmax.sqrt()).powi(2);
            assert!((s.beta(t) - expect).abs() < 1e-15, "β_{t} = {} vs Eq.13 {expect}", s.beta(t));
        }
    }

    #[test]
    fn quadratic_interpolates_sqrt() {
        let s = DiffusionSchedule::new(BetaSchedule::Quadratic, 3, 0.01, 0.09);
        // midpoint: ((sqrt(0.01)+sqrt(0.09))/2)^2 = (0.2)^2 = 0.04
        assert!((s.beta(2) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn sigma_first_step_zero() {
        let s = DiffusionSchedule::pristi_default(50);
        assert_eq!(s.sigma_sq(1), 0.0);
        for t in 2..=50 {
            assert!(s.sigma_sq(t) > 0.0);
            assert!(s.sigma_sq(t) <= s.beta(t) + 1e-12, "σ² must not exceed β");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn step_zero_rejected() {
        DiffusionSchedule::pristi_default(10).beta(0);
    }

    #[test]
    #[should_panic(expected = "invalid beta range")]
    fn bad_range_rejected() {
        DiffusionSchedule::new(BetaSchedule::Linear, 10, 0.2, 0.1);
    }
}
