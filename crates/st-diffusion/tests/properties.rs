//! Property-based tests for the diffusion machinery.

use st_check::prelude::*;
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_diffusion::{p_sample_step, q_sample, BetaSchedule, DiffusionSchedule};
use st_tensor::NdArray;

properties! {
    /// Schedules are valid for any (sane) parameterisation: β increasing in
    /// (0,1), ᾱ strictly decreasing, σ² within [0, β].
    #[test]
    fn schedule_invariants(t_steps in 2usize..200, beta_min in 1e-5f64..1e-2, spread in 1.5f64..100.0, quad in prop::bool::ANY) {
        let beta_max = (beta_min * spread).min(0.5);
        let kind = if quad { BetaSchedule::Quadratic } else { BetaSchedule::Linear };
        let s = DiffusionSchedule::new(kind, t_steps, beta_min, beta_max);
        let mut prev_ab = 1.0f64;
        for t in 1..=t_steps {
            let b = s.beta(t);
            prop_assert!(b > 0.0 && b < 1.0);
            if t > 1 {
                prop_assert!(b >= s.beta(t - 1) - 1e-15, "β not nondecreasing at {t}");
            }
            let ab = s.alpha_bar(t);
            prop_assert!(ab < prev_ab);
            prev_ab = ab;
            let sig = s.sigma_sq(t);
            prop_assert!((0.0..=b + 1e-12).contains(&sig));
        }
    }

    /// q_sample is exact: x_t = √ᾱ·x₀ + √(1−ᾱ)·ε element-wise.
    #[test]
    fn q_sample_formula(t in 1usize..50, x0v in -5.0f32..5.0, ev in -3.0f32..3.0) {
        let s = DiffusionSchedule::pristi_default(50);
        let x0 = NdArray::full(&[4], x0v);
        let eps = NdArray::full(&[4], ev);
        let xt = q_sample(&x0, &eps, &s, t);
        let ab = s.alpha_bar(t) as f32;
        let expect = ab.sqrt() * x0v + (1.0 - ab).sqrt() * ev;
        for &v in xt.data() {
            prop_assert!((v - expect).abs() < 1e-5);
        }
    }

    /// One reverse step with a perfect ε estimate at t=1 recovers x₀ exactly
    /// (σ₁ = 0, so the step is deterministic).
    #[test]
    fn final_step_inverts_forward(x0v in -5.0f32..5.0, ev in -3.0f32..3.0, seed in 0u64..100) {
        let s = DiffusionSchedule::pristi_default(20);
        let x0 = NdArray::full(&[3], x0v);
        let eps = NdArray::full(&[3], ev);
        let x1 = q_sample(&x0, &eps, &s, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let back = p_sample_step(&x1, &eps, &s, 1, &mut rng);
        for &v in back.data() {
            prop_assert!((v - x0v).abs() < 1e-3, "{v} vs {x0v}");
        }
    }

    /// The reverse step is monotone in the noise estimate: over-estimating ε
    /// pushes the next iterate down, under-estimating pushes it up.
    #[test]
    fn reverse_step_monotone_in_eps(t in 2usize..20, xv in -3.0f32..3.0) {
        let s = DiffusionSchedule::pristi_default(20);
        let x = NdArray::full(&[2], xv);
        let lo = NdArray::full(&[2], -1.0);
        let hi = NdArray::full(&[2], 1.0);
        // same rng seed → same injected noise; difference comes from ε̂ only
        let a = p_sample_step(&x, &lo, &s, t, &mut StdRng::seed_from_u64(7));
        let b = p_sample_step(&x, &hi, &s, t, &mut StdRng::seed_from_u64(7));
        prop_assert!(a.data()[0] > b.data()[0]);
    }
}
