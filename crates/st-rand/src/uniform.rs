//! Uniform sampling over ranges, the engine behind [`crate::Rng::random_range`].
//!
//! Integer ranges use multiply-free rejection sampling (no modulo bias);
//! float ranges map a fixed-precision unit draw affinely onto `[lo, hi)`.

use crate::{RngCore, StandardSample};
use std::ops::{Range, RangeInclusive};

/// Draw a uniform `u64` in `[0, n)` without modulo bias.
#[inline]
pub fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Largest multiple of n that fits in u64; reject draws above it.
    let threshold = (u64::MAX / n) * n;
    loop {
        let v = rng.next_u64();
        if v < threshold {
            return v % n;
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`. Caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain: every value is equally likely.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u64, usize, u32, i64, i32, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit: $t = StandardSample::sample_standard(rng);
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit: $t = StandardSample::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range forms accepted by [`crate::Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Rng, SeedableRng, StdRng};

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a: usize = rng.random_range(3..17);
            assert!((3..17).contains(&a));
            let b: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: u64 = rng.random_range(0..1);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
        let mut seen_inc = [false; 4];
        for _ in 0..500 {
            seen_inc[rng.random_range(0..=3usize)] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn integer_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 0.125).abs() < 0.01, "bucket frequency {freq}");
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f32 = rng.random_range(-2.5..7.0);
            assert!((-2.5..7.0).contains(&x));
            let y: f64 = rng.random_range(0.8..2.4);
            assert!((0.8..2.4).contains(&y));
        }
    }

    #[test]
    fn float_range_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(10.0..20.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 15.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _: usize = rng.random_range(5..5);
    }
}
