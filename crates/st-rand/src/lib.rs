//! Seeded, dependency-free pseudo-random numbers for the PriSTI workspace.
//!
//! The whole reproduction is stochastic end to end — mask sampling, diffusion
//! noise, DDPM reverse sampling, parameter init, mini-batch shuffling — so
//! every random draw in the workspace flows through this crate. The generator
//! is xoshiro256++ seeded via SplitMix64, which gives:
//!
//! * **hermetic builds** — no crates.io registry access is needed to compile
//!   or test the workspace;
//! * **bitwise reproducibility** — the same seed produces the same stream on
//!   every platform and every build, so training losses and imputations can
//!   be compared exactly across runs (see the workspace determinism test).
//!
//! The API mirrors the parts of `rand`/`rand_distr` the workspace uses:
//! [`Rng::random`], [`Rng::random_range`] (and its `gen_range` alias),
//! [`SeedableRng::seed_from_u64`], [`SliceRandom::shuffle`], and the
//! [`Distribution`] implementations [`Normal`] (Box–Muller), [`Uniform`],
//! [`StandardNormal`] and [`Bernoulli`].

mod distr;
mod seq;
mod uniform;
mod xoshiro;

pub use distr::{Bernoulli, Distribution, DistributionError, Normal, StandardNormal, Uniform};
pub use seq::SliceRandom;
pub use uniform::{SampleRange, SampleUniform};
pub use xoshiro::{SplitMix64, Xoshiro256PlusPlus};

/// The workspace's standard generator: xoshiro256++.
pub type StdRng = Xoshiro256PlusPlus;

/// The raw source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (the high half of [`Self::next_u64`], which are
    /// the better-mixed bits of xoshiro-family generators).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the "standard" distribution of `T`: `[0,1)` for floats,
    /// uniform over all values for integers, a fair coin for `bool`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range` (`lo..hi` or `lo..=hi`).
    /// Panics on an empty range.
    #[inline]
    fn random_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// `rand`-0.8-style alias of [`Self::random_range`].
    #[inline]
    fn gen_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T {
        self.random_range(range)
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose full state is derived from `seed` by
    /// SplitMix64, so nearby seeds still give decorrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution (see [`Rng::random`]).
pub trait StandardSample {
    /// Draw one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_determines_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..8).map(|_| StdRng::seed_from_u64(42).next_u64()).collect();
        assert!(first.iter().any(|&v| v != c.next_u64()));
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01, "min {lo} suspiciously high");
        assert!(hi > 0.99, "max {hi} suspiciously low");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0 + 1e-9)));
    }

    #[test]
    fn works_through_unsized_rng_bound() {
        // Mirrors the `R: Rng + ?Sized` bounds used across the workspace.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> (f32, usize) {
            (rng.random::<f32>(), rng.random_range(3..10))
        }
        let mut rng = StdRng::seed_from_u64(4);
        let (f, u) = draw(&mut rng);
        assert!((0.0..1.0).contains(&f));
        assert!((3..10).contains(&u));
    }
}
