//! The generators: SplitMix64 (seeding) and xoshiro256++ (the stream).
//!
//! xoshiro256++ is Blackman & Vigna's general-purpose 256-bit generator —
//! fast (one rotate, one shift, three xors per output), equidistributed in
//! 4 dimensions, with a 2²⁵⁶−1 period. SplitMix64 expands a single `u64`
//! seed into the four state words, guaranteeing a well-mixed non-zero state
//! even for adjacent small seeds (0, 1, 2, …) as used throughout the tests.

use crate::{RngCore, SeedableRng};

/// SplitMix64: a tiny 64-bit generator used to initialise other generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start the sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

/// xoshiro256++ — the workspace's standard generator (see [`crate::StdRng`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Build from raw state words. At least one must be non-zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must not be all zero");
        Self { s }
    }

    /// The current state words (for checkpointing / debugging).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the canonical C implementation
    /// (<https://prng.di.unimi.it/xoshiro256plusplus.c>) with state {1,2,3,4}.
    #[test]
    fn xoshiro_known_answer() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// Reference vector for SplitMix64 with seed 0 — the published test
    /// values shared with Java's `SplittableRandom`.
    #[test]
    fn splitmix_known_answer() {
        let mut sm = SplitMix64::new(0);
        let expected: [u64; 5] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn nearby_seeds_decorrelated() {
        let a: Vec<u64> =
            (0..4).map(|_| Xoshiro256PlusPlus::seed_from_u64(0).next_u64()).collect();
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(1);
        let b: Vec<u64> = (0..4).map(|_| r1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn zero_state_rejected() {
        Xoshiro256PlusPlus::from_state([0; 4]);
    }
}
