//! The distributions the workspace samples from: [`Normal`] /
//! [`StandardNormal`] (Box–Muller), [`Uniform`], and [`Bernoulli`].
//!
//! The API mirrors `rand_distr`: a [`Distribution<T>`] trait with a
//! `sample(&self, rng)` method, and fallible constructors that reject
//! degenerate parameters.

use crate::uniform::SampleUniform;
use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value using `rng` as the source of randomness.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributionError(&'static str);

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DistributionError {}

/// Shared float plumbing so [`Normal`] works for both `f32` and `f64`.
pub trait NormalFloat: Copy {
    /// One standard-normal draw via Box–Muller.
    fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    /// `true` when the value is a valid (finite, non-negative) std dev.
    fn valid_std(self) -> bool;
    /// Fused `mean + std * z`.
    fn affine(self, std: Self, z: Self) -> Self;
}

#[inline]
fn box_muller_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so the log is finite; u2 ∈ [0, 1).
    let u1 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl NormalFloat for f64 {
    #[inline]
    fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        box_muller_f64(rng)
    }
    fn valid_std(self) -> bool {
        self.is_finite() && self >= 0.0
    }
    #[inline]
    fn affine(self, std: Self, z: Self) -> Self {
        self + std * z
    }
}

impl NormalFloat for f32 {
    #[inline]
    fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Computed in f64 for a clean tail, then rounded once.
        box_muller_f64(rng) as f32
    }
    fn valid_std(self) -> bool {
        self.is_finite() && self >= 0.0
    }
    #[inline]
    fn affine(self, std: Self, z: Self) -> Self {
        self + std * z
    }
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl<F: NormalFloat> Distribution<F> for StandardNormal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::standard_normal(rng)
    }
}

/// A normal distribution `N(mean, std²)`, sampled with Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std: F,
}

impl<F: NormalFloat> Normal<F> {
    /// Create `N(mean, std²)`; `std` must be finite and non-negative
    /// (`std == 0` gives a point mass, matching `rand_distr`).
    pub fn new(mean: F, std: F) -> Result<Self, DistributionError> {
        if !std.valid_std() {
            return Err(DistributionError("Normal: std must be finite and >= 0"));
        }
        Ok(Self { mean, std })
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        self.mean.affine(self.std, F::standard_normal(rng))
    }
}

/// A uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: SampleUniform> Uniform<T> {
    /// Create a uniform distribution over `[lo, hi)`; requires `lo < hi`.
    pub fn new(lo: T, hi: T) -> Result<Self, DistributionError> {
        // partial_cmp: NaN bounds are incomparable and must be rejected too
        if lo.partial_cmp(&hi) != Some(core::cmp::Ordering::Less) {
            return Err(DistributionError("Uniform: requires lo < hi"));
        }
        Ok(Self { lo, hi })
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(self.lo, self.hi, rng)
    }
}

/// A Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Create a coin with success probability `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Result<Self, DistributionError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistributionError("Bernoulli: p must be in [0, 1]"));
        }
        Ok(Self { p })
    }
}

impl Distribution<bool> for Bernoulli {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.random_bool(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0f64, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_f32_matches_parameters() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = Normal::new(-1.0f32, 0.5).unwrap();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean + 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_zero_std_is_point_mass() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Normal::new(7.5f32, 0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
    }

    #[test]
    fn normal_rejects_bad_std() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f64, f64::NAN).is_err());
        assert!(Normal::new(0.0f64, f64::INFINITY).is_err());
    }

    #[test]
    fn standard_normal_symmetric() {
        let mut rng = StdRng::seed_from_u64(14);
        let n = 50_000;
        let pos = (0..n)
            .filter(|_| {
                let z: f64 = StandardNormal.sample(&mut rng);
                z > 0.0
            })
            .count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(15);
        let d = Uniform::new(-2.0f32, 6.0).unwrap();
        let n = 50_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((-2.0..6.0).contains(&v));
            sum += v as f64;
        }
        assert!((sum / n as f64 - 2.0).abs() < 0.05);
        assert!(Uniform::new(1.0f32, 1.0).is_err());
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = StdRng::seed_from_u64(16);
        let d = Bernoulli::new(0.7).unwrap();
        let hits = (0..20_000).filter(|_| d.sample(&mut rng)).count();
        assert!((hits as f64 / 20_000.0 - 0.7).abs() < 0.02);
        assert!(Bernoulli::new(1.5).is_err());
        assert!(Bernoulli::new(-0.1).is_err());
    }
}
