//! Sequence helpers mirroring `rand::seq`: in-place shuffling and random
//! element choice, used for mini-batch ordering in every training loop.

use crate::{Rng, RngCore};

/// Randomisation methods on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying in order is ~impossible");
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_positions_roughly_uniform() {
        // Element 0 should land in every slot with similar frequency.
        let mut rng = StdRng::seed_from_u64(22);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let mut v = [0usize, 1, 2, 3, 4];
            v.shuffle(&mut rng);
            counts[v.iter().position(|&x| x == 0).unwrap()] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 10_000.0;
            assert!((f - 0.2).abs() < 0.03, "slot frequency {f}");
        }
    }

    #[test]
    fn choose_covers_all_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(23);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &c = v.choose(&mut rng).unwrap();
            seen[c / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
