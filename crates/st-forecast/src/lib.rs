//! # st-forecast
//!
//! A compact Graph-WaveNet-style spatiotemporal forecaster (Wu et al., IJCAI
//! 2019) used for the paper's downstream-task experiment (Table V): impute
//! AQI-36-like data with each method, train this forecaster on the imputed
//! panel, and compare 12-step-ahead prediction MAE/RMSE.
//!
//! Architecture: input 1×1 conv → stacked blocks of [gated dilated causal
//! temporal convolution → graph message passing → residual/skip] → output
//! head reading the final-step features into the forecast horizon.

#![warn(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

use st_rand::StdRng;
use st_rand::SliceRandom;
use st_rand::SeedableRng;
use st_graph::SensorGraph;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{gated_activation, DilatedConv1d, Linear, Mpnn};
use st_tensor::optim::{clip_grad_norm, Adam};
use st_tensor::param::ParamStore;

/// Forecaster hyperparameters.
#[derive(Debug, Clone)]
pub struct ForecastConfig {
    /// Channel width.
    pub d_model: usize,
    /// Number of temporal/spatial blocks (dilations 1, 2, 4, ...).
    pub blocks: usize,
    /// Temporal kernel width.
    pub kernel: usize,
    /// Input history length (paper: 12 steps).
    pub l_in: usize,
    /// Forecast horizon (paper: 12 steps).
    pub l_out: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        Self {
            d_model: 16,
            blocks: 3,
            kernel: 2,
            l_in: 12,
            l_out: 12,
            epochs: 15,
            batch_size: 8,
            lr: 3e-3,
            seed: 29,
        }
    }
}

/// The assembled forecaster.
pub struct Forecaster {
    /// All learnable parameters.
    pub store: ParamStore,
    cfg: ForecastConfig,
    n_nodes: usize,
    input_proj: Linear,
    convs: Vec<DilatedConv1d>,
    mpnns: Vec<Mpnn>,
    skip_projs: Vec<Linear>,
    head1: Linear,
    head2: Linear,
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Forecaster {
    /// Build an untrained forecaster for a sensor graph.
    pub fn new(cfg: ForecastConfig, graph: &SensorGraph, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let d = cfg.d_model;
        let n = graph.n_nodes();
        let input_proj = Linear::new(&mut store, "in", 1, d, rng);
        let mut convs = Vec::new();
        let mut mpnns = Vec::new();
        let mut skip_projs = Vec::new();
        let (fwd, bwd) = graph.transition_matrices();
        for bidx in 0..cfg.blocks {
            let dilation = 1 << bidx;
            convs.push(DilatedConv1d::new(
                &mut store,
                &format!("b{bidx}.conv"),
                cfg.kernel,
                d,
                2 * d,
                dilation,
                rng,
            ));
            mpnns.push(Mpnn::new(
                &mut store,
                &format!("b{bidx}.mpnn"),
                d,
                vec![fwd.clone(), bwd.clone()],
                n,
                2,
                4,
                rng,
            ));
            skip_projs.push(Linear::new(&mut store, &format!("b{bidx}.skip"), d, d, rng));
        }
        let head1 = Linear::new(&mut store, "head1", d, 2 * d, rng);
        let head2 = Linear::new(&mut store, "head2", 2 * d, cfg.l_out, rng);
        Self {
            store,
            cfg,
            n_nodes: n,
            input_proj,
            convs,
            mpnns,
            skip_projs,
            head1,
            head2,
            mean: vec![0.0; n],
            std: vec![1.0; n],
        }
    }

    /// Forward pass: history `[B, N, L_in]` → forecast `[B, N, L_out]`
    /// (in normalised space).
    fn forward(&self, g: &mut Graph<'_>, x: Tx, b: usize) -> Tx {
        let (n, l, d) = (self.n_nodes, self.cfg.l_in, self.cfg.d_model);
        let x4 = g.reshape(x, &[b, n, l, 1]);
        let mut h = self.input_proj.forward(g, x4); // [B, N, L, d]
        let mut skips: Vec<Tx> = Vec::with_capacity(self.convs.len());
        for ((conv, mpnn), skip_proj) in self.convs.iter().zip(&self.mpnns).zip(&self.skip_projs) {
            // temporal: collapse nodes into the batch for the 1-D conv
            let ht = g.reshape(h, &[b * n, l, d]);
            let c = conv.forward(g, ht); // [B*N, L, 2d]
            let gated = gated_activation(g, c); // [B*N, L, d]
            let h_t = g.reshape(gated, &[b, n, l, d]);
            // spatial: per-time-step message passing
            let hp = g.permute(h_t, &[0, 2, 1, 3]); // [B, L, N, d]
            let hs = g.reshape(hp, &[b * l, n, d]);
            let m = mpnn.forward(g, hs);
            let m4 = g.reshape(m, &[b, l, n, d]);
            let h_s = g.permute(m4, &[0, 2, 1, 3]); // [B, N, L, d]
            let res = g.add(h, h_s);
            h = g.scale(res, std::f32::consts::FRAC_1_SQRT_2);
            skips.push(skip_proj.forward(g, h_s));
        }
        let mut skip = skips[0];
        for &s in &skips[1..] {
            skip = g.add(skip, s);
        }
        // read out the final time step's features: [B, N, L, d] -> [B, N, d, L]
        let perm = g.permute(skip, &[0, 1, 3, 2]);
        let last = g.slice_last(perm, l - 1, 1);
        let feat = g.reshape(last, &[b, n, d]);
        let a = g.relu(feat);
        let h1 = self.head1.forward(g, a);
        let a1 = g.relu(h1);
        self.head2.forward(g, a1) // [B, N, L_out]
    }

    /// Predict (evaluation mode) on a concrete `[B, N, L_in]` history in
    /// original units; returns `[B, N, L_out]` in original units.
    pub fn predict(&self, history: &NdArray) -> NdArray {
        let b = history.shape()[0];
        let mut z = history.clone();
        self.normalize(&mut z);
        let mut g = Graph::new_eval(&self.store);
        let x = g.input(z);
        let out = self.forward(&mut g, x, b);
        let mut y = g.value(out).clone();
        self.denormalize(&mut y);
        y
    }

    fn normalize(&self, x: &mut NdArray) {
        per_node_affine(x, &self.mean, &self.std, true);
    }

    fn denormalize(&self, x: &mut NdArray) {
        per_node_affine(x, &self.mean, &self.std, false);
    }
}

fn per_node_affine(x: &mut NdArray, mean: &[f32], std: &[f32], forward: bool) {
    let (b, n, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    for bi in 0..b {
        for i in 0..n {
            for t in 0..l {
                let v = &mut x.data_mut()[(bi * n + i) * l + t];
                *v = if forward { (*v - mean[i]) / std[i] } else { *v * std[i] + mean[i] };
            }
        }
    }
}

/// Extract `(history, target)` sample pairs from a `[T, N]` panel over the
/// step range `[start, end)`.
fn samples(
    panel: &NdArray,
    start: usize,
    end: usize,
    l_in: usize,
    l_out: usize,
    stride: usize,
) -> Vec<(NdArray, NdArray)> {
    let n = panel.shape()[1];
    let mut out = Vec::new();
    let mut t0 = start;
    while t0 + l_in + l_out <= end {
        let mut hist = NdArray::zeros(&[n, l_in]);
        let mut tgt = NdArray::zeros(&[n, l_out]);
        for i in 0..n {
            for t in 0..l_in {
                hist.data_mut()[i * l_in + t] = panel.data()[(t0 + t) * n + i];
            }
            for t in 0..l_out {
                tgt.data_mut()[i * l_out + t] = panel.data()[(t0 + l_in + t) * n + i];
            }
        }
        out.push((hist, tgt));
        t0 += stride;
    }
    out
}

/// Train a forecaster on the first 80 % of the panel (70 % train + 10 %
/// validation merged, matching the Table V protocol).
pub fn train_forecaster(panel: &NdArray, graph: &SensorGraph, cfg: ForecastConfig) -> Forecaster {
    let t_len = panel.shape()[0];
    let n = panel.shape()[1];
    assert_eq!(n, graph.n_nodes());
    let train_end = (t_len as f64 * 0.8) as usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = Forecaster::new(cfg.clone(), graph, &mut rng);

    // per-node normalisation from the training range
    for i in 0..n {
        let mut s = 0.0f64;
        let mut s2 = 0.0f64;
        for t in 0..train_end {
            let v = panel.data()[t * n + i] as f64;
            s += v;
            s2 += v * v;
        }
        let m = s / train_end as f64;
        let var = (s2 / train_end as f64 - m * m).max(1e-6);
        model.mean[i] = m as f32;
        model.std[i] = var.sqrt() as f32;
    }

    let pairs = samples(panel, 0, train_end, cfg.l_in, cfg.l_out, (cfg.l_out / 2).max(1));
    assert!(!pairs.is_empty(), "forecaster: no training samples");
    let prepared: Vec<(NdArray, NdArray)> = pairs
        .iter()
        .map(|(h, t)| {
            let mut hz = h.reshaped(&[1, n, cfg.l_in]);
            let mut tz = t.reshaped(&[1, n, cfg.l_out]);
            model.normalize(&mut hz);
            model.normalize(&mut tz);
            (hz, tz)
        })
        .collect();

    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..prepared.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(cfg.batch_size) {
            let b = chunk.len();
            let mut hist = NdArray::zeros(&[b, n, cfg.l_in]);
            let mut tgt = NdArray::zeros(&[b, n, cfg.l_out]);
            for (bi, &pi) in chunk.iter().enumerate() {
                hist.data_mut()[bi * n * cfg.l_in..(bi + 1) * n * cfg.l_in]
                    .copy_from_slice(prepared[pi].0.data());
                tgt.data_mut()[bi * n * cfg.l_out..(bi + 1) * n * cfg.l_out]
                    .copy_from_slice(prepared[pi].1.data());
            }
            let mut g = Graph::new(&model.store);
            let x = g.input(hist);
            let pred = model.forward(&mut g, x, b);
            let t = g.input(tgt);
            let m = g.input(NdArray::ones(&[b, n, cfg.l_out]));
            let loss = g.mae_masked(pred, t, m);
            let mut grads = g.backward(loss);
            clip_grad_norm(&mut grads, 5.0);
            opt.step(&mut model.store, &grads);
        }
    }
    model
}

/// Evaluate 12-in/12-out forecasting on the last 20 % of the panel, scoring
/// against `truth` (the un-imputed ground truth) so every imputation method
/// is compared on the same targets. Returns `(MAE, RMSE)`.
pub fn evaluate_forecaster(model: &Forecaster, panel: &NdArray, truth: &NdArray) -> (f64, f64) {
    let t_len = panel.shape()[0];
    let n = panel.shape()[1];
    let test_start = (t_len as f64 * 0.8) as usize;
    let cfg = &model.cfg;
    let pairs_in = samples(panel, test_start, t_len, cfg.l_in, cfg.l_out, cfg.l_out);
    let pairs_truth = samples(truth, test_start, t_len, cfg.l_in, cfg.l_out, cfg.l_out);
    let mut abs = 0.0f64;
    let mut sq = 0.0f64;
    let mut count = 0.0f64;
    for ((hist, _), (_, tgt_truth)) in pairs_in.iter().zip(&pairs_truth) {
        let h = hist.reshaped(&[1, n, cfg.l_in]);
        let pred = model.predict(&h);
        for i in 0..n * cfg.l_out {
            let d = (pred.data()[i] - tgt_truth.data()[i]) as f64;
            abs += d.abs();
            sq += d * d;
            count += 1.0;
        }
    }
    (abs / count.max(1.0), (sq / count.max(1.0)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::random_plane_layout;

    fn panel_and_graph() -> (NdArray, SensorGraph) {
        let n = 6;
        let t = 400;
        let graph = SensorGraph::from_coords(random_plane_layout(n, 10.0, 9), 0.1);
        let mut panel = NdArray::zeros(&[t, n]);
        for ti in 0..t {
            for i in 0..n {
                panel.data_mut()[ti * n + i] =
                    20.0 + 5.0 * ((ti as f32) * 0.26 + i as f32).sin() + 0.5 * (i as f32);
            }
        }
        (panel, graph)
    }

    #[test]
    fn forecaster_shapes() {
        let (panel, graph) = panel_and_graph();
        let cfg = ForecastConfig { epochs: 1, d_model: 8, blocks: 2, ..Default::default() };
        let model = train_forecaster(&panel, &graph, cfg);
        let hist = NdArray::zeros(&[2, 6, 12]);
        let pred = model.predict(&hist);
        assert_eq!(pred.shape(), &[2, 6, 12]);
    }

    #[test]
    fn learns_predictable_signal() {
        let (panel, graph) = panel_and_graph();
        let cfg =
            ForecastConfig { epochs: 20, d_model: 8, blocks: 2, lr: 5e-3, ..Default::default() };
        let model = train_forecaster(&panel, &graph, cfg);
        let (mae, rmse) = evaluate_forecaster(&model, &panel, &panel);
        assert!(rmse >= mae, "rmse {rmse} must be >= mae {mae}");
        // naive "predict the training mean" has MAE ≈ E|5 sin| ≈ 3.2
        assert!(mae < 2.5, "forecaster failed to learn periodic signal: MAE {mae:.3}");
    }

    #[test]
    fn samples_cover_range_without_overflow() {
        let (panel, _) = panel_and_graph();
        let pairs = samples(&panel, 0, 100, 12, 12, 6);
        assert!(!pairs.is_empty());
        assert!(pairs.len() <= 100 / 6 + 1);
        for (h, t) in &pairs {
            assert_eq!(h.shape(), &[6, 12]);
            assert_eq!(t.shape(), &[6, 12]);
        }
    }
}
