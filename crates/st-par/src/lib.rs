//! # st-par
//!
//! Deterministic data-parallel execution for the PriSTI-rs stack: a
//! zero-dependency scoped thread pool (`std::thread` + channels) with a
//! **shape-derived chunking contract**.
//!
//! ## The determinism contract
//!
//! Every parallel entry point splits its work into chunks whose number and
//! boundaries are a pure function of the *problem shape* (batch count, row
//! count, chunk length) — never of the thread count. Each chunk
//!
//! * computes a value that depends only on its inputs and chunk index, and
//! * writes only to memory disjoint from every other chunk
//!   ([`par_chunks_mut`]) or to its own slot of an index-ordered result
//!   vector ([`par_map`]).
//!
//! Reductions over chunk results are folded *by the caller, in chunk-index
//! order*. Threads only decide *when* a chunk runs, never *what* it computes
//! or *where* its result lands, so the final bytes are identical for
//! `ST_PAR_THREADS=1`, `2`, or `8` — byte-identity that
//! `tests/determinism.rs` pins for the whole train + impute pipeline.
//!
//! ## Pool lifecycle
//!
//! The pool is a process-global singleton, spawned lazily on the first
//! dispatch that actually wants more than one thread. Workers park on an
//! `mpsc` channel; a dispatched task is a lifetime-erased closure plus an
//! atomic chunk counter that callers and workers *claim* indices from
//! (`fetch_add`), so no per-chunk boxing or queue is needed. The caller
//! participates in its own task and then blocks on a condvar until the last
//! chunk completes, which is what makes the lifetime erasure sound: no chunk
//! can outlive the call that borrowed its data. Worker panics are caught and
//! re-raised on the caller with their original payload.
//!
//! The default thread count comes from `ST_PAR_THREADS` (falling back to
//! [`std::thread::available_parallelism`]); [`set_threads`] adjusts the
//! *active* count at runtime (bench scaling runs, `TrainConfig::threads`).
//! The pool keeps capacity for at least [`MIN_CAPACITY`] threads so
//! determinism tests can exercise real multi-threading even on single-core
//! hosts.
//!
//! ## Telemetry
//!
//! Every entry point takes a `&'static str` **label** naming the parallel
//! region (`"matmul"`, `"conv1d_fwd"`, …). When an `st-obs` recorder is
//! installed, each dispatch records per-label telemetry aggregated by the
//! recorder and emitted at flush:
//!
//! * `par` events — dispatch/chunk counts, [`worthwhile`] accept/reject
//!   tallies, per-thread busy nanoseconds summed across participants, and
//!   the computed efficiency `eff_pct = Σbusy / Σ(threads × span)`;
//! * aggregated `pool.*` counters — `pool.inline_runs`, `pool.tasks`,
//!   `pool.chunks`, `pool.caller_chunks` / `pool.worker_chunks` (who
//!   actually ran the work — the worker share is the "steal" depth) — all
//!   five names recorded on *every* dispatch (zero deltas included) so the
//!   flushed name set is identical across `ST_PAR_THREADS` values;
//! * a `pool.active_threads` gauge from [`set_threads`].
//!
//! Workers never talk to the recorder; only the dispatching thread does, so
//! event count and order are a pure function of the dispatch sequence.
//!
//! ```
//! // Results come back in index order regardless of which thread ran what,
//! // so folds over them are thread-count independent.
//! let squares = st_par::par_map("doc_squares", 5, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//!
//! // Disjoint in-place chunks: boundaries derive from the data shape only.
//! let mut buf = vec![1.0f32; 6];
//! st_par::par_chunks_mut("doc_scale", &mut buf, 2, |ci, chunk| {
//!     for v in chunk {
//!         *v *= (ci + 1) as f32;
//!     }
//! });
//! assert_eq!(buf, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
//! ```

#![deny(missing_docs)]

use std::any::Any;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// The pool always keeps capacity for at least this many threads, so
/// [`set_threads`] can exercise genuine multi-threading (determinism tests,
/// scaling benches) even when the host reports a single core.
pub const MIN_CAPACITY: usize = 8;

/// Default floor on *work per participating thread* below which a dispatch
/// is not worth its wake-up/claim overhead; callers use [`worthwhile`] as a
/// shape-only gate (the threshold never changes what a chunk computes, only
/// whether chunks run on the pool or inline).
pub const MIN_PAR_ELEMS: usize = 16 * 1024;

/// Per-label dispatch policy: how much work a parallel region needs before
/// fanning out, and how coarse its chunks should be. Calibrated from the
/// PROFILE.json `par` table (see DESIGN.md §14) — the flat [`MIN_PAR_ELEMS`]
/// gate let `batch_matmul_transb` fan 576-flop attention tiles out across 8
/// threads, where dispatch overhead alone regressed `_tmax` 2× vs `_t1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Policy {
    /// Dispatch only when `work >= threads() * min_work_per_thread`: below
    /// that, each participant's share is smaller than the cost of waking it.
    pub min_work_per_thread: usize,
    /// Target work (same unit as the gate: flops or elements) per claimed
    /// chunk. Callers size chunks as `ceil(min_chunk_work / per_item_work)`
    /// items via [`chunk_items`], so one atomic claim covers enough work to
    /// amortize itself and chunk counts stay near the thread count.
    pub min_chunk_work: usize,
}

/// The dispatch policy for a parallel region label.
///
/// The table is static — a pure function of the label, never of the host or
/// thread count — so chunk boundaries derived from it keep the shape-only
/// determinism contract. Matmul-family labels quote work in flops
/// (`m*n*k`-style) and need far more of it per thread than memory-bound
/// element loops: their per-chunk state (the shared B panel, register tiles
/// of the MR=4/NR=16 grid) is re-warmed per participant, so sub-tile chunks
/// thrash caches instead of helping.
pub fn policy(label: &str) -> Policy {
    match label {
        // Per-batch-element tiles are tiny (attention: m=n=24, k=head_dim 4
        // → 2304 flops each); only very large batch counts justify fan-out,
        // and chunks must group many elements to clear one claim's overhead.
        "batch_matmul" | "batch_matmul_transb" | "batch_matmul_transa"
        | "matmul_shared_left" => {
            Policy { min_work_per_thread: 128 * 1024, min_chunk_work: 64 * 1024 }
        }
        // 2-D matmuls split into ROW_CHUNK row bands; each band re-reads the
        // whole B panel, so bands below ~64k flops churn more than they win.
        // The per-thread bar is high because the AVX2 kernel clears ~768k
        // flops in well under 100 µs — fan-out below that loses to the wake
        // cost (the profile's 1–4 Mflop denoiser matmuls regressed 1.3× at
        // 8 threads under a 128k bar).
        "matmul" | "matmul_transb" => {
            Policy { min_work_per_thread: 768 * 1024, min_chunk_work: 64 * 1024 }
        }
        // Convolution / MPNN backward loops: flop-quoted like the matmuls.
        "conv1d_fwd" | "conv1d_bwd" | "mpnn_bwd_gs" => {
            Policy { min_work_per_thread: 64 * 1024, min_chunk_work: 32 * 1024 }
        }
        // Coarse outer loops (per-window training/imputation batches) whose
        // items are whole model passes: always worth a thread each.
        _ => Policy { min_work_per_thread: MIN_PAR_ELEMS, min_chunk_work: MIN_PAR_ELEMS },
    }
}

/// Number of items one chunk should group so it carries at least the
/// label's `min_chunk_work`: `ceil(min_chunk_work / per_item_work)`, at
/// least 1. Pure function of (label, per-item work) — safe to derive chunk
/// boundaries from.
pub fn chunk_items(label: &str, per_item_work: usize) -> usize {
    policy(label).min_chunk_work.div_ceil(per_item_work.max(1)).max(1)
}

/// Thread count requested by the environment: `ST_PAR_THREADS` if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("ST_PAR_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

fn active_cell() -> &'static AtomicUsize {
    static ACTIVE: OnceLock<AtomicUsize> = OnceLock::new();
    ACTIVE.get_or_init(|| AtomicUsize::new(configured_threads()))
}

/// Number of threads parallel dispatches currently aim to use (caller
/// included). Defaults to `ST_PAR_THREADS` / available parallelism.
pub fn threads() -> usize {
    active_cell().load(Ordering::Relaxed)
}

/// Pool capacity: the largest value [`set_threads`] can apply.
pub fn max_threads() -> usize {
    configured_threads().max(MIN_CAPACITY)
}

/// Set the active thread count, clamped to `1..=max_threads()`; `0` resets
/// to the configured default. Returns the value actually applied.
///
/// Changing the thread count never changes results — only how many workers
/// claim chunks — so this is safe to flip mid-process (bench scaling runs do).
pub fn set_threads(n: usize) -> usize {
    let applied = if n == 0 { configured_threads() } else { n.clamp(1, max_threads()) };
    active_cell().store(applied, Ordering::Relaxed);
    st_obs::gauge_set("pool.active_threads", applied as f64);
    applied
}

/// Shape-only gate: is `work` (total output elements / flops of the whole
/// dispatch) big enough to be worth handing to the pool under `label`'s
/// [`policy`]? Accepts when every participating thread would get at least
/// `min_work_per_thread` of it — so raising the thread count *raises* the
/// bar, instead of slicing fixed work ever thinner.
///
/// The decision is recorded under `label` (accept/reject tallies on the
/// flushed `par` event), so a profile can show which regions never clear
/// their threshold. Call sites must gate unconditionally — the recorded
/// label set is part of the cross-thread-count determinism contract. The
/// gate only picks the execution path; chunk *values* never depend on it.
pub fn worthwhile(label: &'static str, work: usize) -> bool {
    let t = threads();
    let accepted = t > 1 && work >= policy(label).min_work_per_thread.saturating_mul(t);
    st_obs::record_par_gate(label, accepted);
    accepted
}

// ---------------------------------------------------------------------------
// Task: one parallel dispatch, shared between the caller and the workers.
// ---------------------------------------------------------------------------

/// Type-erased chunk function. The `'static` here is a lie told through
/// `erase_lifetime`; soundness is restored by [`Task::wait`] — the borrow it
/// points at outlives every dereference because the caller blocks until all
/// chunks are done.
type ChunkFn = dyn Fn(usize) + Sync;

struct Task {
    f: *const ChunkFn,
    n: usize,
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Chunks not yet finished; the decrement to zero signals `done`.
    remaining: AtomicUsize,
    /// Nanoseconds spent executing chunks, summed over all participating
    /// threads (caller included). Only accumulated while a recorder is
    /// installed; each chunk's time is added *before* its `remaining`
    /// decrement, so the release-sequence on `remaining` makes every
    /// contribution visible to the dispatcher once `wait` returns.
    busy_ns: AtomicU64,
    /// Threads that executed at least one chunk (caller included).
    participants: AtomicUsize,
    /// First panic payload raised inside a chunk, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    cv: Condvar,
}

// SAFETY: `f` is only dereferenced by chunk executions, all of which complete
// before `Task::wait` returns to the owner of the borrow behind `f`.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    fn new(f: *const ChunkFn, n: usize) -> Arc<Self> {
        Arc::new(Self {
            f,
            n,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n),
            busy_ns: AtomicU64::new(0),
            participants: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    /// Claim and run chunks until none are left. Returns how many this
    /// thread executed.
    fn work(&self) -> usize {
        let timed = st_obs::is_enabled();
        let mut ran = 0usize;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return ran;
            }
            if ran == 0 {
                self.participants.fetch_add(1, Ordering::Relaxed);
            }
            let t0 = if timed { Some(Instant::now()) } else { None };
            // SAFETY: the caller of `run` is still inside `wait`, so the
            // borrow behind `f` is alive.
            let f = unsafe { &*self.f };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.busy_ns.fetch_add(ns, Ordering::Relaxed);
            }
            ran += 1;
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().unwrap();
                *done = true;
                self.cv.notify_all();
            }
        }
    }

    /// Block until every chunk has completed, then re-raise the first panic.
    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.cv.wait(done).unwrap();
        }
        drop(done);
        if let Some(payload) = self.panic.lock().unwrap().take() {
            std::panic::resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// The global pool.
// ---------------------------------------------------------------------------

struct Pool {
    /// One channel per worker; a dispatch fans the task out to the first
    /// `threads() - 1` of them.
    senders: Vec<Sender<Arc<Task>>>,
}

thread_local! {
    /// Set inside pool workers: nested parallel calls run inline instead of
    /// re-entering the pool (no deadlock, same bytes).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let capacity = max_threads();
        let mut senders = Vec::with_capacity(capacity.saturating_sub(1));
        for w in 0..capacity.saturating_sub(1) {
            let (tx, rx) = std::sync::mpsc::channel::<Arc<Task>>();
            let spawned = std::thread::Builder::new()
                .name(format!("st-par-{w}"))
                .spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    // Workers never emit telemetry: every pool counter is
                    // recorded by the dispatching thread (see `run`), so the
                    // event stream's order is independent of scheduling.
                    while let Ok(task) = rx.recv() {
                        task.work();
                    }
                });
            if spawned.is_ok() {
                senders.push(tx);
            }
        }
        // No telemetry here on purpose: the pool is built lazily on the
        // first multi-threaded dispatch, so an event emitted from this path
        // would exist at ST_PAR_THREADS=4 but not =1, breaking the
        // cross-thread-count stream-identity contract. Capacity is implied
        // by the `pool.active_threads` gauge from `set_threads`.
        Pool { senders }
    })
}

/// Record the full `pool.*` counter set for one dispatch. Zero deltas are
/// recorded too: the aggregated-counter name set (which survives
/// `strip_timing`) must not depend on which path the dispatch took or on
/// the active thread count.
fn record_pool_counters(inline: u64, tasks: u64, chunks: u64, caller: u64, worker: u64) {
    st_obs::counter_agg("pool.inline_runs", inline as f64);
    st_obs::counter_agg("pool.tasks", tasks as f64);
    st_obs::counter_agg("pool.chunks", chunks as f64);
    st_obs::counter_agg("pool.caller_chunks", caller as f64);
    st_obs::counter_agg("pool.worker_chunks", worker as f64);
}

/// Run `f(i)` for every `i` in `0..n`, possibly on pool workers, recording
/// per-dispatch telemetry under `label`.
///
/// `n` and what each index computes must derive from the problem shape only;
/// each index must touch state disjoint from every other index. Runs inline
/// when `n <= 1`, when one thread is active, or when called from inside a
/// pool worker (nested dispatch).
pub fn run(label: &'static str, n: usize, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let timed = st_obs::is_enabled();
    let t = threads();
    if n == 1 || t <= 1 || IN_WORKER.with(|w| w.get()) {
        let t0 = if timed { Some(Instant::now()) } else { None };
        for i in 0..n {
            f(i);
        }
        if let Some(t0) = t0 {
            // Inline: one thread, busy for the whole dispatch (eff = 100%).
            let ns = t0.elapsed().as_nanos();
            st_obs::record_par_dispatch(label, n as u64, 1, ns, ns);
            record_pool_counters(1, 0, 0, 0, 0);
        }
        return;
    }
    // SAFETY (lifetime erasure): the borrow behind `f` stays alive until
    // `task.wait()` below returns, and no chunk dereferences it afterwards.
    let f_erased: *const ChunkFn =
        unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
    let task = Task::new(f_erased, n);
    let helpers = (t - 1).min(n - 1);
    let pool = pool();
    let t0 = if timed { Some(Instant::now()) } else { None };
    for tx in pool.senders.iter().take(helpers) {
        // A worker whose channel died (spawn failure) is simply skipped;
        // remaining chunks are claimed by the caller and surviving workers.
        let _ = tx.send(Arc::clone(&task));
    }
    let ran = task.work();
    task.wait();
    // Recorded unconditionally from the dispatching thread once every chunk
    // has finished: each chunk runs exactly once, so workers ran `n - ran`.
    // Keeping workers out of the recorder makes the event stream's count and
    // order a pure function of the dispatch sequence (the chunk *split*
    // between caller and workers — the values — stays scheduling-dependent;
    // `strip_timing` drops `pool.*` and `par` values for exactly that
    // reason).
    if let Some(t0) = t0 {
        let span_ns = t0.elapsed().as_nanos();
        let busy_ns = u128::from(task.busy_ns.load(Ordering::Acquire));
        let participants = task.participants.load(Ordering::Acquire) as u64;
        st_obs::record_par_dispatch(label, n as u64, participants.max(1), busy_ns, span_ns);
        record_pool_counters(0, 1, n as u64, ran as u64, (n - ran) as u64);
    }
}

/// Raw-pointer wrapper so disjoint-slice closures can be `Sync`.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Run `f(i)` for `i` in `0..n` (convenience over [`run`]).
pub fn par_index(label: &'static str, n: usize, f: impl Fn(usize) + Sync) {
    run(label, n, &f);
}

/// Split `data` into consecutive chunks of `chunk_len` (last may be short)
/// and run `f(chunk_index, chunk)` for each — the chunk boundaries are a
/// pure function of `data.len()` and `chunk_len`, never of the thread count.
pub fn par_chunks_mut<T: Send>(
    label: &'static str,
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "par_chunks_mut needs a positive chunk length");
    let len = data.len();
    let n_chunks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    run(label, n_chunks, &|ci| {
        let start = ci * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: chunk `ci` covers `[start, end)`, disjoint from every other
        // chunk, and `data` outlives the dispatch (run() blocks).
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(ci, chunk);
    });
}

/// Compute `f(i)` for `i` in `0..n` and return the results **in index
/// order**, so the caller can fold them with a thread-count-independent
/// reduction order.
pub fn par_map<R: Send>(label: &'static str, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let mut slots: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(n);
    slots.resize_with(n, std::mem::MaybeUninit::uninit);
    let base = SendPtr(slots.as_mut_ptr());
    run(label, n, &|i| {
        // SAFETY: slot `i` is written exactly once, by the single execution
        // of chunk `i`; `slots` outlives the dispatch.
        unsafe { (*base.get().add(i)).write(f(i)) };
    });
    // Every slot is initialised (run() returns only after all n chunks).
    let ptr = slots.as_mut_ptr() as *mut R;
    let (len, cap) = (slots.len(), slots.capacity());
    std::mem::forget(slots);
    // SAFETY: same allocation, identical layout, all elements initialised.
    unsafe { Vec::from_raw_parts(ptr, len, cap) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests mutate the global active-thread count; serialise them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let _l = lock();
        for t in [1, 2, 8] {
            set_threads(t);
            let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            par_index("test", 103, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "threads={t}");
        }
        set_threads(0);
    }

    #[test]
    fn chunked_fill_is_thread_count_invariant() {
        let _l = lock();
        let reference: Vec<u64> = {
            set_threads(1);
            let mut v = vec![0u64; 1000];
            par_chunks_mut("test", &mut v, 64, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (ci * 1_000_003 + j) as u64;
                }
            });
            v
        };
        for t in [2, 3, 8] {
            set_threads(t);
            let mut v = vec![0u64; 1000];
            par_chunks_mut("test", &mut v, 64, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (ci * 1_000_003 + j) as u64;
                }
            });
            assert_eq!(v, reference, "threads={t}");
        }
        set_threads(0);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let _l = lock();
        set_threads(8);
        let out = par_map("test", 257, |i| i * i);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        set_threads(0);
    }

    #[test]
    fn ordered_float_reduction_is_identical_across_thread_counts() {
        let _l = lock();
        // A reduction folded in chunk order must produce identical bits no
        // matter how many threads computed the partials.
        let fold = |t: usize| -> u64 {
            set_threads(t);
            let partials = par_map("test", 37, |i| {
                let mut acc = 0.0f32;
                for j in 0..1000 {
                    acc += ((i * 1000 + j) as f32).sqrt() * 1e-3;
                }
                acc
            });
            partials.iter().fold(0.0f32, |a, &b| a + b).to_bits() as u64
        };
        let one = fold(1);
        assert_eq!(fold(2), one);
        assert_eq!(fold(8), one);
        set_threads(0);
    }

    #[test]
    fn panics_propagate_with_payload() {
        let _l = lock();
        set_threads(4);
        let caught = std::panic::catch_unwind(|| {
            par_index("test", 64, |i| {
                if i == 13 {
                    panic!("chunk 13 exploded");
                }
            });
        });
        set_threads(0);
        let payload = caught.expect_err("panic should propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("chunk 13 exploded"), "got: {msg}");
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let _l = lock();
        set_threads(4);
        let outer: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
        par_index("test", 16, |i| {
            // Nested call: must complete inline on whichever thread runs it.
            let inner = par_map("test", 8, |j| j + i);
            assert_eq!(inner.iter().sum::<usize>(), 28 + 8 * i);
            outer[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(outer.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        set_threads(0);
    }

    #[test]
    fn set_threads_clamps_and_resets() {
        let _l = lock();
        assert_eq!(set_threads(1), 1);
        assert_eq!(set_threads(usize::MAX), max_threads());
        assert_eq!(set_threads(0), configured_threads());
        assert_eq!(threads(), configured_threads());
    }

    #[test]
    fn empty_and_single_runs_are_inline() {
        let _l = lock();
        set_threads(8);
        par_index("test", 0, |_| panic!("must not run"));
        run("test", 1, &|i| {
            assert_eq!(i, 0);
            // Single-chunk dispatches stay on the caller thread.
            assert!(!IN_WORKER.with(|w| w.get()));
        });
        set_threads(0);
    }
}
