//! Worker-count invariance: the replica pool is bitwise invisible. The same
//! request set must produce identical bytes with 1, 2, or 4 workers, at 1 or
//! 4 `st-par` threads — enabled by per-request RNG streams
//! ([`st_serve::request_rng`]), whose pairwise disjointness the property
//! tests pin over a sampled prefix.

use pristi_core::train::{train, TrainConfig};
use pristi_core::{PristiConfig, Sampler};
use st_check::prelude::*;
use st_data::dataset::{Split, Window};
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_rand::RngCore;
use st_serve::{
    checkpoint_from_bytes, checkpoint_to_bytes, request_rng, AdmissionTier, ImputeRequest,
    ImputeService, ServeConfig,
};
use std::sync::Arc;

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

/// Serve 8 concurrent requests and return each response's sample bytes,
/// indexed by request id.
fn serve_all(ckpt: &[u8], workers: usize, windows: &[Window], base_seed: u64) -> Vec<Vec<Vec<u8>>> {
    let trained = checkpoint_from_bytes(ckpt).unwrap();
    let service = Arc::new(
        ImputeService::start(
            trained,
            ServeConfig { workers, base_seed, max_batch_samples: 8, ..Default::default() },
        )
        .unwrap(),
    );
    let handles: Vec<_> = (0..8u64)
        .map(|id| {
            let service = Arc::clone(&service);
            let w = windows[id as usize % windows.len()].clone();
            std::thread::spawn(move || {
                let res = service
                    .submit(ImputeRequest {
                        id,
                        window: w,
                        n_samples: 1 + (id as usize % 3),
                        sampler: Sampler::Ddpm,
                        tier: AdmissionTier::Interactive,
                        deadline: None,
                    })
                    .unwrap();
                (id, res.samples.iter().map(|s| s.to_bytes()).collect::<Vec<_>>())
            })
        })
        .collect();
    let mut out = vec![Vec::new(); 8];
    for h in handles {
        let (id, bytes) = h.join().unwrap();
        out[id as usize] = bytes;
    }
    out
}

/// The tentpole invariant: every (worker count, thread count) combination
/// answers the identical request set with identical bytes. One test iterates
/// the full grid because `st_par::set_threads` is process-global.
#[test]
fn worker_count_and_thread_count_are_bitwise_invisible() {
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 6,
        seed: 311,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 312);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 313,
        ..Default::default()
    };
    let trained = train(&data, tiny_cfg(), &tc).unwrap();
    // The only supported model clone is the checkpoint byte round-trip
    // (bit-exact), so every service below runs the same weights.
    let ckpt = checkpoint_to_bytes(&trained);
    let windows = data.windows(Split::Test, 12, 12);
    let base_seed = 42;

    let reference = serve_all(&ckpt, 1, &windows, base_seed);
    for threads in [1usize, 4] {
        st_par::set_threads(threads);
        for workers in [1usize, 2, 4] {
            let got = serve_all(&ckpt, workers, &windows, base_seed);
            assert_eq!(
                got, reference,
                "workers={workers} threads={threads} diverges from the single-worker reference"
            );
        }
    }
    st_par::set_threads(0);
}

properties! {
    /// Distinct request ids get disjoint RNG streams: the first 16 outputs
    /// never coincide entirely (a shared stream would correlate two
    /// requests' noise — the failure mode that would make worker counts
    /// *visible*). Sampled over ids near and far apart and arbitrary seeds.
    #[test]
    fn distinct_ids_get_disjoint_streams(base_seed in 0u64..u64::MAX, a in 0u64..1_000_000, delta in 1u64..1_000_000) {
        let b = a.wrapping_add(delta);
        let mut ra = request_rng(base_seed, a);
        let mut rb = request_rng(base_seed, b);
        let mut all_equal = true;
        for _ in 0..16 {
            if ra.next_u64() != rb.next_u64() {
                all_equal = false;
                break;
            }
        }
        prop_assert!(!all_equal, "ids {a} and {b} share a stream under seed {base_seed}");
    }

    /// The stream is a pure function of `(base_seed, id)`: recomputing it
    /// replays the identical prefix (resubmission determinism).
    #[test]
    fn same_id_replays_the_same_stream(base_seed in 0u64..u64::MAX, id in 0u64..u64::MAX) {
        let mut ra = request_rng(base_seed, id);
        let mut rb = request_rng(base_seed, id);
        for _ in 0..16 {
            prop_assert_eq!(ra.next_u64(), rb.next_u64());
        }
    }
}
