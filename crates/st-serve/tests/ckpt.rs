//! Checkpoint contract tests: save → load → impute is bitwise identical to
//! the in-memory model, and every class of damage surfaces as the right
//! typed error.

use pristi_core::train::{train, TrainConfig};
use pristi_core::{
    impute, impute_batch_with, BatchItem, ImputeOptions, PriorMode, PristiConfig, PristiError,
    Sampler,
};
use st_data::dataset::Split;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_rand::{SeedableRng, StdRng};
use st_serve::{checkpoint_from_bytes, checkpoint_to_bytes, load_checkpoint, save_checkpoint};
use std::path::PathBuf;

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

fn trained_setup() -> (st_data::SpatioTemporalDataset, pristi_core::TrainedModel) {
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 6,
        seed: 21,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 22);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 23,
        ..Default::default()
    };
    let trained = train(&data, tiny_cfg(), &tc).unwrap();
    (data, trained)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("st_serve_ckpt_{tag}_{}.bin", std::process::id()))
}

#[test]
fn round_trip_is_bitwise_identical_through_imputation() {
    let (data, trained) = trained_setup();
    let path = temp_path("roundtrip");
    save_checkpoint(&trained, &path).unwrap();
    let restored = load_checkpoint(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Every serialized piece round-trips exactly.
    assert_eq!(restored.model.store.to_bytes(), trained.model.store.to_bytes());
    assert_eq!(restored.schedule.betas(), trained.schedule.betas());
    assert_eq!(restored.normalizer.mean, trained.normalizer.mean);
    assert_eq!(restored.normalizer.std, trained.normalizer.std);
    assert_eq!(restored.epoch_losses, trained.epoch_losses);
    assert_eq!(restored.graph.adjacency, trained.graph.adjacency);

    // And the contract that matters: imputation through the restored model
    // is bit-for-bit the in-memory imputation, for both samplers.
    let w = &data.windows(Split::Test, 12, 12)[0];
    for sampler in [Sampler::Ddpm, Sampler::Ddim { steps: 4, eta: 0.0 }] {
        let opts = ImputeOptions { n_samples: 3, sampler };
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = impute(&trained, w, &opts, &mut r1).unwrap();
        let b = impute(&restored, w, &opts, &mut r2).unwrap();
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert!(x.to_bytes() == y.to_bytes(), "restored model diverges ({sampler:?})");
        }
    }
}

/// The prior-cached inference path through a restored checkpoint: building a
/// `PriorCache` from reloaded parameters must give bitwise the same ensembles
/// as (a) the in-memory model's cached run and (b) the restored model running
/// in recompute mode.
#[test]
fn restored_checkpoint_cached_path_bitwise_identical() {
    let (data, trained) = trained_setup();
    let path = temp_path("cached");
    save_checkpoint(&trained, &path).unwrap();
    let restored = load_checkpoint(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let w = &data.windows(Split::Test, 12, 12)[0];
    for sampler in [Sampler::Ddpm, Sampler::Ddim { steps: 4, eta: 0.0 }] {
        let run = |tm: &pristi_core::TrainedModel, mode: PriorMode| {
            let mut items =
                [BatchItem { window: w, n_samples: 3, rng: StdRng::seed_from_u64(41) }];
            let mut res = impute_batch_with(tm, &mut items, sampler, mode).unwrap();
            res.pop().unwrap()
        };
        let mem_cached = run(&trained, PriorMode::Cached);
        let disk_cached = run(&restored, PriorMode::Cached);
        let disk_plain = run(&restored, PriorMode::Recompute);
        for (other, what) in [(&disk_cached, "restored cached"), (&disk_plain, "restored recompute")]
        {
            for (a, b) in mem_cached.samples.iter().zip(&other.samples) {
                assert!(
                    a.to_bytes() == b.to_bytes(),
                    "{what} diverges from in-memory cached run ({sampler:?})"
                );
            }
        }
    }
}

#[test]
fn corrupt_truncated_and_wrong_version_are_typed_errors() {
    let (_, trained) = trained_setup();
    let good = checkpoint_to_bytes(&trained);

    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        checkpoint_from_bytes(&bad),
        Err(PristiError::CheckpointCorrupt(_))
    ));

    // Unknown version, reported with what was found.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(
        checkpoint_from_bytes(&bad),
        Err(PristiError::CheckpointVersionMismatch { found: 9, supported: 1 })
    ));

    // Flipped payload byte fails the checksum.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert!(matches!(
        checkpoint_from_bytes(&bad),
        Err(PristiError::CheckpointCorrupt(ref m)) if m.contains("checksum")
    ));

    // Truncation at any boundary is corruption, never a panic: chop the
    // file at a spread of lengths including mid-header and mid-payload.
    for cut in [0, 5, 12, 27, 28, 40, good.len() / 2, good.len() - 1] {
        match checkpoint_from_bytes(&good[..cut]) {
            Err(PristiError::CheckpointCorrupt(_)) => {}
            other => panic!("truncation at {cut} bytes gave {other:?}"),
        }
    }

    // Empty / garbage files.
    assert!(matches!(
        checkpoint_from_bytes(&[]),
        Err(PristiError::CheckpointCorrupt(_))
    ));
    assert!(matches!(
        checkpoint_from_bytes(&[0xAB; 64]),
        Err(PristiError::CheckpointCorrupt(_))
    ));

    // The pristine bytes still load (the mutations above were on copies).
    checkpoint_from_bytes(&good).unwrap();
}

#[test]
fn missing_file_is_io_error() {
    let err = load_checkpoint("/nonexistent-dir/model.ckpt").unwrap_err();
    assert!(matches!(err, PristiError::Io(_)));
}
