//! Service contract tests: micro-batching under concurrent load returns
//! bit-for-bit the same samples as direct `impute` calls, and the failure
//! modes (full queue, missed deadline, malformed request, shutdown) are
//! typed errors.

use pristi_core::train::{train, TrainConfig};
use pristi_core::{impute, ImputeOptions, PristiConfig, PristiError, Sampler};
use st_data::dataset::{Split, Window};
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_serve::{request_rng, AdmissionTier, ImputeRequest, ImputeService, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

fn trained_setup() -> (st_data::SpatioTemporalDataset, pristi_core::TrainedModel) {
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 6,
        seed: 31,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 32);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 33,
        ..Default::default()
    };
    let trained = train(&data, tiny_cfg(), &tc).unwrap();
    (data, trained)
}

fn request(id: u64, window: &Window, n_samples: usize) -> ImputeRequest {
    ImputeRequest {
        id,
        window: window.clone(),
        n_samples,
        sampler: Sampler::Ddpm,
        tier: AdmissionTier::Interactive,
        deadline: None,
    }
}

/// The tentpole contract: many clients hammering the service concurrently
/// (forcing coalesced micro-batches) each get bit-for-bit the samples a
/// direct `impute` call with their request's RNG stream produces.
#[test]
fn concurrent_batched_serving_is_bitwise_deterministic() {
    let (data, trained) = trained_setup();
    let windows = data.windows(Split::Test, 12, 12);
    let base_seed = 77;

    // Direct references, computed before the service takes the model.
    let expected: Vec<Vec<Vec<u8>>> = (0..8u64)
        .map(|id| {
            let w = &windows[id as usize % windows.len()];
            let mut rng = request_rng(base_seed, id);
            let res = impute(
                &trained,
                w,
                &ImputeOptions { n_samples: 1 + (id as usize % 3), sampler: Sampler::Ddpm },
                &mut rng,
            )
            .unwrap();
            res.samples.iter().map(|s| s.to_bytes()).collect()
        })
        .collect();

    let service = Arc::new(
        ImputeService::start(
            trained,
            ServeConfig { base_seed, max_batch_samples: 8, ..Default::default() },
        )
        .unwrap(),
    );

    let handles: Vec<_> = (0..8u64)
        .map(|id| {
            let service = Arc::clone(&service);
            let w = windows[id as usize % windows.len()].clone();
            std::thread::spawn(move || {
                let res = service.submit(request(id, &w, 1 + (id as usize % 3))).unwrap();
                (id, res.samples.iter().map(|s| s.to_bytes()).collect::<Vec<_>>())
            })
        })
        .collect();
    for h in handles {
        let (id, got) = h.join().unwrap();
        assert_eq!(
            got, expected[id as usize],
            "request {id}: batched service result diverges from direct impute"
        );
    }
}

/// Same request id → same bytes, across service instances and repeat
/// submissions (the id keys the RNG stream; queue position is irrelevant).
#[test]
fn resubmitting_an_id_reproduces_the_response() {
    let (data, trained) = trained_setup();
    let w = &data.windows(Split::Test, 12, 12)[0];
    let service =
        ImputeService::start(trained, ServeConfig { base_seed: 5, ..Default::default() }).unwrap();
    let a = service.submit(request(42, w, 2)).unwrap();
    let b = service.submit(request(42, w, 2)).unwrap();
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert!(x.to_bytes() == y.to_bytes());
    }
}

#[test]
fn failure_modes_are_typed_errors() {
    let (data, trained) = trained_setup();
    let w = &data.windows(Split::Test, 12, 12)[0];

    // Zero-capacity queue: deterministic QueueFull on every submit.
    {
        let (_, trained) = trained_setup();
        let service = ImputeService::start(
            trained,
            ServeConfig { queue_capacity: 0, ..Default::default() },
        )
        .unwrap();
        assert!(matches!(
            service.submit(request(1, w, 2)),
            Err(PristiError::QueueFull { capacity: 0, depth: 0, shed: false })
        ));
    }

    // Shed threshold of zero: deterministic load-shed for best-effort
    // requests (shed: true distinguishes it from hard capacity), while
    // interactive requests are still admitted and served.
    {
        let (_, trained) = trained_setup();
        let service = ImputeService::start(
            trained,
            ServeConfig { shed_threshold: 0, ..Default::default() },
        )
        .unwrap();
        let mut best_effort = request(7, w, 2);
        best_effort.tier = AdmissionTier::BestEffort;
        assert!(matches!(
            service.submit(best_effort),
            Err(PristiError::QueueFull { depth: 0, shed: true, .. })
        ));
        assert_eq!(service.submit(request(8, w, 2)).unwrap().n_samples(), 2);
    }

    // Zero deadline: deterministic Timeout (the worker always finds the
    // request expired at dequeue).
    {
        let (_, trained) = trained_setup();
        let service = ImputeService::start(trained, ServeConfig::default()).unwrap();
        let mut req = request(2, w, 2);
        req.deadline = Some(Duration::ZERO);
        assert!(matches!(service.submit(req), Err(PristiError::Timeout { .. })));
    }

    // Malformed requests fail fast, before queuing.
    {
        let service = ImputeService::start(trained, ServeConfig::default()).unwrap();
        assert!(matches!(
            service.submit(request(3, w, 0)),
            Err(PristiError::DegenerateConfig(_))
        ));
        let mut bad = request(4, w, 2);
        bad.sampler = Sampler::Ddim { steps: 0, eta: 0.0 };
        assert!(matches!(service.submit(bad), Err(PristiError::DegenerateConfig(_))));
        let short = data.window_at(0, 6);
        assert!(matches!(
            service.submit(request(5, &short, 2)),
            Err(PristiError::ShapeMismatch { what: "window length", .. })
        ));
        // A healthy request still succeeds after the rejects.
        assert_eq!(service.submit(request(6, w, 2)).unwrap().n_samples(), 2);
    }

    // A degenerate service config is rejected at start.
    {
        let (_, trained) = trained_setup();
        assert!(matches!(
            ImputeService::start(trained, ServeConfig { max_batch_samples: 0, ..Default::default() }),
            Err(PristiError::DegenerateConfig(_))
        ));
    }
}

/// Concurrent requests spread across every solver family: coalescing keys on
/// the full sampler spec (checkpoint-independent), so mixed traffic splits
/// into per-spec micro-batches and every response is still bit-for-bit the
/// solo `impute` result for that request's RNG stream.
#[test]
fn mixed_solver_traffic_is_bitwise_deterministic() {
    let (data, trained) = trained_setup();
    let windows = data.windows(Split::Test, 12, 12);
    let base_seed = 55;
    let samplers = [
        Sampler::Ddpm,
        Sampler::Ddim { steps: 4, eta: 0.0 },
        Sampler::Pndm { steps: 4, order: 4 },
        Sampler::Refine { steps: 3, strength: 0.5 },
    ];

    let expected: Vec<Vec<Vec<u8>>> = (0..12u64)
        .map(|id| {
            let w = &windows[id as usize % windows.len()];
            let mut rng = request_rng(base_seed, id);
            let res = impute(
                &trained,
                w,
                &ImputeOptions {
                    n_samples: 1 + (id as usize % 3),
                    sampler: samplers[id as usize % samplers.len()],
                },
                &mut rng,
            )
            .unwrap();
            res.samples.iter().map(|s| s.to_bytes()).collect()
        })
        .collect();

    let service = Arc::new(
        ImputeService::start(
            trained,
            ServeConfig { base_seed, max_batch_samples: 8, ..Default::default() },
        )
        .unwrap(),
    );
    let handles: Vec<_> = (0..12u64)
        .map(|id| {
            let service = Arc::clone(&service);
            let w = windows[id as usize % windows.len()].clone();
            let sampler = samplers[id as usize % samplers.len()];
            std::thread::spawn(move || {
                let mut req = request(id, &w, 1 + (id as usize % 3));
                req.sampler = sampler;
                let res = service.submit(req).unwrap();
                (id, res.samples.iter().map(|s| s.to_bytes()).collect::<Vec<_>>())
            })
        })
        .collect();
    for h in handles {
        let (id, got) = h.join().unwrap();
        assert_eq!(
            got, expected[id as usize],
            "request {id}: mixed-solver batched result diverges from solo impute"
        );
    }
}

/// DDIM requests are served and batch among themselves.
#[test]
fn ddim_requests_round_trip_through_the_service() {
    let (data, trained) = trained_setup();
    let w = &data.windows(Split::Test, 12, 12)[0];
    let base_seed = 11;
    let sampler = Sampler::Ddim { steps: 4, eta: 0.5 };
    let expected = {
        let mut rng = request_rng(base_seed, 9);
        impute(&trained, w, &ImputeOptions { n_samples: 2, sampler }, &mut rng).unwrap()
    };
    let service =
        ImputeService::start(trained, ServeConfig { base_seed, ..Default::default() }).unwrap();
    let mut req = request(9, w, 2);
    req.sampler = sampler;
    let got = service.submit(req).unwrap();
    for (x, y) in expected.samples.iter().zip(&got.samples) {
        assert!(x.to_bytes() == y.to_bytes());
    }
}
