//! Streaming determinism contract: every revision a `StreamSession` emits
//! is bitwise identical to a cold full-window impute of the same window
//! with the same RNG stream; the JSONL engine's output bytes are invariant
//! to the worker count and reproduce exactly under tick-log replay; and
//! malformed lines become typed, line-numbered error responses.

use pristi_core::train::{train, TrainConfig};
use pristi_core::{impute, ImputeOptions, PristiConfig, PristiError, Sampler};
use st_data::dataset::Window;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_rand::{Rng, SeedableRng, StdRng};
use st_serve::{
    run_stream, stream_rng, StreamConfig, StreamServerConfig, StreamSession, Tick,
};
use st_tensor::NdArray;
use std::io::Cursor;
use std::sync::Arc;

const N: usize = 8;
const L: usize = 12;

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

fn trained_setup() -> pristi_core::TrainedModel {
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: N,
        n_days: 6,
        seed: 31,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 32);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 4,
        window_len: L,
        window_stride: L,
        seed: 33,
        ..Default::default()
    };
    train(&data, tiny_cfg(), &tc).unwrap()
}

/// A deterministic tick log: per-tick sensor columns with bursty gaps and
/// some fully-observed stretches (so both the impute and the skip path run).
fn tick_log(seed: u64, ticks: usize) -> Vec<Vec<Option<f32>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ticks)
        .map(|t| {
            // blocks of 4 fully-observed ticks → guaranteed skip ticks once
            // the whole horizon is gap-free
            let dense = t % 8 >= 4;
            (0..N)
                .map(|_| {
                    let v = 18.0 + (rng.random::<f32>() - 0.5) * 10.0;
                    if !dense && rng.random_bool(0.3) {
                        None
                    } else {
                        Some(v)
                    }
                })
                .collect()
        })
        .collect()
}

/// The cold reference for one tick: materialise the raw window the stream
/// has seen so far (pre-stream padding = unobserved zeros) and impute it
/// from scratch with the session's RNG stream for that revision.
fn cold_window(log: &[Vec<Option<f32>>], upto: usize) -> Window {
    let mut values = NdArray::zeros(&[N, L]);
    let mut observed = NdArray::zeros(&[N, L]);
    for (col_back, cells) in log[..=upto].iter().rev().take(L).enumerate() {
        let col = L - 1 - col_back;
        for (i, cell) in cells.iter().enumerate() {
            if let Some(v) = *cell {
                values.data_mut()[i * L + col] = v;
                observed.data_mut()[i * L + col] = 1.0;
            }
        }
    }
    Window { values, observed, eval: NdArray::zeros(&[N, L]), t_start: 0 }
}

/// T ticks through a `StreamSession` ≡ a cold full-window impute at every
/// step, bitwise — the incremental prior (re-interpolated columns, reused
/// `PriorCache`) is invisible in the output.
#[test]
fn stream_ticks_bitwise_match_cold_full_window_impute() {
    let trained = Arc::new(trained_setup());
    let cfg = StreamConfig {
        n_samples: 2,
        sampler: Sampler::Pndm { steps: 4, order: 4 },
        horizon: 4,
        base_seed: 9,
    };
    let session_id = 5u64;
    let mut session = StreamSession::new(Arc::clone(&trained), cfg, session_id).unwrap();
    let log = tick_log(1, 20);
    let (mut imputes, mut skips) = (0u64, 0u64);
    let mut last_watermark = 0u64;
    for (t, cells) in log.iter().enumerate() {
        let out = session.data_tick(cells).unwrap();
        assert_eq!(out.step, t as u64);
        assert!(out.watermark >= last_watermark, "watermark must be monotone");
        last_watermark = out.watermark;
        if !out.imputed {
            skips += 1;
            assert!(out.revisions.is_empty());
            continue;
        }
        // the cold path: fresh window, fresh prior, same RNG stream
        let mut rng = stream_rng(cfg.base_seed, session_id, imputes);
        imputes += 1;
        let cold = impute(
            &trained,
            &cold_window(&log, t),
            &ImputeOptions { n_samples: cfg.n_samples, sampler: cfg.sampler },
            &mut rng,
        )
        .unwrap();
        let (q05, q50, q95) = (cold.quantile(0.05), cold.quantile(0.5), cold.quantile(0.95));
        assert!(!out.revisions.is_empty());
        for r in &out.revisions {
            assert!(r.step >= out.watermark && r.step <= out.step, "revision outside horizon");
            let col = L - 1 - (out.step - r.step) as usize;
            let idx = r.node * L + col;
            assert_eq!(r.q05.to_bits(), q05.data()[idx].to_bits(), "tick {t} q05");
            assert_eq!(r.q50.to_bits(), q50.data()[idx].to_bits(), "tick {t} q50");
            assert_eq!(r.q95.to_bits(), q95.data()[idx].to_bits(), "tick {t} q95");
        }
    }
    assert_eq!(session.impute_seq(), imputes);
    assert!(imputes >= 3, "log should trigger several revisions, got {imputes}");
    assert!(skips >= 1, "log should skip at least one tick, got {skips}");
}

/// `reimpute` draws the next RNG stream over the unchanged window — reusing
/// the prior cache — and still matches a cold impute bitwise, twice in a
/// row.
#[test]
fn reimpute_reuses_prior_and_matches_cold() {
    let trained = Arc::new(trained_setup());
    let cfg = StreamConfig {
        n_samples: 2,
        sampler: Sampler::Refine { steps: 3, strength: 0.5 },
        horizon: 6,
        base_seed: 21,
    };
    let mut session = StreamSession::new(Arc::clone(&trained), cfg, 0).unwrap();
    let mut log = tick_log(7, 9);
    log.push(vec![None; N]); // guarantee open gaps at the newest step
    let mut seq = 0u64;
    for cells in &log {
        if session.data_tick(cells).unwrap().imputed {
            seq += 1;
        }
    }
    let window = cold_window(&log, log.len() - 1);
    // two consecutive reimputes: the first after a data tick may rebuild the
    // prior, the second definitely reuses it — both must match cold.
    for round in 0..2 {
        let out = session.reimpute().unwrap();
        assert!(out.imputed, "open gaps must exist in this log");
        let mut rng = stream_rng(cfg.base_seed, 0, seq);
        seq += 1;
        let cold = impute(
            &trained,
            &window,
            &ImputeOptions { n_samples: cfg.n_samples, sampler: cfg.sampler },
            &mut rng,
        )
        .unwrap();
        let q50 = cold.quantile(0.5);
        for r in &out.revisions {
            let col = L - 1 - (out.step - r.step) as usize;
            assert_eq!(
                r.q50.to_bits(),
                q50.data()[r.node * L + col].to_bits(),
                "reimpute round {round} diverges from cold"
            );
        }
    }
}

/// Replaying the same tick log through a fresh session reproduces every
/// output exactly.
#[test]
fn session_replay_is_bitwise_identical() {
    let trained = Arc::new(trained_setup());
    let cfg = StreamConfig { n_samples: 2, horizon: 3, base_seed: 4, ..Default::default() };
    let log = tick_log(3, 14);
    let run = |trained: &Arc<pristi_core::TrainedModel>| {
        let mut session = StreamSession::new(Arc::clone(trained), cfg, 8).unwrap();
        log.iter().map(|cells| session.data_tick(cells).unwrap()).collect::<Vec<_>>()
    };
    assert_eq!(run(&trained), run(&trained));
}

/// Build an interleaved multi-session JSONL log, with some malformed lines.
fn jsonl_log() -> String {
    let mut lines = Vec::new();
    let logs: Vec<Vec<Vec<Option<f32>>>> =
        (0..3).map(|s| tick_log(40 + s as u64, 8)).collect();
    let mut id = 0u64;
    for t in 0..8 {
        for (s, log) in logs.iter().enumerate() {
            id += 1;
            let cells = log[t]
                .iter()
                .map(|c| c.map_or("null".to_string(), |v| format!("{v}")))
                .collect::<Vec<_>>()
                .join(",");
            lines.push(format!("{{\"id\":{id},\"session\":{s},\"tick\":[{cells}]}}"));
        }
        if t == 3 {
            lines.push("this is not json".to_string());
            id += 1;
            lines.push(format!("{{\"id\":{id},\"session\":1,\"tick\":[1.0,2.0]}}")); // wrong N
            id += 1;
            lines.push(format!("{{\"id\":{id},\"session\":2,\"reimpute\":true}}"));
        }
    }
    lines.join("\n") + "\n"
}

/// Engine output bytes are invariant to the worker count and reproduce
/// exactly on replay — the reorder buffer keeps responses in input order
/// and sessions are sharded deterministically.
#[test]
fn engine_output_invariant_to_workers_and_replay() {
    let trained = Arc::new(trained_setup());
    let log = jsonl_log();
    let session = StreamConfig { n_samples: 2, horizon: 3, base_seed: 11, ..Default::default() };
    let mut outputs = Vec::new();
    let mut summaries = Vec::new();
    for workers in [1usize, 2, 2] {
        let cfg = StreamServerConfig { session, workers };
        let mut out = Vec::new();
        let summary =
            run_stream(Arc::clone(&trained), &cfg, Cursor::new(log.as_bytes()), &mut out).unwrap();
        outputs.push(String::from_utf8(out).unwrap());
        summaries.push(summary);
    }
    assert_eq!(outputs[0], outputs[1], "worker count changed output bytes");
    assert_eq!(outputs[1], outputs[2], "replay changed output bytes");
    assert_eq!(summaries[0], summaries[1]);
    let s = summaries[0];
    assert_eq!(s.errors, 2, "bad-json and wrong-N lines are errors");
    assert_eq!(s.ok, 25, "24 data ticks + 1 reimpute");
    assert!(s.imputes >= 1 && s.skips >= 1);
    assert_eq!(s.ok + s.errors, outputs[0].lines().count() as u64);
}

/// Malformed lines become the typed `{"id":..,"ok":false,"error":{kind,
/// detail,line}}` shape, with 1-based line numbers and the service error
/// kinds from `PristiError::kind`.
#[test]
fn error_lines_are_typed_and_line_numbered() {
    let trained = Arc::new(trained_setup());
    let cfg = StreamServerConfig {
        session: StreamConfig { n_samples: 2, ..Default::default() },
        workers: 1,
    };
    let log = "not json\n\
               {\"id\":1,\"tick\":[1,2]}\n\
               {\"id\":2,\"reimpute\":true}\n\
               {\"tick\":[1,2,3]}\n\
               {\"id\":3,\"tick\":[1,2],\"reimpute\":true}\n";
    let mut out = Vec::new();
    let summary =
        run_stream(Arc::clone(&trained), &cfg, Cursor::new(log.as_bytes()), &mut out).unwrap();
    assert_eq!(summary.errors, 5);
    assert_eq!(summary.ok, 0);
    let out = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 5);
    // line 1: not JSON at all
    assert!(lines[0].contains("\"kind\":\"bad_json\"") && lines[0].contains("\"line\":1"));
    assert!(lines[0].contains("\"id\":null"));
    // line 2: parses, but the cell count disagrees with the model
    assert!(lines[1].contains("\"kind\":\"shape_mismatch\"") && lines[1].contains("\"line\":2"));
    assert!(lines[1].contains("\"id\":1"));
    // line 3: reimpute before any data tick
    assert!(lines[2].contains("\"kind\":\"degenerate_config\"") && lines[2].contains("\"line\":3"));
    // line 4: missing id
    assert!(lines[3].contains("\"kind\":\"bad_request\"") && lines[3].contains("\"id\":null"));
    // line 5: tick and reimpute are mutually exclusive
    assert!(lines[4].contains("\"kind\":\"bad_request\"") && lines[4].contains("\"line\":5"));
}

/// Session construction validates its configuration with typed errors.
#[test]
fn degenerate_stream_configs_are_typed_errors() {
    let trained = Arc::new(trained_setup());
    for horizon in [0usize, L + 1] {
        let err = StreamSession::new(
            Arc::clone(&trained),
            StreamConfig { horizon, ..Default::default() },
            0,
        )
        .err()
        .unwrap();
        assert!(matches!(err, PristiError::DegenerateConfig(_)), "horizon {horizon}");
    }
    let err = StreamSession::new(
        Arc::clone(&trained),
        StreamConfig { n_samples: 0, ..Default::default() },
        0,
    )
    .err()
    .unwrap();
    assert!(matches!(err, PristiError::DegenerateConfig(_)));
    let mut session = StreamSession::new(
        Arc::clone(&trained),
        StreamConfig { n_samples: 2, ..Default::default() },
        0,
    )
    .unwrap();
    let err = session.tick(&Tick::Data(vec![None; N + 1])).unwrap_err();
    assert!(matches!(err, PristiError::ShapeMismatch { .. }));
}
