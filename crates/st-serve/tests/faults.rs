//! Fault-injection suite: every way the service can fail under concurrent
//! load — backpressure races, graceful drain, a panicking denoise step — must
//! surface as a typed [`PristiError`], never a hang or an escaped panic.

use pristi_core::train::{train, TrainConfig};
use pristi_core::{PristiConfig, PristiError, Sampler};
use st_data::dataset::Window;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_serve::{AdmissionTier, ImputeRequest, ImputeService, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

fn tiny_cfg() -> PristiConfig {
    let mut c = PristiConfig::small();
    c.d_model = 8;
    c.heads = 2;
    c.layers = 1;
    c.t_steps = 8;
    c.time_emb_dim = 8;
    c.node_emb_dim = 4;
    c.step_emb_dim = 8;
    c.virtual_nodes = 4;
    c.adaptive_dim = 2;
    c
}

fn trained_setup() -> (st_data::SpatioTemporalDataset, pristi_core::TrainedModel) {
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 6,
        seed: 131,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 132);
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 133,
        ..Default::default()
    };
    let trained = train(&data, tiny_cfg(), &tc).unwrap();
    (data, trained)
}

fn request(id: u64, window: &Window) -> ImputeRequest {
    ImputeRequest {
        id,
        window: window.clone(),
        n_samples: 1,
        sampler: Sampler::Ddim { steps: 2, eta: 0.0 },
        tier: AdmissionTier::Interactive,
        deadline: None,
    }
}

/// Many clients racing a tiny queue: every submission resolves to exactly one
/// of the typed outcomes (success, QueueFull, Timeout), nothing hangs, and
/// the service still serves after the storm.
#[test]
fn concurrent_clients_race_backpressure_without_hangs() {
    let (data, trained) = trained_setup();
    let w = data.window_at(0, 12);
    let service = Arc::new(
        ImputeService::start(
            trained,
            ServeConfig {
                queue_capacity: 2,
                max_batch_samples: 4,
                // Tight-but-real deadline so expiry is *possible* while
                // loaded, exercising the timeout path alongside QueueFull.
                default_deadline: Duration::from_millis(200),
                // Hold each batch long enough that the 16-client burst
                // reliably overflows the 2-slot queue.
                fault_hook: Some(Arc::new(|_ids: &[u64]| {
                    std::thread::sleep(Duration::from_millis(30));
                })),
                ..Default::default()
            },
        )
        .unwrap(),
    );

    let handles: Vec<_> = (0..16u64)
        .map(|id| {
            let service = Arc::clone(&service);
            let w = w.clone();
            std::thread::spawn(move || service.submit(request(id, &w)))
        })
        .collect();
    let (mut ok, mut full, mut timeout) = (0, 0, 0);
    for h in handles {
        match h.join().expect("client must not panic") {
            Ok(res) => {
                assert_eq!(res.n_samples(), 1);
                ok += 1;
            }
            Err(PristiError::QueueFull { capacity: 2, shed: false, depth }) => {
                assert!(depth >= 2, "hard-capacity rejects report the observed depth");
                full += 1;
            }
            Err(PristiError::Timeout { .. }) => timeout += 1,
            Err(other) => panic!("unexpected outcome under load: {other}"),
        }
    }
    assert_eq!(ok + full + timeout, 16);
    assert!(ok >= 1, "the closed set of clients cannot be starved entirely");
    assert!(full >= 1, "16 clients against capacity 2 must overflow");

    // The storm leaves no residue: a fresh request is served normally.
    assert!(service.submit(request(99, &w)).is_ok());
}

/// A request racing a graceful drain gets a typed error (or its result),
/// never a hang: `shutdown` is callable through `&self` from another thread
/// while submitters are in flight.
#[test]
fn request_during_drain_gets_typed_error() {
    let (data, trained) = trained_setup();
    let w = data.window_at(0, 12);
    let service = Arc::new(ImputeService::start(trained, ServeConfig::default()).unwrap());

    let submitters: Vec<_> = (0..8u64)
        .map(|id| {
            let service = Arc::clone(&service);
            let w = w.clone();
            std::thread::spawn(move || service.submit(request(id, &w)))
        })
        .collect();
    let stopper = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.shutdown())
    };
    for h in submitters {
        match h.join().expect("submitter must not panic") {
            Ok(_) => {}
            Err(PristiError::ServiceStopped) => {}
            Err(other) => panic!("drain race must yield ServiceStopped, got: {other}"),
        }
    }
    stopper.join().expect("shutdown must not panic");
    // After the drain every further submission is rejected, typed.
    assert!(matches!(service.submit(request(100, &w)), Err(PristiError::ServiceStopped)));
}

/// A panicking denoise step (injected via the test-only fault hook) is
/// contained: the batch and everything queued behind it get typed
/// [`PristiError::WorkerPanicked`] errors carrying the panic message, later
/// submissions are rejected, and `shutdown` still joins every worker.
#[test]
fn panicking_worker_is_contained_with_typed_errors() {
    let (data, trained) = trained_setup();
    let w = data.window_at(0, 12);
    let service = Arc::new(
        ImputeService::start(
            trained,
            ServeConfig {
                workers: 2,
                max_batch_samples: 1, // no coalescing: the poison rides alone
                fault_hook: Some(Arc::new(|ids: &[u64]| {
                    if ids.contains(&666) {
                        panic!("injected denoise fault");
                    }
                })),
                ..Default::default()
            },
        )
        .unwrap(),
    );

    // Healthy traffic first: the hook is inert for other ids.
    assert!(service.submit(request(1, &w)).is_ok());

    let clients: Vec<_> = [666u64, 2, 3, 4]
        .into_iter()
        .map(|id| {
            let service = Arc::clone(&service);
            let w = w.clone();
            std::thread::spawn(move || (id, service.submit(request(id, &w))))
        })
        .collect();
    let mut poisoned_errors = 0;
    for h in clients {
        let (id, outcome) = h.join().expect("client must not panic");
        match outcome {
            Ok(_) => assert_ne!(id, 666, "the poisoned request cannot succeed"),
            Err(PristiError::WorkerPanicked(msg)) => {
                if id == 666 {
                    assert!(
                        msg.contains("injected denoise fault"),
                        "panic payload must reach the typed error, got: {msg}"
                    );
                }
                poisoned_errors += 1;
            }
            Err(PristiError::ServiceStopped) => {}
            Err(other) => panic!("request {id}: unexpected outcome {other}"),
        }
    }
    assert!(poisoned_errors >= 1, "at least the poisoned request fails typed");

    // The service is poisoned: new submissions are rejected, typed.
    match service.submit(request(7, &w)) {
        Err(PristiError::ServiceStopped) | Err(PristiError::WorkerPanicked(_)) => {}
        other => panic!("poisoned service must reject, got {other:?}"),
    }
    // And shutdown joins every worker instead of hanging on the dead one.
    service.shutdown();
}
