//! Checkpoint corruption fuzzing: ~200 seeded single-bit flips and
//! truncations of a valid `st-ckpt/1` byte image. Every corrupted image must
//! fail to load with a typed [`PristiError`] — never a panic, and never a
//! silent success (the FNV-1a payload checksum plus header validation make
//! any single-bit flip detectable).

use pristi_core::train::{train, TrainConfig};
use pristi_core::PristiConfig;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_rand::{Rng, SeedableRng, StdRng};
use st_serve::{checkpoint_from_bytes, checkpoint_to_bytes};

fn checkpoint_bytes() -> Vec<u8> {
    let mut cfg = PristiConfig::small();
    cfg.d_model = 8;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.t_steps = 8;
    cfg.time_emb_dim = 8;
    cfg.node_emb_dim = 4;
    cfg.step_emb_dim = 8;
    cfg.virtual_nodes = 4;
    cfg.adaptive_dim = 2;
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 6,
        seed: 211,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 212);
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 213,
        ..Default::default()
    };
    checkpoint_to_bytes(&train(&data, cfg, &tc).unwrap())
}

/// Load a (possibly corrupt) image inside an unwind boundary so a panic
/// fails the test with the offending case, not an opaque abort.
fn must_fail_typed(bytes: &[u8], what: &str) {
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| checkpoint_from_bytes(bytes)));
    match outcome {
        Ok(Err(_)) => {} // typed PristiError — the only acceptable outcome
        Ok(Ok(_)) => panic!("{what}: corrupt checkpoint loaded silently"),
        Err(_) => panic!("{what}: checkpoint_from_bytes panicked"),
    }
}

#[test]
fn single_bit_flips_always_fail_typed() {
    let valid = checkpoint_bytes();
    assert!(checkpoint_from_bytes(&valid).is_ok(), "baseline image must load");

    let mut rng = StdRng::seed_from_u64(0xF1_1C);
    for case in 0..150 {
        let byte = rng.random_range(0..valid.len());
        let bit = rng.random_range(0..8u32);
        let mut corrupt = valid.clone();
        corrupt[byte] ^= 1 << bit;
        must_fail_typed(&corrupt, &format!("case {case}: bit {bit} of byte {byte}"));
    }
}

#[test]
fn truncations_always_fail_typed() {
    let valid = checkpoint_bytes();
    let mut rng = StdRng::seed_from_u64(0x7A_11);
    for case in 0..50 {
        let keep = rng.random_range(0..valid.len());
        must_fail_typed(&valid[..keep], &format!("case {case}: truncated to {keep} bytes"));
    }
    // The degenerate edges, explicitly.
    must_fail_typed(&[], "empty image");
    must_fail_typed(&valid[..valid.len() - 1], "one byte short");
}
