//! A micro-batching imputation service around one loaded [`TrainedModel`].
//!
//! Architecture: callers [`ImputeService::submit`] requests into a bounded
//! queue; a single worker thread owns the model, pops runs of queued
//! requests that share a sampler, and coalesces them into one
//! [`pristi_core::impute_batch`] call — one `predict_eps_eval` per denoise
//! step for the whole micro-batch instead of one per request.
//!
//! **Batching never changes results.** Every request's randomness comes from
//! a private RNG stream keyed by its [`ImputeRequest::id`] (and the service's
//! `base_seed`), and the batched engine guarantees per-request slices are
//! bitwise identical to solo calls. A request is answered with the same bytes
//! whether it rode alone, shared a batch, or hit a different queue ordering —
//! `tests/service.rs` pins this under concurrent load.
//!
//! Requests carry deadlines: a request still queued past its deadline is
//! answered with [`PristiError::Timeout`] instead of occupying batch space.
//! Backpressure is explicit — a full queue fails fast with
//! [`PristiError::QueueFull`].
//!
//! Telemetry (`serve.*`, via `st-obs`): `serve.queue_depth` gauge,
//! `serve.batch_requests` / `serve.batch_samples` occupancy histograms, and a
//! `serve.latency_ms` histogram (p50/p95 come out of the st-obs histogram
//! summary at flush).

use pristi_core::error::{PristiError, Result};
use pristi_core::train::TrainedModel;
use pristi_core::{impute_batch, BatchItem, ImputationResult, Sampler};
use st_data::dataset::Window;
use st_rand::{SeedableRng, StdRng};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum queued (not yet running) requests before submissions fail
    /// fast with [`PristiError::QueueFull`].
    pub queue_capacity: usize,
    /// Cap on the coalesced ensemble axis `S_total` of one micro-batch.
    pub max_batch_samples: usize,
    /// Deadline for requests that do not set their own.
    pub default_deadline: Duration,
    /// Mixed into every request's RNG stream; two services with the same
    /// `base_seed` and model answer the same request identically.
    pub base_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch_samples: 32,
            default_deadline: Duration::from_secs(30),
            base_seed: 0,
        }
    }
}

/// One imputation request.
#[derive(Debug, Clone)]
pub struct ImputeRequest {
    /// Keys this request's RNG stream: same `(base_seed, id)` → same noise,
    /// and therefore the same samples, regardless of batching.
    pub id: u64,
    /// The window to impute (must match the model's `[N, L]`).
    pub window: Window,
    /// Ensemble size.
    pub n_samples: usize,
    /// Reverse-process sampler; requests only coalesce with same-sampler
    /// neighbours.
    pub sampler: Sampler,
    /// Per-request deadline override.
    pub deadline: Option<Duration>,
}

/// The RNG stream a request with `id` gets under `base_seed` — SplitMix-style
/// multiplicative mixing so adjacent ids land far apart in seed space.
pub fn request_rng(base_seed: u64, id: u64) -> StdRng {
    StdRng::seed_from_u64(base_seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

struct Pending {
    req: ImputeRequest,
    enqueued: Instant,
    tx: mpsc::Sender<Result<ImputationResult>>,
}

struct QueueState {
    items: VecDeque<Pending>,
    stopping: bool,
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    notify: Condvar,
    // Model dims cached for submit-time validation (the model itself lives
    // on the worker thread).
    n_nodes: usize,
    window_len: usize,
}

/// A running imputation service; dropping it drains the queue and joins the
/// worker.
///
/// # Example
///
/// Start a service around a (tiny, 1-epoch) trained model and answer one
/// request; concurrent [`submit`](Self::submit) calls from other threads
/// would coalesce into micro-batches without changing any response:
///
/// ```
/// use pristi_core::train::{train, TrainConfig};
/// use pristi_core::{PristiConfig, Sampler};
/// use st_data::generators::{generate_air_quality, AirQualityConfig};
/// use st_serve::{ImputeRequest, ImputeService, ServeConfig};
///
/// # fn main() -> pristi_core::Result<()> {
/// let data = generate_air_quality(&AirQualityConfig {
///     n_nodes: 8,
///     n_days: 4,
///     ..Default::default()
/// });
/// # let mut cfg = PristiConfig::small();
/// # cfg.d_model = 8;
/// # cfg.heads = 2;
/// # cfg.layers = 1;
/// # cfg.t_steps = 8;
/// # cfg.time_emb_dim = 8;
/// # cfg.node_emb_dim = 4;
/// # cfg.step_emb_dim = 8;
/// # cfg.virtual_nodes = 4;
/// # cfg.adaptive_dim = 2;
/// let tc = TrainConfig {
///     epochs: 1,
///     batch_size: 4,
///     window_len: 12,
///     window_stride: 12,
///     ..Default::default()
/// };
/// let trained = train(&data, cfg, &tc)?;
///
/// let service = ImputeService::start(trained, ServeConfig::default())?;
/// let result = service.submit(ImputeRequest {
///     id: 1,
///     window: data.window_at(0, 12),
///     n_samples: 2,
///     // DDIM with few steps is the low-latency option for serving.
///     sampler: Sampler::Ddim { steps: 2, eta: 0.0 },
///     deadline: None,
/// })?;
/// assert_eq!(result.n_samples(), 2);
/// # Ok(())
/// # }
/// ```
pub struct ImputeService {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl ImputeService {
    /// Start a service around a loaded model.
    ///
    /// Returns [`PristiError::DegenerateConfig`] for a zero
    /// `max_batch_samples` (a `queue_capacity` of zero is allowed — such a
    /// service rejects every request, which the backpressure tests rely on).
    pub fn start(trained: TrainedModel, cfg: ServeConfig) -> Result<Self> {
        if cfg.max_batch_samples < 1 {
            return Err(PristiError::DegenerateConfig(
                "service needs max_batch_samples >= 1".into(),
            ));
        }
        let shared = Arc::new(Shared {
            n_nodes: trained.model.n_nodes(),
            window_len: trained.model.window_len(),
            cfg,
            queue: Mutex::new(QueueState { items: VecDeque::new(), stopping: false }),
            notify: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("st-serve-worker".into())
            .spawn(move || worker_loop(&worker_shared, &trained))
            .map_err(|e| PristiError::Io(format!("cannot spawn service worker: {e}")))?;
        Ok(Self { shared, worker: Some(worker) })
    }

    /// Submit a request and block until its result (or typed failure).
    ///
    /// Malformed requests fail fast without reaching the queue:
    /// [`PristiError::ShapeMismatch`] for a window that disagrees with the
    /// model, [`PristiError::DegenerateConfig`] for a zero ensemble or a
    /// zero-step DDIM. A full queue is [`PristiError::QueueFull`]; a request
    /// that out-waits its deadline is [`PristiError::Timeout`].
    pub fn submit(&self, req: ImputeRequest) -> Result<ImputationResult> {
        self.validate(&req)?;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.stopping {
                return Err(PristiError::ServiceStopped);
            }
            if q.items.len() >= self.shared.cfg.queue_capacity {
                return Err(PristiError::QueueFull { capacity: self.shared.cfg.queue_capacity });
            }
            q.items.push_back(Pending { req, enqueued: Instant::now(), tx });
            st_obs::gauge_set("serve.queue_depth", q.items.len() as f64);
        }
        self.shared.notify.notify_one();
        rx.recv().map_err(|_| PristiError::ServiceStopped)?
    }

    /// Submit-time validation, so one malformed request can never poison a
    /// coalesced batch.
    fn validate(&self, req: &ImputeRequest) -> Result<()> {
        if req.n_samples < 1 {
            return Err(PristiError::DegenerateConfig(
                "need at least one sample per request".into(),
            ));
        }
        if let Sampler::Ddim { steps, eta } = req.sampler {
            if steps < 1 {
                return Err(PristiError::DegenerateConfig("DDIM needs at least one step".into()));
            }
            if !eta.is_finite() || eta < 0.0 {
                return Err(PristiError::DegenerateConfig(format!(
                    "DDIM eta must be finite and non-negative, got {eta}"
                )));
            }
        }
        if req.window.n_nodes() != self.shared.n_nodes {
            return Err(PristiError::ShapeMismatch {
                what: "window node count",
                expected: vec![self.shared.n_nodes],
                got: vec![req.window.n_nodes()],
            });
        }
        if req.window.len() != self.shared.window_len {
            return Err(PristiError::ShapeMismatch {
                what: "window length",
                expected: vec![self.shared.window_len],
                got: vec![req.window.len()],
            });
        }
        Ok(())
    }

    /// Stop accepting new requests, answer everything already queued, and
    /// join the worker. Called automatically on drop.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.stopping = true;
        }
        self.shared.notify.notify_all();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ImputeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, trained: &TrainedModel) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.items.is_empty() {
                    break;
                }
                if q.stopping {
                    return;
                }
                q = shared.notify.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            // Coalesce the longest same-sampler prefix that fits the sample
            // budget. FIFO order: requests are never reordered, so a request
            // is only ever delayed by work already ahead of it.
            let first = q.items.pop_front().expect("loop above ensures non-empty");
            let sampler = first.req.sampler;
            let mut total = first.req.n_samples;
            let mut batch = vec![first];
            while let Some(next) = q.items.front() {
                if next.req.sampler != sampler
                    || total + next.req.n_samples > shared.cfg.max_batch_samples
                {
                    break;
                }
                total += next.req.n_samples;
                batch.push(q.items.pop_front().expect("front() just returned Some"));
            }
            st_obs::gauge_set("serve.queue_depth", q.items.len() as f64);
            batch
        };
        serve_batch(shared, trained, batch);
    }
}

fn serve_batch(shared: &Shared, trained: &TrainedModel, batch: Vec<Pending>) {
    // Expired requests get a typed Timeout instead of batch space.
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        let deadline = p.req.deadline.unwrap_or(shared.cfg.default_deadline);
        let waited = p.enqueued.elapsed();
        if waited > deadline {
            let _ = p.tx.send(Err(PristiError::Timeout {
                waited_ms: waited.as_millis() as u64,
                deadline_ms: deadline.as_millis() as u64,
            }));
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }

    let sampler = live[0].req.sampler;
    let total_samples: usize = live.iter().map(|p| p.req.n_samples).sum();
    let _span = st_obs::span!(
        "serve_batch",
        requests = live.len() as u64,
        samples = total_samples as u64,
    );
    st_obs::hist_record("serve.batch_requests", live.len() as f64);
    st_obs::hist_record("serve.batch_samples", total_samples as f64);

    let mut items: Vec<BatchItem<'_>> = live
        .iter()
        .map(|p| BatchItem {
            window: &p.req.window,
            n_samples: p.req.n_samples,
            rng: request_rng(shared.cfg.base_seed, p.req.id),
        })
        .collect();
    match impute_batch(trained, &mut items, sampler) {
        Ok(results) => {
            for (p, res) in live.iter().zip(results) {
                st_obs::hist_record(
                    "serve.latency_ms",
                    p.enqueued.elapsed().as_secs_f64() * 1e3,
                );
                let _ = p.tx.send(Ok(res));
            }
        }
        // Submit-time validation makes this unreachable in practice, but a
        // failed batch must still answer every member.
        Err(e) => {
            for p in &live {
                let _ = p.tx.send(Err(e.clone()));
            }
        }
    }
}
