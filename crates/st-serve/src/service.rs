//! A micro-batching, multi-worker imputation service around one loaded
//! [`TrainedModel`].
//!
//! Architecture: callers [`ImputeService::submit`] requests into a bounded
//! queue; a **replica pool** of `workers` threads shares the model through an
//! `Arc` — each worker pops runs of queued requests that share a sampler and
//! coalesces them into one [`pristi_core::impute_batch`] call (one
//! `predict_eps_eval` — and one [`pristi_core::PriorCache`] build — per
//! coalesced batch instead of one per request).
//!
//! **Neither batching nor the worker count changes results.** Every request's
//! randomness comes from a private RNG stream keyed by its
//! [`ImputeRequest::id`] (and the service's `base_seed`), and the batched
//! engine guarantees per-request slices are bitwise identical to solo calls.
//! A request is answered with the same bytes whether it rode alone, shared a
//! batch, hit a different queue ordering, or was served by worker 0 of 1 or
//! worker 7 of 8 — `tests/service.rs` and `tests/workers.rs` pin this under
//! concurrent load.
//!
//! Admission control stacks two tiers on the bounded queue:
//!
//! * at hard capacity every submission fails fast with
//!   [`PristiError::QueueFull`] (`shed: false`);
//! * from [`ServeConfig::shed_threshold`] queued requests upward,
//!   [`AdmissionTier::BestEffort`] submissions are *shed* —
//!   [`PristiError::QueueFull`] with `shed: true` — so latency-sensitive
//!   [`AdmissionTier::Interactive`] traffic keeps the remaining headroom.
//!
//! Requests carry deadlines (defaulted per tier): a request still queued past
//! its deadline is answered with [`PristiError::Timeout`] instead of
//! occupying batch space. A worker that panics mid-batch (a model bug, or the
//! test-only [`ServeConfig::fault_hook`]) is **contained**: the batch and
//! everything still queued get typed [`PristiError::WorkerPanicked`] errors,
//! the service drains, and [`ImputeService::shutdown`] still joins.
//!
//! Telemetry (`serve.*`, via `st-obs`): `serve.queue_depth` gauge,
//! `serve.batch_requests` / `serve.batch_samples` occupancy histograms, a
//! `serve.latency_ms` histogram (p50/p99/p999 come out of the st-obs
//! histogram summary at flush), `serve.shed` / `serve.timeout` counters, and
//! per-worker `serve.worker{i}.batches` counters plus
//! `serve.worker{i}.latency_ms` histograms. All `serve.*` values are
//! scheduling-dependent, so [`st_obs::strip_timing`] drops them like the
//! `pool.*` activity metrics.

use pristi_core::error::{PristiError, Result};
use pristi_core::train::TrainedModel;
use pristi_core::{impute_batch, BatchItem, ImputationResult, Sampler};
use st_data::dataset::Window;
use st_rand::{SeedableRng, StdRng};
use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission-control tier of a request.
///
/// Tiers only affect *admission* (when a submission is rejected) and the
/// default deadline — never the imputed values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionTier {
    /// Latency-sensitive traffic: admitted until the queue is at hard
    /// capacity, with the shorter [`ServeConfig::default_deadline`].
    #[default]
    Interactive,
    /// Shed-able traffic (backfills, prefetches): rejected with
    /// [`PristiError::QueueFull`]`{ shed: true }` as soon as the queue depth
    /// reaches [`ServeConfig::shed_threshold`], and given the longer
    /// [`ServeConfig::best_effort_deadline`] when admitted.
    BestEffort,
}

/// Test-only hook a worker runs just before imputing a coalesced batch,
/// receiving the batch's request ids. The fault-injection suite uses it to
/// simulate a panicking denoise step; `None` (the default) costs nothing.
pub type FaultHook = Arc<dyn Fn(&[u64]) + Send + Sync>;

/// Service tuning knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Maximum queued (not yet running) requests before submissions fail
    /// fast with [`PristiError::QueueFull`] (`shed: false`).
    pub queue_capacity: usize,
    /// Queue depth at which [`AdmissionTier::BestEffort`] submissions start
    /// being shed ([`PristiError::QueueFull`] with `shed: true`). Defaults to
    /// `queue_capacity`, i.e. shedding disabled — the hard-capacity check
    /// always fires first.
    pub shed_threshold: usize,
    /// Worker threads in the replica pool. Every worker serves batches from
    /// the shared queue against the same `Arc`-shared model; results are
    /// bitwise independent of this number.
    pub workers: usize,
    /// Cap on the coalesced ensemble axis `S_total` of one micro-batch.
    pub max_batch_samples: usize,
    /// Deadline for [`AdmissionTier::Interactive`] requests that do not set
    /// their own.
    pub default_deadline: Duration,
    /// Deadline for [`AdmissionTier::BestEffort`] requests that do not set
    /// their own.
    pub best_effort_deadline: Duration,
    /// Mixed into every request's RNG stream; two services with the same
    /// `base_seed` and model answer the same request identically.
    pub base_seed: u64,
    /// Test-only fault injection (see [`FaultHook`]). Leave `None` outside
    /// the fault-injection suite.
    pub fault_hook: Option<FaultHook>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            shed_threshold: 64,
            workers: 1,
            max_batch_samples: 32,
            default_deadline: Duration::from_secs(30),
            best_effort_deadline: Duration::from_secs(120),
            base_seed: 0,
            fault_hook: None,
        }
    }
}

impl fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeConfig")
            .field("queue_capacity", &self.queue_capacity)
            .field("shed_threshold", &self.shed_threshold)
            .field("workers", &self.workers)
            .field("max_batch_samples", &self.max_batch_samples)
            .field("default_deadline", &self.default_deadline)
            .field("best_effort_deadline", &self.best_effort_deadline)
            .field("base_seed", &self.base_seed)
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

/// One imputation request.
#[derive(Debug, Clone)]
pub struct ImputeRequest {
    /// Keys this request's RNG stream: same `(base_seed, id)` → same noise,
    /// and therefore the same samples, regardless of batching, queue order,
    /// or which worker serves it.
    pub id: u64,
    /// The window to impute (must match the model's `[N, L]`).
    pub window: Window,
    /// Ensemble size.
    pub n_samples: usize,
    /// Reverse-process sampler; requests only coalesce with same-sampler
    /// neighbours.
    pub sampler: Sampler,
    /// Admission tier (see [`AdmissionTier`]); affects shedding and the
    /// default deadline only, never the values.
    pub tier: AdmissionTier,
    /// Per-request deadline override.
    pub deadline: Option<Duration>,
}

/// The RNG stream a request with `id` gets under `base_seed` — SplitMix-style
/// multiplicative mixing so adjacent ids land far apart in seed space.
/// Distinct ids yield disjoint streams (`tests/workers.rs` pins a sampled
/// prefix of that property).
pub fn request_rng(base_seed: u64, id: u64) -> StdRng {
    StdRng::seed_from_u64(base_seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

struct Pending {
    req: ImputeRequest,
    enqueued: Instant,
    /// Request-scoped trace id, allocated at submission; `trace` events link
    /// it to the coalesced batch the request was ultimately served in.
    trace: u64,
    tx: mpsc::Sender<Result<ImputationResult>>,
}

struct QueueState {
    items: VecDeque<Pending>,
    stopping: bool,
    /// Set when a worker panicked: the queue is being drained with typed
    /// errors and no new work is accepted.
    poisoned: bool,
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    notify: Condvar,
    // Model dims cached for submit-time validation (the model itself is
    // shared by the worker pool).
    n_nodes: usize,
    window_len: usize,
}

/// Per-worker metric names must be `&'static str` for the st-obs recorder;
/// workers beyond this table share the last slot (the aggregate `serve.*`
/// metrics stay exact regardless).
const WORKER_BATCH_COUNTERS: [&str; 8] = [
    "serve.worker0.batches",
    "serve.worker1.batches",
    "serve.worker2.batches",
    "serve.worker3.batches",
    "serve.worker4.batches",
    "serve.worker5.batches",
    "serve.worker6.batches",
    "serve.worker7.batches",
];
const WORKER_LATENCY_HISTS: [&str; 8] = [
    "serve.worker0.latency_ms",
    "serve.worker1.latency_ms",
    "serve.worker2.latency_ms",
    "serve.worker3.latency_ms",
    "serve.worker4.latency_ms",
    "serve.worker5.latency_ms",
    "serve.worker6.latency_ms",
    "serve.worker7.latency_ms",
];

/// A running imputation service; dropping it drains the queue and joins the
/// worker pool.
///
/// # Example
///
/// Start a service around a (tiny, 1-epoch) trained model and answer one
/// request; concurrent [`submit`](Self::submit) calls from other threads
/// would coalesce into micro-batches — and spread over the worker pool —
/// without changing any response:
///
/// ```
/// use pristi_core::train::{train, TrainConfig};
/// use pristi_core::{PristiConfig, Sampler};
/// use st_data::generators::{generate_air_quality, AirQualityConfig};
/// use st_serve::{AdmissionTier, ImputeRequest, ImputeService, ServeConfig};
///
/// # fn main() -> pristi_core::Result<()> {
/// let data = generate_air_quality(&AirQualityConfig {
///     n_nodes: 8,
///     n_days: 4,
///     ..Default::default()
/// });
/// # let mut cfg = PristiConfig::small();
/// # cfg.d_model = 8;
/// # cfg.heads = 2;
/// # cfg.layers = 1;
/// # cfg.t_steps = 8;
/// # cfg.time_emb_dim = 8;
/// # cfg.node_emb_dim = 4;
/// # cfg.step_emb_dim = 8;
/// # cfg.virtual_nodes = 4;
/// # cfg.adaptive_dim = 2;
/// let tc = TrainConfig {
///     epochs: 1,
///     batch_size: 4,
///     window_len: 12,
///     window_stride: 12,
///     ..Default::default()
/// };
/// let trained = train(&data, cfg, &tc)?;
///
/// let service = ImputeService::start(
///     trained,
///     ServeConfig { workers: 2, ..ServeConfig::default() },
/// )?;
/// let result = service.submit(ImputeRequest {
///     id: 1,
///     window: data.window_at(0, 12),
///     n_samples: 2,
///     // DDIM with few steps is the low-latency option for serving.
///     sampler: Sampler::Ddim { steps: 2, eta: 0.0 },
///     tier: AdmissionTier::Interactive,
///     deadline: None,
/// })?;
/// assert_eq!(result.n_samples(), 2);
/// # Ok(())
/// # }
/// ```
pub struct ImputeService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ImputeService {
    /// Start a service around a loaded model.
    ///
    /// Returns [`PristiError::DegenerateConfig`] for a zero
    /// `max_batch_samples` or a zero `workers` (a `queue_capacity` of zero is
    /// allowed — such a service rejects every request, which the backpressure
    /// tests rely on; a `shed_threshold` above `queue_capacity` is also
    /// allowed and simply never sheds).
    pub fn start(trained: TrainedModel, cfg: ServeConfig) -> Result<Self> {
        if cfg.max_batch_samples < 1 {
            return Err(PristiError::DegenerateConfig(
                "service needs max_batch_samples >= 1".into(),
            ));
        }
        if cfg.workers < 1 {
            return Err(PristiError::DegenerateConfig(
                "service needs at least one worker".into(),
            ));
        }
        let n_workers = cfg.workers;
        let shared = Arc::new(Shared {
            n_nodes: trained.model.n_nodes(),
            window_len: trained.model.window_len(),
            cfg,
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                stopping: false,
                poisoned: false,
            }),
            notify: Condvar::new(),
        });
        let trained = Arc::new(trained);
        let mut workers = Vec::with_capacity(n_workers);
        for widx in 0..n_workers {
            let worker_shared = Arc::clone(&shared);
            let worker_model = Arc::clone(&trained);
            let handle = std::thread::Builder::new()
                .name(format!("st-serve-worker-{widx}"))
                .spawn(move || worker_loop(&worker_shared, &worker_model, widx))
                .map_err(|e| PristiError::Io(format!("cannot spawn service worker: {e}")))?;
            workers.push(handle);
        }
        st_obs::gauge_set("serve.workers", n_workers as f64);
        Ok(Self { shared, workers: Mutex::new(workers) })
    }

    /// Submit a request and block until its result (or typed failure).
    ///
    /// Malformed requests fail fast without reaching the queue:
    /// [`PristiError::ShapeMismatch`] for a window that disagrees with the
    /// model, [`PristiError::DegenerateConfig`] for a zero ensemble or a
    /// zero-step DDIM. Admission rejections are [`PristiError::QueueFull`]
    /// (`shed` distinguishes load-shedding from hard capacity); a request
    /// that out-waits its deadline is [`PristiError::Timeout`]; a request
    /// arriving during drain is [`PristiError::ServiceStopped`].
    pub fn submit(&self, req: ImputeRequest) -> Result<ImputationResult> {
        self.validate(&req)?;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.stopping {
                return Err(PristiError::ServiceStopped);
            }
            let depth = q.items.len();
            if depth >= self.shared.cfg.queue_capacity {
                return Err(PristiError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                    depth,
                    shed: false,
                });
            }
            if req.tier == AdmissionTier::BestEffort && depth >= self.shared.cfg.shed_threshold {
                st_obs::counter_add("serve.shed", 1.0);
                return Err(PristiError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                    depth,
                    shed: true,
                });
            }
            q.items.push_back(Pending {
                req,
                enqueued: Instant::now(),
                trace: st_obs::next_trace_id(),
                tx,
            });
            st_obs::gauge_set("serve.queue_depth", q.items.len() as f64);
        }
        self.shared.notify.notify_one();
        rx.recv().map_err(|_| PristiError::ServiceStopped)?
    }

    /// Submit-time validation, so one malformed request can never poison a
    /// coalesced batch.
    fn validate(&self, req: &ImputeRequest) -> Result<()> {
        if req.n_samples < 1 {
            return Err(PristiError::DegenerateConfig(
                "need at least one sample per request".into(),
            ));
        }
        // Same sampler-spec rules as `impute_batch` and the CLI parser — one
        // validation surface (`Sampler::validate`) for the whole system.
        req.sampler.validate()?;
        if req.window.n_nodes() != self.shared.n_nodes {
            return Err(PristiError::ShapeMismatch {
                what: "window node count",
                expected: vec![self.shared.n_nodes],
                got: vec![req.window.n_nodes()],
            });
        }
        if req.window.len() != self.shared.window_len {
            return Err(PristiError::ShapeMismatch {
                what: "window length",
                expected: vec![self.shared.window_len],
                got: vec![req.window.len()],
            });
        }
        Ok(())
    }

    /// Stop accepting new requests, answer everything already queued, and
    /// join every worker. Called automatically on drop; safe to call from
    /// any thread holding only `&self` (a concurrent `submit` gets
    /// [`PristiError::ServiceStopped`], never a hang).
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.stopping = true;
        }
        self.shared.notify.notify_all();
        let handles: Vec<JoinHandle<()>> =
            self.workers.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ImputeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, trained: &TrainedModel, widx: usize) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if q.poisoned {
                    drain_with_errors(&mut q);
                    return;
                }
                if !q.items.is_empty() {
                    break;
                }
                if q.stopping {
                    return;
                }
                q = shared.notify.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            // Coalesce the longest same-sampler prefix that fits the sample
            // budget. The coalescing key is the sampler *spec* (`Sampler`
            // equality, i.e. the same string the JSONL `"sampler"` field
            // carries) and nothing else — in particular it is
            // checkpoint-independent: a service always serves one checkpoint,
            // so two requests batch together iff their specs match. FIFO
            // order: requests are never reordered, so a request is only ever
            // delayed by work already ahead of it.
            let first = q.items.pop_front().expect("loop above ensures non-empty");
            let sampler = first.req.sampler;
            let mut total = first.req.n_samples;
            let mut batch = vec![first];
            while let Some(next) = q.items.front() {
                if next.req.sampler != sampler
                    || total + next.req.n_samples > shared.cfg.max_batch_samples
                {
                    break;
                }
                total += next.req.n_samples;
                batch.push(q.items.pop_front().expect("front() just returned Some"));
            }
            st_obs::gauge_set("serve.queue_depth", q.items.len() as f64);
            batch
        };
        st_obs::counter_add(WORKER_BATCH_COUNTERS[widx.min(7)], 1.0);
        serve_batch(shared, trained, widx, batch);
    }
}

/// Answer every queued request with the worker-panic error and clear the
/// queue (called with the lock held once a worker poisoned the service).
fn drain_with_errors(q: &mut QueueState) {
    while let Some(p) = q.items.pop_front() {
        let _ = p.tx.send(Err(PristiError::WorkerPanicked(
            "a service worker panicked before this request was served".into(),
        )));
    }
    st_obs::gauge_set("serve.queue_depth", 0.0);
}

fn serve_batch(shared: &Shared, trained: &TrainedModel, widx: usize, batch: Vec<Pending>) {
    // Expired requests get a typed Timeout instead of batch space.
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        let deadline = p.req.deadline.unwrap_or(match p.req.tier {
            AdmissionTier::Interactive => shared.cfg.default_deadline,
            AdmissionTier::BestEffort => shared.cfg.best_effort_deadline,
        });
        let waited = p.enqueued.elapsed();
        if waited > deadline {
            st_obs::counter_add("serve.timeout", 1.0);
            let _ = p.tx.send(Err(PristiError::Timeout {
                waited_ms: waited.as_millis() as u64,
                deadline_ms: deadline.as_millis() as u64,
            }));
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }

    let sampler = live[0].req.sampler;
    let total_samples: usize = live.iter().map(|p| p.req.n_samples).sum();
    // The whole coalesced batch runs under one batch-scoped trace id; a
    // `trace` event per member links each request's submission-time trace to
    // it, so every span below (serve_batch → impute → denoise_step) can be
    // attributed back to the exact requests it served.
    let batch_trace = st_obs::next_trace_id();
    for p in &live {
        st_obs::emit(
            "trace",
            vec![
                ("trace", st_obs::Value::U(p.trace)),
                ("batch", st_obs::Value::U(batch_trace)),
                ("request", st_obs::Value::U(p.req.id)),
            ],
        );
    }
    let _trace = st_obs::trace_scope(batch_trace);
    let _span = st_obs::span!(
        "serve_batch",
        requests = live.len() as u64,
        samples = total_samples as u64,
        worker = widx as u64,
    );
    st_obs::hist_record("serve.batch_requests", live.len() as f64);
    st_obs::hist_record("serve.batch_samples", total_samples as f64);

    let ids: Vec<u64> = live.iter().map(|p| p.req.id).collect();
    // The Pending list (and with it every caller's response channel) stays
    // outside the unwind boundary: a panicking denoise step must still leave
    // us able to answer the batch with typed errors.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(hook) = &shared.cfg.fault_hook {
            hook(&ids);
        }
        let mut items: Vec<BatchItem<'_>> = live
            .iter()
            .map(|p| BatchItem {
                window: &p.req.window,
                n_samples: p.req.n_samples,
                rng: request_rng(shared.cfg.base_seed, p.req.id),
            })
            .collect();
        impute_batch(trained, &mut items, sampler)
    }));
    match outcome {
        Ok(Ok(results)) => {
            for (p, res) in live.iter().zip(results) {
                let latency_ms = p.enqueued.elapsed().as_secs_f64() * 1e3;
                st_obs::hist_record("serve.latency_ms", latency_ms);
                st_obs::hist_record(WORKER_LATENCY_HISTS[widx.min(7)], latency_ms);
                let _ = p.tx.send(Ok(res));
            }
        }
        // Submit-time validation makes this unreachable in practice, but a
        // failed batch must still answer every member.
        Ok(Err(e)) => {
            for p in &live {
                let _ = p.tx.send(Err(e.clone()));
            }
        }
        // A panic is contained: this batch gets typed errors, the service is
        // poisoned (queued requests drain with typed errors, submits are
        // rejected), and shutdown still joins every worker.
        Err(payload) => {
            let detail = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic with non-string payload".into());
            st_obs::counter_add("serve.worker_panics", 1.0);
            // Poison BEFORE answering the batch: a caller that has seen its
            // typed error must find the service already stopping, so a
            // follow-up submit can never race past the flag onto a healthy
            // worker.
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.stopping = true;
            q.poisoned = true;
            drain_with_errors(&mut q);
            drop(q);
            shared.notify.notify_all();
            for p in &live {
                let _ = p.tx.send(Err(PristiError::WorkerPanicked(detail.clone())));
            }
        }
    }
}
