//! # st-serve
//!
//! The deployment layer of the PriSTI reproduction (the production-scale
//! direction named in ROADMAP.md): **checkpointing** — a versioned binary
//! format (`st-ckpt/1`) that round-trips a [`pristi_core::train::TrainedModel`]
//! bit-for-bit — and **serving** — a micro-batching, multi-worker
//! [`ImputeService`] whose replica pool shares one checkpoint via `Arc`,
//! coalesces concurrent imputation requests into batched reverse passes, and
//! sheds best-effort load under pressure ([`AdmissionTier`]) — all without
//! changing any request's results.
//!
//! Both halves lean on the workspace's determinism contract: checkpoint
//! round-trips reproduce in-memory imputations exactly, and batching is
//! invisible because every request owns an RNG stream keyed by its id and
//! the batched engine is slice-exact. Everything malformed — corrupt files,
//! wrong-shape windows, full queues, missed deadlines — is a typed
//! [`pristi_core::PristiError`], never a panic.
//!
//! Batched serving also rides the prior-cached inference path (DESIGN.md
//! §11): each coalesced batch builds one [`pristi_core::PriorCache`] — the
//! step-invariant attention weights, adaptive adjacency, and auxiliary
//! embedding, computed once per request — so every denoise step runs only
//! the noise-dependent half of the network.

#![deny(missing_docs)]

pub mod ckpt;
pub mod service;
pub mod stream;

pub use ckpt::{
    checkpoint_from_bytes, checkpoint_to_bytes, load_checkpoint, save_checkpoint, CKPT_MAGIC,
    CKPT_VERSION,
};
pub use service::{
    request_rng, AdmissionTier, FaultHook, ImputeRequest, ImputeService, ServeConfig,
};
pub use stream::{
    run_stream, stream_rng, StreamConfig, StreamServerConfig, StreamSession, StreamSummary, Tick,
    TickOutput,
};
