//! Streaming online imputation: a sliding-window session with incremental
//! prior updates, and a JSONL engine behind `pristi serve --stream`.
//!
//! Real sensor feeds don't arrive as independent windows. A
//! [`StreamSession`] holds the current `[N, L]` window for one feed, shifts
//! it one timestep per *data tick*, and revises the imputation of every
//! still-open gap inside a configurable revision `horizon` with a few-step
//! solver. Instead of rebuilding the conditional prior from scratch each
//! tick it maintains it incrementally:
//!
//! * the interpolated conditional `𝒳` is kept by an
//!   [`st_data::SlidingInterp`], which re-interpolates only the columns
//!   whose observation support changed (bitwise-identical to a full
//!   re-interpolation — DESIGN.md §16 gives the argument);
//! * the normalised window `values_z` shifts in place, normalising only the
//!   appended column (per-node affine scaling is cell-local);
//! * the step-invariant [`PriorCache`] — cond4, `U`, `H^pri` and the
//!   per-layer attention weights of DESIGN.md §11 — is rebuilt only when
//!   window *content* changed since the last impute (every data tick
//!   dirties it; a [`Tick::Reimpute`] on an unchanged window reuses it).
//!
//! Every output a session emits is **bitwise identical to a cold
//! full-window impute** of the same window with the same RNG stream
//! ([`stream_rng`]), so replaying a tick log reproduces responses
//! byte-for-byte — across `ST_PAR_THREADS` settings and worker counts.
//! `crates/st-serve/tests/stream.rs` pins all of this.
//!
//! # Revision contract and the settled watermark
//!
//! Ticks are numbered from 0; after `k` data ticks the newest absolute step
//! is `k-1` and the window covers steps `[k-L, k)` (steps before 0 are
//! pre-stream padding and never imputed). A gap is **open** while it sits
//! within the last `horizon` steps of the window; once it slides out it is
//! **settled** — its last revision was final. Each response carries the
//! monotone `watermark = max(0, newest_step + 1 - horizon)`: every step
//! below the watermark is settled and will never be revised again. A tick
//! with no open gaps skips the reverse pass entirely (and does not advance
//! the session's RNG sequence) — the source of the amortised per-tick win
//! the `stream_tick` micro-benchmarks measure.
//!
//! # Wire format (JSONL, one tick in → one response out)
//!
//! ```text
//! data tick: {"id":1,"session":0,"tick":[21.0,null,17.5]}
//! reimpute:  {"id":2,"session":0,"reimpute":true}
//! response:  {"id":1,"ok":true,"session":0,"step":7,"watermark":4,
//!             "imputed":true,"revisions":[
//!               {"node":1,"step":6,"q05":12.1,"q50":14.9,"q95":17.0},...]}
//! error:     {"id":null,"ok":false,"error":{"kind":"bad_request",
//!             "detail":"tick needs N cells","line":3}}
//! ```
//!
//! `tick` carries one cell per sensor (`null` = missing). `session`
//! (default 0) multiplexes independent feeds over one connection; sessions
//! are sharded across `workers` threads by `session % workers`, and a
//! sequence-numbered reorder buffer keeps responses in input order, so
//! output bytes are invariant to the worker count.

use pristi_core::train::TrainedModel;
use pristi_core::{
    impute_prepared, ImputationResult, ImputeOptions, PreparedWindow, PriorCache, PristiError,
    Result, Sampler,
};
use st_data::SlidingInterp;
use st_obs::json::{self, Json};
use st_rand::{SeedableRng, StdRng};
use st_tensor::NdArray;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::Arc;

/// Per-session streaming parameters, shared by every session of one engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Ensemble size per revision impute.
    pub n_samples: usize,
    /// Reverse-process solver for revisions — streaming wants a few-step
    /// spec (`pndm:K` / `refine:K`); the default is `pndm:4`.
    pub sampler: Sampler,
    /// Revision horizon in steps (`1..=L`): gaps are revised while they sit
    /// within the last `horizon` steps of the window, then settle.
    pub horizon: usize,
    /// Base seed of the per-session RNG streams (see [`stream_rng`]).
    pub base_seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            n_samples: 8,
            sampler: Sampler::Pndm { steps: 4, order: 4 },
            horizon: 4,
            base_seed: 0,
        }
    }
}

/// The RNG stream for one session's `seq`-th revision impute, mixed from
/// the engine seed exactly like [`crate::request_rng`] mixes request ids —
/// disjoint per `(session, seq)`, so a replayed tick log reproduces every
/// draw.
pub fn stream_rng(base_seed: u64, session: u64, seq: u64) -> StdRng {
    let mixed = session.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(32)
        ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    StdRng::seed_from_u64(base_seed ^ mixed)
}

/// One input line of the streaming wire format, parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum Tick {
    /// A new timestep: one cell per sensor, `None` = missing.
    Data(Vec<Option<f32>>),
    /// Re-impute the current window with a fresh ensemble (next RNG stream),
    /// reusing the prior cache — the window content is unchanged.
    Reimpute,
}

/// One revised quantile triple for a still-open gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Revision {
    /// Sensor index.
    pub node: usize,
    /// Absolute step of the revised cell.
    pub step: u64,
    /// 5 % ensemble quantile (denormalised).
    pub q05: f32,
    /// Ensemble median (denormalised).
    pub q50: f32,
    /// 95 % ensemble quantile (denormalised).
    pub q95: f32,
}

/// What one tick produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TickOutput {
    /// Absolute step of the newest window column.
    pub step: u64,
    /// Monotone settled watermark: steps `< watermark` are final.
    pub watermark: u64,
    /// Whether a reverse pass ran (false ⇒ no open gaps, impute skipped).
    pub imputed: bool,
    /// Revised quantiles for every open gap, ordered by `(node, step)`.
    pub revisions: Vec<Revision>,
}

/// A sliding-window streaming session over one sensor feed.
///
/// See the [module docs](self) for the window-shift semantics, the
/// incremental-prior maintenance and the watermark/revision contract.
pub struct StreamSession {
    trained: Arc<TrainedModel>,
    cfg: StreamConfig,
    session_id: u64,
    n: usize,
    l: usize,
    /// Normalised window values, shifted in place (`[N, L]`).
    values_z: NdArray,
    /// Conditioning mask (1 = observed), shifted in place (`[N, L]`).
    cond_mask: NdArray,
    /// Incrementally maintained interpolated conditional (models that
    /// condition on interpolation only).
    interp: Option<SlidingInterp>,
    /// Step-invariant prior tensors, reused while `prior_dirty` is false.
    prior: Option<PriorCache>,
    prior_dirty: bool,
    /// Data ticks received so far (newest absolute step = `ticks - 1`).
    ticks: u64,
    /// Revision imputes run so far — the RNG sequence number.
    impute_seq: u64,
}

impl StreamSession {
    /// Open a session. Validates the sampler spec, `n_samples >= 1` and
    /// `1 <= horizon <= L`.
    pub fn new(trained: Arc<TrainedModel>, cfg: StreamConfig, session_id: u64) -> Result<Self> {
        cfg.sampler.validate()?;
        if cfg.n_samples < 1 {
            return Err(PristiError::DegenerateConfig(
                "stream needs at least one ensemble sample".into(),
            ));
        }
        let (n, l) = (trained.model.n_nodes(), trained.model.window_len());
        if cfg.horizon < 1 || cfg.horizon > l {
            return Err(PristiError::DegenerateConfig(format!(
                "stream horizon must be in 1..={l}, got {}",
                cfg.horizon
            )));
        }
        // The pre-stream window is all-missing: values_z holds the
        // normalised raw zeros a cold window would hold, the mask is zero,
        // and the interpolation is the all-`fallback` window.
        let mut values_z = NdArray::zeros(&[n, l]);
        for i in 0..n {
            let z = trained.normalizer.normalize_value(i, 0.0);
            values_z.data_mut()[i * l..(i + 1) * l].fill(z);
        }
        let interp = trained.model.cfg.use_interpolation.then(|| SlidingInterp::new(n, l, 0.0));
        Ok(Self {
            trained,
            cfg,
            session_id,
            n,
            l,
            values_z,
            cond_mask: NdArray::zeros(&[n, l]),
            interp,
            prior: None,
            prior_dirty: true,
            ticks: 0,
            impute_seq: 0,
        })
    }

    /// Data ticks received so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Revision imputes run so far (the next RNG sequence number).
    pub fn impute_seq(&self) -> u64 {
        self.impute_seq
    }

    /// Process one tick.
    pub fn tick(&mut self, tick: &Tick) -> Result<TickOutput> {
        match tick {
            Tick::Data(cells) => self.data_tick(cells),
            Tick::Reimpute => self.reimpute(),
        }
    }

    /// Shift the window one step and revise open gaps.
    pub fn data_tick(&mut self, cells: &[Option<f32>]) -> Result<TickOutput> {
        if cells.len() != self.n {
            return Err(PristiError::ShapeMismatch {
                what: "stream tick cells",
                expected: vec![self.n],
                got: vec![cells.len()],
            });
        }
        let (n, l) = (self.n, self.l);
        let mut zvals = vec![0.0f32; n];
        let mut observed = vec![false; n];
        for i in 0..n {
            // Missing cells hold the normalised raw 0.0 a cold window's
            // `normalize_window` would produce — bitwise the same affine op.
            zvals[i] = self.trained.normalizer.normalize_value(i, cells[i].unwrap_or(0.0));
            observed[i] = cells[i].is_some();
        }
        for i in 0..n {
            let row_z = &mut self.values_z.data_mut()[i * l..(i + 1) * l];
            row_z.copy_within(1.., 0);
            row_z[l - 1] = zvals[i];
            let row_m = &mut self.cond_mask.data_mut()[i * l..(i + 1) * l];
            row_m.copy_within(1.., 0);
            row_m[l - 1] = if observed[i] { 1.0 } else { 0.0 };
        }
        if let Some(interp) = &mut self.interp {
            interp.shift(&zvals, &observed);
        }
        self.prior_dirty = true;
        self.ticks += 1;
        self.revise()
    }

    /// Re-impute the current window with a fresh ensemble, reusing the
    /// prior cache (the window content is unchanged). Errors before the
    /// first data tick.
    pub fn reimpute(&mut self) -> Result<TickOutput> {
        if self.ticks == 0 {
            return Err(PristiError::DegenerateConfig(
                "reimpute before any data tick".into(),
            ));
        }
        self.revise()
    }

    /// Absolute step of a window column, or `None` for pre-stream padding.
    fn abs_step(&self, col: usize) -> Option<u64> {
        let newest = self.ticks - 1;
        let back = (self.l - 1 - col) as u64;
        newest.checked_sub(back)
    }

    /// The open gaps of the current window: cells within the revision
    /// horizon that are missing and not pre-stream padding, `(node, col)`.
    fn open_gaps(&self) -> Vec<(usize, usize)> {
        let (n, l) = (self.n, self.l);
        let h = self.cfg.horizon.min(self.ticks as usize);
        let mut gaps = Vec::new();
        for i in 0..n {
            for col in (l - h)..l {
                if self.cond_mask.data()[i * l + col] == 0.0 && self.abs_step(col).is_some() {
                    gaps.push((i, col));
                }
            }
        }
        gaps
    }

    /// Impute (if any gap is open) and assemble the tick response.
    fn revise(&mut self) -> Result<TickOutput> {
        let newest = self.ticks - 1;
        let watermark = (newest + 1).saturating_sub(self.cfg.horizon as u64);
        let gaps = self.open_gaps();
        if gaps.is_empty() {
            return Ok(TickOutput { step: newest, watermark, imputed: false, revisions: Vec::new() });
        }
        let result = self.impute_window()?;
        let (q05, q50, q95) = (result.quantile(0.05), result.quantile(0.5), result.quantile(0.95));
        let l = self.l;
        let revisions = gaps
            .into_iter()
            .map(|(node, col)| Revision {
                node,
                step: self.abs_step(col).expect("open gaps are never padding"),
                q05: q05.data()[node * l + col],
                q50: q50.data()[node * l + col],
                q95: q95.data()[node * l + col],
            })
            .collect();
        Ok(TickOutput { step: newest, watermark, imputed: true, revisions })
    }

    /// One warm reverse pass over the current window, rebuilding the prior
    /// cache only when the window content changed since the last impute.
    fn impute_window(&mut self) -> Result<ImputationResult> {
        let prep = PreparedWindow::from_parts(
            &self.trained,
            self.values_z.clone(),
            self.cond_mask.clone(),
            self.interp.as_ref().map(|si| si.cond()),
        )?;
        if self.prior_dirty || self.prior.is_none() {
            self.prior = Some(prep.build_prior(&self.trained, self.cfg.n_samples));
            self.prior_dirty = false;
        } else {
            st_obs::counter_add("stream.prior_reuse", 1.0);
        }
        let mut rng = stream_rng(self.cfg.base_seed, self.session_id, self.impute_seq);
        self.impute_seq += 1;
        let opts = ImputeOptions { n_samples: self.cfg.n_samples, sampler: self.cfg.sampler };
        impute_prepared(&self.trained, &prep, &opts, &mut rng, self.prior.as_ref())
    }
}

// ---------------------------------------------------------------------------
// JSONL engine
// ---------------------------------------------------------------------------

/// Engine configuration: per-session parameters plus the worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamServerConfig {
    /// Parameters every session of this engine runs with.
    pub session: StreamConfig,
    /// Worker threads; sessions are sharded by `session_id % workers`.
    /// Output bytes are invariant to this (reorder buffer).
    pub workers: usize,
}

impl Default for StreamServerConfig {
    fn default() -> Self {
        Self { session: StreamConfig::default(), workers: 1 }
    }
}

/// Totals of one [`run_stream`] drive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Lines answered `ok:true`.
    pub ok: u64,
    /// Lines answered with a typed error.
    pub errors: u64,
    /// Ticks that ran a reverse pass.
    pub imputes: u64,
    /// Ticks that skipped the reverse pass (no open gaps).
    pub skips: u64,
}

/// One parsed input line, routed to a session worker.
struct WorkItem {
    seq: u64,
    line_no: u64,
    id: Option<u64>,
    session: u64,
    tick: Tick,
}

/// Drive the streaming JSONL loop: ticks in on `input`, one response per
/// line out on `output`, in input order regardless of `cfg.workers`.
///
/// Used by `pristi serve --stream` (stdin/stdout) and driven in-memory by
/// the loadtest harness and the stream test-suite. Only I/O failures are
/// `Err`; malformed lines and per-tick imputation failures become typed
/// error *responses* (see the [module docs](self)) and the loop continues.
pub fn run_stream<R: BufRead, W: Write>(
    trained: Arc<TrainedModel>,
    cfg: &StreamServerConfig,
    input: R,
    mut output: W,
) -> std::io::Result<StreamSummary> {
    let workers = cfg.workers.max(1);
    let session_cfg = cfg.session;
    let mut summary = StreamSummary::default();
    std::thread::scope(|scope| -> std::io::Result<StreamSummary> {
        // Reorder sink: workers (and the parse loop, for error lines) send
        // `(seq, imputed, response)`; responses leave in `seq` order.
        let (out_tx, out_rx) = mpsc::channel::<(u64, Option<bool>, String)>();
        let worker_txs: Vec<mpsc::Sender<WorkItem>> = (0..workers)
            .map(|widx| {
                let (tx, rx) = mpsc::channel::<WorkItem>();
                let trained = Arc::clone(&trained);
                let out_tx = out_tx.clone();
                scope.spawn(move || worker_loop(widx, trained, session_cfg, rx, out_tx));
                tx
            })
            .collect();

        let mut seq = 0u64;
        let mut line_no = 0u64;
        for line in input.lines() {
            let line = line?;
            line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            match parse_tick(&line) {
                Ok((id, session, tick)) => {
                    let item = WorkItem { seq, line_no, id: Some(id), session, tick };
                    let widx = (session % workers as u64) as usize;
                    worker_txs[widx].send(item).expect("stream worker hung up");
                }
                Err((id, kind, detail)) => {
                    st_obs::counter_add("stream.errors", 1.0);
                    let resp = error_line(id, kind, &detail, line_no);
                    out_tx.send((seq, None, resp)).expect("stream sink hung up");
                }
            }
            seq += 1;
        }
        drop(worker_txs);
        drop(out_tx);

        // Drain the sink in sequence order; flush per line so an
        // interactive client never deadlocks on a buffered response.
        let mut pending: BTreeMap<u64, (Option<bool>, String)> = BTreeMap::new();
        let mut next_seq = 0u64;
        for (s, imputed, resp) in out_rx {
            pending.insert(s, (imputed, resp));
            while let Some((imputed, resp)) = pending.remove(&next_seq) {
                match imputed {
                    None => summary.errors += 1,
                    Some(true) => {
                        summary.ok += 1;
                        summary.imputes += 1;
                    }
                    Some(false) => {
                        summary.ok += 1;
                        summary.skips += 1;
                    }
                }
                writeln!(output, "{resp}")?;
                output.flush()?;
                next_seq += 1;
            }
        }
        assert!(pending.is_empty(), "stream reorder buffer drained out of order");
        Ok(summary)
    })
}

/// One shard's loop: owns every session with `session_id % workers == widx`,
/// processes its ticks in arrival order, reports each response to the sink.
fn worker_loop(
    widx: usize,
    trained: Arc<TrainedModel>,
    cfg: StreamConfig,
    rx: mpsc::Receiver<WorkItem>,
    out_tx: mpsc::Sender<(u64, Option<bool>, String)>,
) {
    let mut sessions: HashMap<u64, StreamSession> = HashMap::new();
    for item in rx {
        let t0 = std::time::Instant::now();
        let trace = st_obs::next_trace_id();
        let _trace = st_obs::trace_scope(trace);
        let _span = st_obs::span!(
            "stream_tick",
            worker = widx as u64,
            session = item.session,
            seq = item.seq,
        );
        st_obs::counter_add("stream.ticks", 1.0);
        let (imputed, resp) = match serve_tick(&trained, cfg, &mut sessions, &item) {
            Ok(out) => {
                st_obs::counter_add(
                    if out.imputed { "stream.imputes" } else { "stream.skips" },
                    1.0,
                );
                st_obs::hist_record("stream.revisions", out.revisions.len() as f64);
                (Some(out.imputed), ok_line(item.id.unwrap_or(0), item.session, &out))
            }
            Err(e) => {
                st_obs::counter_add("stream.errors", 1.0);
                (None, error_line(item.id, e.kind(), &e.to_string(), item.line_no))
            }
        };
        st_obs::hist_record("stream.tick_ms", t0.elapsed().as_secs_f64() * 1e3);
        st_obs::gauge_set("stream.sessions", sessions.len() as f64);
        if out_tx.send((item.seq, imputed, resp)).is_err() {
            return; // sink gone: the driver already failed on I/O
        }
    }
}

/// Route one work item to its session, opening the session on first use.
/// A panic inside the model is contained: the session is dropped and the
/// tick answered with a typed `worker_panicked` error.
fn serve_tick(
    trained: &Arc<TrainedModel>,
    cfg: StreamConfig,
    sessions: &mut HashMap<u64, StreamSession>,
    item: &WorkItem,
) -> Result<TickOutput> {
    let session = match sessions.entry(item.session) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            let session = StreamSession::new(Arc::clone(trained), cfg, item.session)?;
            st_obs::counter_add("stream.sessions_opened", 1.0);
            e.insert(session)
        }
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.tick(&item.tick)));
    match outcome {
        Ok(res) => res,
        Err(panic) => {
            sessions.remove(&item.session);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Err(PristiError::WorkerPanicked(msg))
        }
    }
}

/// Parse failure for one wire line: `(id-if-known, kind, detail)`.
type ParseFailure = (Option<u64>, &'static str, String);

/// Parse one wire line into `(id, session, tick)`.
fn parse_tick(line: &str) -> std::result::Result<(u64, u64, Tick), ParseFailure> {
    let obj = json::parse(line).map_err(|e| (None, "bad_json", format!("bad JSON: {e}")))?;
    let id = obj.get("id").and_then(Json::as_u64);
    let fail = |detail: String| (id, "bad_request", detail);
    let id = id.ok_or_else(|| fail("tick needs a numeric \"id\"".into()))?;
    let fail = |detail: String| (Some(id), "bad_request", detail);
    let session = match obj.get("session") {
        None => 0,
        Some(s) => s.as_u64().ok_or_else(|| fail("\"session\" must be a non-negative integer".into()))?,
    };
    let reimpute = match obj.get("reimpute") {
        None | Some(Json::Bool(false)) => false,
        Some(Json::Bool(true)) => true,
        Some(_) => return Err(fail("\"reimpute\" must be a boolean".into())),
    };
    match (obj.get("tick"), reimpute) {
        (Some(_), true) => Err(fail("\"tick\" and \"reimpute\" are mutually exclusive".into())),
        (None, true) => Ok((id, session, Tick::Reimpute)),
        (None, false) => Err(fail("tick needs a \"tick\" cell array or \"reimpute\":true".into())),
        (Some(cells), false) => {
            let cells = cells
                .as_arr()
                .ok_or_else(|| fail("\"tick\" must be an array of cells".into()))?;
            let mut out = Vec::with_capacity(cells.len());
            for (i, cell) in cells.iter().enumerate() {
                match cell {
                    Json::Null => out.push(None),
                    other => match other.as_f64() {
                        Some(v) => out.push(Some(v as f32)),
                        None => return Err(fail(format!("cell [{i}] must be a number or null"))),
                    },
                }
            }
            Ok((id, session, Tick::Data(out)))
        }
    }
}

/// Render a finite f32 (or `null`) for the wire.
fn num_json(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Render one `ok:true` response line.
fn ok_line(id: u64, session: u64, out: &TickOutput) -> String {
    let mut revs = String::from("[");
    for (i, r) in out.revisions.iter().enumerate() {
        if i > 0 {
            revs.push(',');
        }
        revs.push_str(&format!(
            "{{\"node\":{},\"step\":{},\"q05\":{},\"q50\":{},\"q95\":{}}}",
            r.node,
            r.step,
            num_json(r.q05),
            num_json(r.q50),
            num_json(r.q95)
        ));
    }
    revs.push(']');
    format!(
        "{{\"id\":{id},\"ok\":true,\"session\":{session},\"step\":{},\"watermark\":{},\
         \"imputed\":{},\"revisions\":{revs}}}",
        out.step, out.watermark, out.imputed
    )
}

/// Render one typed error response line — the same
/// `{"id":..,"ok":false,"error":{kind,detail,line}}` shape `pristi serve`
/// uses in request mode (README §Command line).
pub fn error_line(id: Option<u64>, kind: &str, detail: &str, line_no: u64) -> String {
    let id = id.map_or_else(|| "null".to_string(), |v| v.to_string());
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{{\"kind\":{},\"detail\":{},\"line\":{line_no}}}}}",
        json::escape(kind),
        json::escape(detail)
    )
}
