//! Versioned binary checkpoints for trained PriSTI models.
//!
//! Format `st-ckpt/1`, little-endian throughout:
//!
//! ```text
//! [0..8)    magic  b"st-ckpt/"
//! [8..12)   u32    format version (currently 1)
//! [12..20)  u64    payload length in bytes
//! [20..28)  u64    FNV-1a 64 checksum of the payload
//! [28..)    payload
//! ```
//!
//! The payload stores everything [`TrainedModel`] needs to impute: the
//! [`PristiConfig`] fields in fixed order, the window length, the sensor
//! graph (coordinates + adjacency verbatim — transition matrices are a
//! deterministic function of the adjacency and are recomputed on load), the
//! fitted normalizer, the raw `β` table (the `α` / `ᾱ` tables are recomputed
//! by the same fold, so the schedule round-trips bitwise), the named
//! parameter tensors via [`ParamStore::to_bytes`]'s bitwise encoding, and the
//! per-epoch training losses. A save → load → impute round-trip is therefore
//! bit-for-bit identical to imputing with the in-memory model —
//! `tests/ckpt.rs` pins that.
//!
//! Corruption (bad magic, failed checksum, truncation, inconsistent payload)
//! surfaces as [`PristiError::CheckpointCorrupt`]; an unknown format version
//! as [`PristiError::CheckpointVersionMismatch`]. Nothing on the load path
//! panics on malformed bytes.

use pristi_core::error::{PristiError, Result};
use pristi_core::train::TrainedModel;
use pristi_core::{PristiConfig, PristiModel};
use st_data::normalize::Normalizer;
use st_diffusion::{BetaSchedule, DiffusionSchedule};
use st_graph::adjacency::SensorGraph;
use st_graph::layout::Coord;
use st_tensor::{NdArray, ParamStore};
use std::path::Path;

/// Leading magic of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"st-ckpt/";
/// The single format version this build reads and writes.
pub const CKPT_VERSION: u32 = 1;

/// FNV-1a 64-bit, the workspace-standard content checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn encode_config(out: &mut Vec<u8>, cfg: &PristiConfig) {
    for v in [
        cfg.d_model,
        cfg.heads,
        cfg.layers,
        cfg.t_steps,
        cfg.virtual_nodes,
        cfg.time_emb_dim,
        cfg.node_emb_dim,
        cfg.step_emb_dim,
        cfg.mpnn_order,
        cfg.adaptive_dim,
    ] {
        put_u64(out, v as u64);
    }
    put_f64(out, cfg.beta_min);
    put_f64(out, cfg.beta_max);
    out.push(match cfg.schedule {
        BetaSchedule::Quadratic => 0,
        BetaSchedule::Linear => 1,
    });
    let mut flags = 0u8;
    for (bit, on) in [
        cfg.use_interpolation,
        cfg.use_cond_feature,
        cfg.use_temporal,
        cfg.use_spatial,
        cfg.use_mpnn,
        cfg.use_attention,
    ]
    .into_iter()
    .enumerate()
    {
        if on {
            flags |= 1 << bit;
        }
    }
    out.push(flags);
}

fn encode_payload(trained: &TrainedModel) -> Vec<u8> {
    let mut p = Vec::new();
    encode_config(&mut p, &trained.model.cfg);
    put_u64(&mut p, trained.model.window_len() as u64);

    let graph = &trained.graph;
    put_u64(&mut p, graph.n_nodes() as u64);
    for c in &graph.coords {
        put_f64(&mut p, c.x);
        put_f64(&mut p, c.y);
    }
    put_bytes(&mut p, &graph.adjacency.to_bytes());

    put_u64(&mut p, trained.normalizer.mean.len() as u64);
    for &m in &trained.normalizer.mean {
        p.extend_from_slice(&m.to_le_bytes());
    }
    for &s in &trained.normalizer.std {
        p.extend_from_slice(&s.to_le_bytes());
    }

    let betas = trained.schedule.betas();
    put_u64(&mut p, betas.len() as u64);
    for &b in betas {
        put_f64(&mut p, b);
    }

    put_bytes(&mut p, &trained.model.store.to_bytes());

    put_u64(&mut p, trained.epoch_losses.len() as u64);
    for &l in &trained.epoch_losses {
        put_f64(&mut p, l);
    }
    p
}

// ---------------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------------

/// Forward-only cursor over the payload; every read is bounds-checked and a
/// short buffer is a typed corruption error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let sl = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| PristiError::CheckpointCorrupt(format!("truncated while reading {what}")))?;
        self.pos += n;
        Ok(sl)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A u64 length that must also be a plausible in-buffer size.
    fn len(&mut self, what: &str) -> Result<usize> {
        let v = self.u64(what)?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if v > remaining {
            return Err(PristiError::CheckpointCorrupt(format!(
                "{what} claims {v} entries/bytes but only {remaining} bytes remain"
            )));
        }
        Ok(v as usize)
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f32(&mut self, what: &str) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_config(c: &mut Cursor<'_>) -> Result<PristiConfig> {
    let mut dims = [0usize; 10];
    for (i, slot) in dims.iter_mut().enumerate() {
        let v = c.u64("config dimensions")?;
        if v > u32::MAX as u64 {
            return Err(PristiError::CheckpointCorrupt(format!(
                "config dimension {i} is implausibly large ({v})"
            )));
        }
        *slot = v as usize;
    }
    let beta_min = c.f64("beta_min")?;
    let beta_max = c.f64("beta_max")?;
    let schedule = match c.u8("schedule tag")? {
        0 => BetaSchedule::Quadratic,
        1 => BetaSchedule::Linear,
        tag => {
            return Err(PristiError::CheckpointCorrupt(format!("unknown schedule tag {tag}")))
        }
    };
    let flags = c.u8("config flags")?;
    let cfg = PristiConfig {
        d_model: dims[0],
        heads: dims[1],
        layers: dims[2],
        t_steps: dims[3],
        virtual_nodes: dims[4],
        time_emb_dim: dims[5],
        node_emb_dim: dims[6],
        step_emb_dim: dims[7],
        mpnn_order: dims[8],
        adaptive_dim: dims[9],
        beta_min,
        beta_max,
        schedule,
        use_interpolation: flags & (1 << 0) != 0,
        use_cond_feature: flags & (1 << 1) != 0,
        use_temporal: flags & (1 << 2) != 0,
        use_spatial: flags & (1 << 3) != 0,
        use_mpnn: flags & (1 << 4) != 0,
        use_attention: flags & (1 << 5) != 0,
    };
    // A config that never could have been saved is corruption, not a
    // caller error.
    cfg.validate().map_err(|e| {
        PristiError::CheckpointCorrupt(format!("checkpoint config fails validation: {e}"))
    })?;
    Ok(cfg)
}

fn decode_payload(payload: &[u8]) -> Result<TrainedModel> {
    let mut c = Cursor::new(payload);
    let cfg = decode_config(&mut c)?;
    let window_len = c.u64("window length")? as usize;

    let n_nodes = c.len("node count")?;
    let mut coords = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        coords.push(Coord { x: c.f64("coord x")?, y: c.f64("coord y")? });
    }
    let adj_len = c.len("adjacency blob length")?;
    let adjacency = NdArray::from_bytes(c.take(adj_len, "adjacency blob")?)
        .map_err(|e| PristiError::CheckpointCorrupt(format!("bad adjacency tensor: {e}")))?;
    if adjacency.shape() != [n_nodes, n_nodes] {
        return Err(PristiError::CheckpointCorrupt(format!(
            "adjacency shape {:?} does not match node count {n_nodes}",
            adjacency.shape()
        )));
    }
    if !adjacency.data().iter().all(|v| v.is_finite()) {
        return Err(PristiError::CheckpointCorrupt("non-finite adjacency weight".into()));
    }
    let graph = SensorGraph { coords, adjacency };

    let norm_n = c.len("normalizer length")?;
    if norm_n != n_nodes {
        return Err(PristiError::CheckpointCorrupt(format!(
            "normalizer covers {norm_n} nodes, graph has {n_nodes}"
        )));
    }
    let mut mean = Vec::with_capacity(norm_n);
    for _ in 0..norm_n {
        mean.push(c.f32("normalizer mean")?);
    }
    let mut std = Vec::with_capacity(norm_n);
    for _ in 0..norm_n {
        std.push(c.f32("normalizer std")?);
    }
    if !mean.iter().chain(&std).all(|v| v.is_finite()) || std.iter().any(|&s| s <= 0.0) {
        return Err(PristiError::CheckpointCorrupt("degenerate normalizer statistics".into()));
    }
    let normalizer = Normalizer { mean, std };

    let n_betas = c.len("beta table length")?;
    if n_betas != cfg.t_steps {
        return Err(PristiError::CheckpointCorrupt(format!(
            "beta table holds {n_betas} steps, config says {}",
            cfg.t_steps
        )));
    }
    let mut betas = Vec::with_capacity(n_betas);
    for _ in 0..n_betas {
        let b = c.f64("beta value")?;
        if !(b.is_finite() && 0.0 < b && b < 1.0) {
            return Err(PristiError::CheckpointCorrupt(format!("beta {b} outside (0, 1)")));
        }
        betas.push(b);
    }
    // Pre-validated above, so from_betas' internal invariants hold; the
    // α / ᾱ tables are recomputed with the identical fold (bitwise equal).
    let schedule = DiffusionSchedule::from_betas(betas);

    let params_len = c.len("parameter blob length")?;
    let store = ParamStore::from_bytes(c.take(params_len, "parameter blob")?)
        .map_err(|e| PristiError::CheckpointCorrupt(format!("bad parameter blob: {e}")))?;

    let n_losses = c.len("epoch loss count")?;
    let mut epoch_losses = Vec::with_capacity(n_losses);
    for _ in 0..n_losses {
        epoch_losses.push(c.f64("epoch loss")?);
    }
    if !c.done() {
        return Err(PristiError::CheckpointCorrupt(format!(
            "{} trailing bytes after payload",
            payload.len() - c.pos
        )));
    }

    let model = PristiModel::from_parts(cfg, &graph, window_len, store)?;
    Ok(TrainedModel { model, graph, schedule, normalizer, epoch_losses })
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Serialize a trained model to the `st-ckpt/1` byte format.
pub fn checkpoint_to_bytes(trained: &TrainedModel) -> Vec<u8> {
    let payload = encode_payload(trained);
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Reconstruct a trained model from `st-ckpt/1` bytes.
pub fn checkpoint_from_bytes(bytes: &[u8]) -> Result<TrainedModel> {
    if bytes.len() < 28 {
        return Err(PristiError::CheckpointCorrupt(format!(
            "file is {} bytes, header alone needs 28",
            bytes.len()
        )));
    }
    if &bytes[0..8] != CKPT_MAGIC {
        return Err(PristiError::CheckpointCorrupt("bad magic: not an st-ckpt file".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CKPT_VERSION {
        return Err(PristiError::CheckpointVersionMismatch {
            found: version,
            supported: CKPT_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[28..];
    if payload.len() as u64 != payload_len {
        return Err(PristiError::CheckpointCorrupt(format!(
            "header says {payload_len} payload bytes, file holds {}",
            payload.len()
        )));
    }
    let actual = fnv1a(payload);
    if actual != checksum {
        return Err(PristiError::CheckpointCorrupt(format!(
            "checksum mismatch: header {checksum:#018x}, payload hashes to {actual:#018x}"
        )));
    }
    decode_payload(payload)
}

/// Save a trained model to `path` in the `st-ckpt/1` format.
///
/// # Example
///
/// Save → load round-trip; the restored model imputes bit-for-bit like the
/// in-memory one (including through the prior-cached inference path the
/// impute default uses — `tests/ckpt.rs` pins both):
///
/// ```
/// use pristi_core::train::{train, TrainConfig};
/// use pristi_core::PristiConfig;
/// use st_data::generators::{generate_air_quality, AirQualityConfig};
/// use st_serve::{load_checkpoint, save_checkpoint};
///
/// # fn main() -> pristi_core::Result<()> {
/// let data = generate_air_quality(&AirQualityConfig {
///     n_nodes: 8,
///     n_days: 4,
///     ..Default::default()
/// });
/// # let mut cfg = PristiConfig::small();
/// # cfg.d_model = 8;
/// # cfg.heads = 2;
/// # cfg.layers = 1;
/// # cfg.t_steps = 8;
/// # cfg.time_emb_dim = 8;
/// # cfg.node_emb_dim = 4;
/// # cfg.step_emb_dim = 8;
/// # cfg.virtual_nodes = 4;
/// # cfg.adaptive_dim = 2;
/// let tc = TrainConfig {
///     epochs: 1,
///     batch_size: 4,
///     window_len: 12,
///     window_stride: 12,
///     ..Default::default()
/// };
/// let trained = train(&data, cfg, &tc)?;
///
/// let path = std::env::temp_dir().join(format!("pristi_doc_{}.ckpt", std::process::id()));
/// save_checkpoint(&trained, &path)?;
/// let restored = load_checkpoint(&path)?;
/// std::fs::remove_file(&path).ok();
/// assert_eq!(restored.model.store.to_bytes(), trained.model.store.to_bytes());
/// # Ok(())
/// # }
/// ```
pub fn save_checkpoint(trained: &TrainedModel, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, checkpoint_to_bytes(trained))?;
    Ok(())
}

/// Load a trained model from an `st-ckpt/1` file.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<TrainedModel> {
    let bytes = std::fs::read(path)?;
    checkpoint_from_bytes(&bytes)
}
