//! VAR: first-order vector-autoregressive single-step predictor
//! (paper Section IV-B method 7), ridge-fit on visible consecutive pairs.

use crate::common::{visible, Imputer};
use crate::linalg::ridge_solve;
use st_data::dataset::SpatioTemporalDataset;
use st_tensor::NdArray;

/// VAR(1) imputer: `X_t ≈ A X_{t−1} + b`, applied forward over the panel.
#[derive(Debug)]
pub struct VarImputer {
    /// Ridge penalty for the per-node regressions.
    pub lambda: f32,
}

impl Default for VarImputer {
    fn default() -> Self {
        Self { lambda: 5.0 }
    }
}

impl Imputer for VarImputer {
    fn name(&self) -> &'static str {
        "VAR"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        let (t_len, n) = (data.n_steps(), data.n_nodes());

        // Node means for initial fill of regressor rows.
        let mut mean = vec![0.0f32; n];
        let mut cnt = vec![0.0f32; n];
        for t in 0..t_len {
            for i in 0..n {
                if mask.data()[t * n + i] > 0.0 {
                    mean[i] += vals.data()[t * n + i];
                    cnt[i] += 1.0;
                }
            }
        }
        for i in 0..n {
            if cnt[i] > 0.0 {
                mean[i] /= cnt[i];
            }
        }
        // mean-filled lagged design (in deviation form to absorb the bias)
        let filled_at = |t: usize, j: usize| -> f32 {
            if mask.data()[t * n + j] > 0.0 {
                vals.data()[t * n + j] - mean[j]
            } else {
                0.0
            }
        };

        // Fit row i of A: target node i at t, regressors all nodes at t-1.
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            let mut x = Vec::new();
            let mut y = Vec::new();
            let mut rows = 0usize;
            for t in 1..t_len {
                if mask.data()[t * n + i] > 0.0 {
                    for j in 0..n {
                        x.push(filled_at(t - 1, j));
                    }
                    y.push(vals.data()[t * n + i] - mean[i]);
                    rows += 1;
                }
            }
            if rows < n {
                continue;
            }
            let beta = ridge_solve(&x, &y, rows, n, self.lambda);
            a[i * n..(i + 1) * n].copy_from_slice(&beta);
        }

        // Forward imputation: missing entries predicted from the previous
        // (possibly imputed) state's deviations.
        let mut out = data.values.mul(&mask);
        let mut prev_dev = vec![0.0f32; n];
        for t in 0..t_len {
            for i in 0..n {
                if mask.data()[t * n + i] == 0.0 {
                    let mut pred = 0.0f32;
                    for j in 0..n {
                        pred += a[i * n + j] * prev_dev[j];
                    }
                    out.data_mut()[t * n + i] = mean[i] + pred;
                }
            }
            for j in 0..n {
                prev_dev[j] = out.data()[t * n + j] - mean[j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::dataset::Split;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    fn dataset() -> SpatioTemporalDataset {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 10,
            n_days: 10,
            seed: 19,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 29);
        d
    }

    #[test]
    fn fills_and_stays_finite() {
        let d = dataset();
        let out = VarImputer::default().fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn beats_mean_on_autocorrelated_data() {
        let d = dataset();
        let var = evaluate_panel(&d, &VarImputer::default().fit_impute(&d), Split::Test).mae();
        let mean = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(var < mean, "VAR {var:.3} vs MEAN {mean:.3}");
    }
}
