//! GRIN: graph recurrent imputation network (Cini et al., ICLR 2022).
//!
//! Compact but structurally faithful re-implementation: a bidirectional
//! recurrent architecture whose per-node GRU (shared weights) is interleaved
//! with graph message passing on the hidden state, with a two-stage decoder —
//! a first-stage prediction from the recurrent state and a second-stage
//! prediction from the spatially refined state — trained on observed values
//! from both directions.
//! Simplification: one MPNN hop per step and a linear readout instead of the
//! full spatial decoder MLP stack (documented in DESIGN.md §3.7).

use crate::common::{impute_panel_by_windows, Imputer};
use st_rand::StdRng;
use st_rand::SliceRandom;
use st_rand::SeedableRng;
use st_data::dataset::{SpatioTemporalDataset, Split, Window};
use st_data::normalize::Normalizer;
use st_graph::SensorGraph;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{GruCell, Linear, Mpnn};
use st_tensor::optim::{clip_grad_norm, Adam};
use st_tensor::param::ParamStore;

/// Training hyperparameters for GRIN.
#[derive(Debug, Clone)]
pub struct GrinConfig {
    /// Hidden width per node.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Window length.
    pub window_len: usize,
    /// Stride between training windows.
    pub window_stride: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GrinConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            epochs: 12,
            batch_size: 4,
            lr: 5e-3,
            window_len: 24,
            window_stride: 12,
            seed: 13,
        }
    }
}

/// The GRIN imputer.
pub struct GrinImputer {
    /// Hyperparameters.
    pub cfg: GrinConfig,
    state: Option<GrinState>,
}

struct GrinState {
    store: ParamStore,
    fwd: GrinDirection,
    bwd: GrinDirection,
    normalizer: Normalizer,
}

struct GrinDirection {
    gru: GruCell,
    mpnn: Mpnn,
    read1: Linear,
    read2: Linear,
}

impl GrinDirection {
    fn new(
        store: &mut ParamStore,
        prefix: &str,
        hidden: usize,
        graph: &SensorGraph,
        rng: &mut StdRng,
    ) -> Self {
        let (fwd_m, bwd_m) = graph.transition_matrices();
        Self {
            gru: GruCell::new(store, &format!("{prefix}.gru"), 2, hidden, rng),
            mpnn: Mpnn::new(
                store,
                &format!("{prefix}.mpnn"),
                hidden,
                vec![fwd_m, bwd_m],
                graph.n_nodes(),
                1,
                0,
                rng,
            ),
            read1: Linear::new(store, &format!("{prefix}.read1"), hidden, 1, rng),
            read2: Linear::new(store, &format!("{prefix}.read2"), hidden, 1, rng),
        }
    }

    /// Unroll over a window. `xs`/`ms` are per-step `[B, N, 1]` inputs in
    /// this direction's time order. Returns second-stage predictions per step
    /// and the direction's training loss.
    fn unroll(
        &self,
        g: &mut Graph<'_>,
        xs: &[Tx],
        ms: &[Tx],
        b: usize,
        n: usize,
        hidden: usize,
    ) -> (Vec<Tx>, Tx) {
        let mut h = g.input(NdArray::zeros(&[b, n, hidden]));
        let mut preds = Vec::with_capacity(xs.len());
        let mut losses = Vec::with_capacity(xs.len() * 2);
        for t in 0..xs.len() {
            // first-stage prediction from the recurrent state
            let x1 = self.read1.forward(g, h); // [B, N, 1]
            // spatial refinement of the hidden state ([B, N, d] as-is);
            // bounded with tanh so the refined state fed back into the GRU
            // cannot grow geometrically across the unroll
            let h_sp = self.mpnn.forward(g, h);
            let h_sum = g.add(h, h_sp);
            let h_ref = g.tanh(h_sum);
            let x2 = self.read2.forward(g, h_ref); // [B, N, 1]
            preds.push(x2);
            losses.push(g.mae_masked(x1, xs[t], ms[t]));
            losses.push(g.mae_masked(x2, xs[t], ms[t]));
            // fill input with the second-stage estimate and step the GRU
            let mx = g.mul(ms[t], xs[t]);
            let ones = g.input(NdArray::ones(&[b, n, 1]));
            let inv = g.sub(ones, ms[t]);
            let fill = g.mul(inv, x2);
            let x_c = g.add(mx, fill);
            let inp = g.concat_last(&[x_c, ms[t]]); // [B, N, 2]
            let inp2 = g.reshape(inp, &[b * n, 2]);
            let h2 = g.reshape(h_ref, &[b * n, hidden]);
            let h_next = self.gru.step(g, inp2, h2);
            h = g.reshape(h_next, &[b, n, hidden]);
        }
        let mut total = losses[0];
        for &l in &losses[1..] {
            total = g.add(total, l);
        }
        (preds, total)
    }
}

impl GrinImputer {
    /// Create an untrained GRIN imputer.
    pub fn new(cfg: GrinConfig) -> Self {
        Self { cfg, state: None }
    }

    /// Impute a (possibly differently-masked) panel with the already-trained
    /// model. Panics if `fit_impute` has not been called.
    pub fn impute_panel(&self, data: &SpatioTemporalDataset) -> NdArray {
        let st = self.state.as_ref().expect("GRIN not trained yet");
        let hidden = self.cfg.hidden;
        impute_panel_by_windows(data, self.cfg.window_len, |w| impute_one(st, w, hidden))
    }
}

impl Default for GrinImputer {
    fn default() -> Self {
        Self::new(GrinConfig::default())
    }
}

fn window_steps(g: &mut Graph<'_>, ws: &[NdArray], l: usize, reverse: bool) -> Vec<Tx> {
    let b = ws.len();
    let n = ws[0].shape()[0];
    (0..l)
        .map(|t| {
            let src_t = if reverse { l - 1 - t } else { t };
            let mut arr = NdArray::zeros(&[b, n, 1]);
            for (bi, w) in ws.iter().enumerate() {
                for i in 0..n {
                    arr.data_mut()[bi * n + i] = w.data()[i * l + src_t];
                }
            }
            g.input(arr)
        })
        .collect()
}

fn run(
    state: (&ParamStore, &GrinDirection, &GrinDirection),
    vals: &[NdArray],
    masks: &[NdArray],
    hidden: usize,
    l: usize,
    train: bool,
) -> (Vec<NdArray>, st_tensor::graph::Gradients) {
    let (store, fwd, bwd) = state;
    let b = vals.len();
    let n = vals[0].shape()[0];
    let mut g = if train { Graph::new(store) } else { Graph::new_eval(store) };
    let xs_f = window_steps(&mut g, vals, l, false);
    let ms_f = window_steps(&mut g, masks, l, false);
    let xs_b = window_steps(&mut g, vals, l, true);
    let ms_b = window_steps(&mut g, masks, l, true);
    let (pf, loss_f) = fwd.unroll(&mut g, &xs_f, &ms_f, b, n, hidden);
    let (pb, loss_b) = bwd.unroll(&mut g, &xs_b, &ms_b, b, n, hidden);
    let loss = g.add(loss_f, loss_b);
    let preds: Vec<NdArray> = (0..l)
        .map(|t| {
            let a = g.value(pf[t]);
            let c = g.value(pb[l - 1 - t]);
            a.zip_map(c, |x, y| 0.5 * (x + y))
        })
        .collect();
    let grads = if train { g.backward(loss) } else { st_tensor::graph::Gradients::default() };
    (preds, grads)
}

impl Imputer for GrinImputer {
    fn name(&self) -> &'static str {
        "GRIN"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let normalizer = Normalizer::fit(data);
        let mut store = ParamStore::new();
        let fwd = GrinDirection::new(&mut store, "fwd", cfg.hidden, &data.graph, &mut rng);
        let bwd = GrinDirection::new(&mut store, "bwd", cfg.hidden, &data.graph, &mut rng);
        let mut opt = Adam::new(cfg.lr);

        let windows = data.windows(Split::Train, cfg.window_len, cfg.window_stride);
        assert!(!windows.is_empty(), "GRIN: no training windows");
        let prepared: Vec<(NdArray, NdArray)> = windows
            .iter()
            .map(|w| {
                let mut z = w.values.clone();
                normalizer.normalize_window(&mut z);
                let m = w.cond_mask();
                (z.mul(&m), m)
            })
            .collect();

        let mut order: Vec<usize> = (0..prepared.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let vals: Vec<NdArray> = chunk.iter().map(|&i| prepared[i].0.clone()).collect();
                let masks: Vec<NdArray> = chunk.iter().map(|&i| prepared[i].1.clone()).collect();
                let (_, mut grads) =
                    run((&store, &fwd, &bwd), &vals, &masks, cfg.hidden, cfg.window_len, true);
                clip_grad_norm(&mut grads, 5.0);
                opt.step(&mut store, &grads);
            }
        }

        self.state = Some(GrinState { store, fwd, bwd, normalizer });
        let st = self.state.as_ref().unwrap();
        impute_panel_by_windows(data, cfg.window_len, |w| impute_one(st, w, cfg.hidden))
    }
}

fn impute_one(st: &GrinState, w: &Window, hidden: usize) -> NdArray {
    let (n, l) = (w.n_nodes(), w.len());
    let mut z = w.values.clone();
    st.normalizer.normalize_window(&mut z);
    let m = w.cond_mask();
    let zv = z.mul(&m);
    let (preds, _) = run((&st.store, &st.fwd, &st.bwd), &[zv], &[m], hidden, l, false);
    let mut out = NdArray::zeros(&[n, l]);
    for (t, p) in preds.iter().enumerate() {
        for i in 0..n {
            out.data_mut()[i * l + t] = p.data()[i];
        }
    }
    st.normalizer.denormalize_window(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    #[test]
    fn grin_trains_and_beats_mean() {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 6,
            n_days: 8,
            seed: 61,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 67);
        let mut grin = GrinImputer::new(GrinConfig {
            hidden: 12,
            epochs: 6,
            window_len: 12,
            window_stride: 12,
            ..Default::default()
        });
        let out = grin.fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
        let g_err = evaluate_panel(&d, &out, Split::Test).mae();
        let m_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(g_err < m_err, "GRIN {g_err:.3} vs MEAN {m_err:.3}");
    }
}
