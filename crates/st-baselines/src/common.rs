//! Shared baseline interfaces and evaluation helpers.

use st_data::dataset::{SpatioTemporalDataset, Split};
use st_metrics::MaskedErrors;
use st_tensor::NdArray;

/// A deterministic imputation method.
pub trait Imputer {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fit on the visible values of `data` and return a fully imputed
    /// `[T, N]` panel. Implementations must never read values at positions
    /// where `observed == 0` or `eval == 1`.
    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray;
}

/// A probabilistic imputation method (evaluated by CRPS, Table IV).
pub trait ProbabilisticImputer: Imputer {
    /// Draw `n_samples` imputed panels (each `[T, N]`).
    fn sample_ensemble(
        &mut self,
        data: &SpatioTemporalDataset,
        n_samples: usize,
        seed: u64,
    ) -> Vec<NdArray>;
}

/// Extract what an imputer is allowed to see: values with hidden positions
/// zeroed, and the visibility mask (`observed == 1 && eval == 0`).
pub fn visible(data: &SpatioTemporalDataset) -> (NdArray, NdArray) {
    let mask = data
        .observed_mask
        .zip_map(&data.eval_mask, |o, e| if o > 0.0 && e == 0.0 { 1.0 } else { 0.0 });
    let values = data.values.mul(&mask);
    (values, mask)
}

/// Score an imputed panel against the ground truth on the evaluation-masked
/// positions of one split (the paper evaluates "only on the manually masked
/// parts of the test set").
pub fn evaluate_panel(
    data: &SpatioTemporalDataset,
    imputed: &NdArray,
    split: Split,
) -> MaskedErrors {
    assert_eq!(imputed.shape(), data.values.shape(), "imputed panel shape mismatch");
    let (start, end) = data.split_range(split);
    let n = data.n_nodes();
    let mut acc = MaskedErrors::new();
    acc.update(
        &imputed.data()[start * n..end * n],
        &data.values.data()[start * n..end * n],
        &data.eval_mask.data()[start * n..end * n],
    );
    acc
}

/// Cover the whole panel with windows of length `len` (non-overlapping, with
/// one extra right-aligned window for the tail), let `impute` fill each
/// `[N, L]` window, and stitch results into a `[T, N]` panel. Visible values
/// pass through unchanged.
pub fn impute_panel_by_windows(
    data: &SpatioTemporalDataset,
    len: usize,
    mut impute: impl FnMut(&st_data::dataset::Window) -> NdArray,
) -> NdArray {
    let (t_len, n) = (data.n_steps(), data.n_nodes());
    assert!(t_len >= len, "panel shorter than window");
    let (vals, mask) = visible(data);
    let mut out = vals.clone();
    let mut starts: Vec<usize> = (0..=(t_len - len)).step_by(len).collect();
    if starts.last() != Some(&(t_len - len)) {
        starts.push(t_len - len);
    }
    for t0 in starts {
        let w = data.window_at(t0, len);
        let filled = impute(&w); // [N, L]
        assert_eq!(filled.shape(), &[n, len], "window imputation shape mismatch");
        for l in 0..len {
            for i in 0..n {
                let idx = (t0 + l) * n + i;
                if mask.data()[idx] == 0.0 {
                    out.data_mut()[idx] = filled.data()[i * len + l];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::{random_plane_layout, SensorGraph};

    fn dataset() -> SpatioTemporalDataset {
        let (t, n) = (40, 3);
        let mut observed = NdArray::ones(&[t, n]);
        observed.data_mut()[4] = 0.0;
        let mut eval = NdArray::zeros(&[t, n]);
        eval.data_mut()[100] = 1.0; // t=33 (test split), n=1
        eval.data_mut()[7] = 1.0; // train split position
        SpatioTemporalDataset {
            name: "t".into(),
            values: NdArray::from_vec(&[t, n], (0..t * n).map(|i| i as f32).collect()),
            observed_mask: observed,
            eval_mask: eval,
            steps_per_day: 24,
            graph: SensorGraph::from_coords(random_plane_layout(n, 5.0, 1), 0.1),
            train_frac: 0.7,
            valid_frac: 0.1,
        }
    }

    #[test]
    fn visible_hides_eval_and_unobserved() {
        let d = dataset();
        let (vals, mask) = visible(&d);
        assert_eq!(mask.data()[4], 0.0);
        assert_eq!(mask.data()[100], 0.0);
        assert_eq!(mask.data()[7], 0.0);
        assert_eq!(mask.data()[5], 1.0);
        assert_eq!(vals.data()[100], 0.0);
        assert_eq!(vals.data()[5], 5.0);
    }

    #[test]
    fn evaluate_only_on_split_eval_positions() {
        let d = dataset();
        // perfect everywhere except the test-split eval position
        let mut imputed = d.values.clone();
        imputed.data_mut()[100] += 2.0;
        imputed.data_mut()[7] += 100.0; // train-split eval: must not count in Test
        let acc = evaluate_panel(&d, &imputed, Split::Test);
        assert_eq!(acc.count(), 1.0);
        assert!((acc.mae() - 2.0).abs() < 1e-6);
        let acc_train = evaluate_panel(&d, &imputed, Split::Train);
        assert!((acc_train.mae() - 100.0).abs() < 1e-6);
    }
}
