//! MICE: multiple imputation by chained equations (White et al. 2011).
//!
//! Each round regresses every node's series on all other nodes' current
//! filled values with a ridge regressor, then replaces the missing entries
//! with the fitted values. Rows are subsampled for the regression to keep
//! the normal-equation solves fast at panel scale.

use crate::common::{visible, Imputer};
use crate::linalg::ridge_solve;
use st_data::dataset::SpatioTemporalDataset;
use st_tensor::NdArray;

/// Chained-equations imputer with ridge regressors.
#[derive(Debug)]
pub struct MiceImputer {
    /// Number of chained rounds.
    pub rounds: usize,
    /// Ridge penalty.
    pub lambda: f32,
    /// Maximum number of time rows used per regression.
    pub max_rows: usize,
}

impl Default for MiceImputer {
    fn default() -> Self {
        Self { rounds: 3, lambda: 1.0, max_rows: 1500 }
    }
}

impl Imputer for MiceImputer {
    fn name(&self) -> &'static str {
        "MICE"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        let (t_len, n) = (data.n_steps(), data.n_nodes());

        // Initial fill: node means.
        let mut mean = vec![0.0f64; n];
        let mut cnt = vec![0.0f64; n];
        for t in 0..t_len {
            for i in 0..n {
                if mask.data()[t * n + i] > 0.0 {
                    mean[i] += vals.data()[t * n + i] as f64;
                    cnt[i] += 1.0;
                }
            }
        }
        for i in 0..n {
            if cnt[i] > 0.0 {
                mean[i] /= cnt[i];
            }
        }
        let mut filled = vals.clone();
        for t in 0..t_len {
            for i in 0..n {
                if mask.data()[t * n + i] == 0.0 {
                    filled.data_mut()[t * n + i] = mean[i] as f32;
                }
            }
        }

        let row_step = (t_len / self.max_rows).max(1);
        for _round in 0..self.rounds {
            for i in 0..n {
                // Gather regression rows: times where node i is visible.
                let mut x = Vec::new();
                let mut y = Vec::new();
                let mut rows = 0usize;
                let mut t = 0usize;
                while t < t_len {
                    if mask.data()[t * n + i] > 0.0 {
                        for j in 0..n {
                            if j != i {
                                x.push(filled.data()[t * n + j]);
                            }
                        }
                        x.push(1.0); // intercept
                        y.push(vals.data()[t * n + i]);
                        rows += 1;
                    }
                    t += row_step;
                }
                if rows < n {
                    continue; // not enough data to regress this node
                }
                let beta = ridge_solve(&x, &y, rows, n, self.lambda);
                // Predict the missing entries of node i.
                for t in 0..t_len {
                    if mask.data()[t * n + i] == 0.0 {
                        let mut pred = beta[n - 1]; // intercept
                        let mut bi = 0usize;
                        for j in 0..n {
                            if j != i {
                                pred += beta[bi] * filled.data()[t * n + j];
                                bi += 1;
                            }
                        }
                        filled.data_mut()[t * n + i] = pred;
                    }
                }
            }
        }
        filled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::dataset::Split;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    fn dataset() -> SpatioTemporalDataset {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 10,
            n_days: 10,
            seed: 13,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 17);
        d
    }

    #[test]
    fn fills_all_positions() {
        let d = dataset();
        let out = MiceImputer::default().fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn beats_node_means_on_correlated_data() {
        let d = dataset();
        let mice = evaluate_panel(&d, &MiceImputer::default().fit_impute(&d), Split::Test).mae();
        let mean = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(mice < mean, "MICE {mice:.3} vs MEAN {mean:.3}");
    }

    #[test]
    fn more_rounds_do_not_blow_up() {
        let d = dataset();
        let mut m = MiceImputer { rounds: 5, ..Default::default() };
        let out = m.fit_impute(&d);
        let err = evaluate_panel(&d, &out, Split::Test).mae();
        assert!(err.is_finite() && err < 100.0);
    }
}
