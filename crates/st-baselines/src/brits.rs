//! BRITS: bidirectional recurrent imputation for time series
//! (Cao et al., NeurIPS 2018).
//!
//! Faithful-but-compact re-implementation on the `st-tensor` substrate: per
//! direction, a GRU whose hidden state is decayed by a learnable function of
//! the time-since-last-observation (`γ = exp(−relu(W δ + b))`), a history
//! regression `x̂_t = W_h h_{t−1}` trained on observed values, and
//! complement-filled inputs `x_c = m ⊙ x + (1−m) ⊙ x̂`. The bidirectional
//! pair is trained with per-direction regression losses plus a consistency
//! loss, and imputes with the average of the two directions.
//! Simplification: the feature-regression branch of full BRITS is omitted
//! (the history branch dominates on these panels; documented in DESIGN.md).

use crate::common::{impute_panel_by_windows, Imputer};
use st_rand::StdRng;
use st_rand::SliceRandom;
use st_rand::SeedableRng;
use st_data::dataset::{SpatioTemporalDataset, Split, Window};
use st_data::normalize::Normalizer;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{GruCell, Linear};
use st_tensor::optim::{clip_grad_norm, Adam};
use st_tensor::param::ParamStore;

/// Training hyperparameters for BRITS.
#[derive(Debug, Clone)]
pub struct BritsConfig {
    /// GRU hidden width.
    pub hidden: usize,
    /// Training epochs over the window set.
    pub epochs: usize,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Window length.
    pub window_len: usize,
    /// Stride between training windows.
    pub window_stride: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BritsConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 15,
            batch_size: 8,
            lr: 5e-3,
            window_len: 24,
            window_stride: 12,
            seed: 11,
        }
    }
}

/// The BRITS imputer.
pub struct BritsImputer {
    /// Hyperparameters.
    pub cfg: BritsConfig,
    state: Option<BritsState>,
}

struct BritsState {
    store: ParamStore,
    fwd: Direction,
    bwd: Direction,
    normalizer: Normalizer,
    n_nodes: usize,
}

/// One direction's parameter set.
struct Direction {
    gru: GruCell,
    hist: Linear,
    decay: Linear,
}

impl Direction {
    fn new(store: &mut ParamStore, prefix: &str, n: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            gru: GruCell::new(store, &format!("{prefix}.gru"), 2 * n, hidden, rng),
            hist: Linear::new(store, &format!("{prefix}.hist"), hidden, n, rng),
            decay: Linear::new(store, &format!("{prefix}.decay"), n, hidden, rng),
        }
    }

    /// Unroll over a window; returns per-step predictions `[B, N]` and the
    /// summed regression loss.
    ///
    /// `xs`/`ms`/`deltas` are per-step `[B, N]` inputs in time order (already
    /// reversed for the backward direction).
    fn unroll(
        &self,
        g: &mut Graph<'_>,
        xs: &[Tx],
        ms: &[Tx],
        deltas: &[Tx],
        b: usize,
        hidden: usize,
    ) -> (Vec<Tx>, Tx) {
        let mut h = g.input(NdArray::zeros(&[b, hidden]));
        let mut preds = Vec::with_capacity(xs.len());
        let mut losses = Vec::with_capacity(xs.len());
        for t in 0..xs.len() {
            // temporal decay of the hidden state
            let dly = self.decay.forward(g, deltas[t]);
            let dly_r = g.relu(dly);
            let neg = g.scale(dly_r, -1.0);
            let gamma = g.exp(neg);
            h = g.mul(h, gamma);
            // history regression from the decayed hidden state
            let x_hat = self.hist.forward(g, h);
            preds.push(x_hat);
            losses.push(g.mae_masked(x_hat, xs[t], ms[t]));
            // complement input and step
            let mx = g.mul(ms[t], xs[t]);
            let ones = g.input(NdArray::ones(&[b, 1]));
            let inv_m = g.sub(ones, ms[t]);
            let mxhat = g.mul(inv_m, x_hat);
            let x_c = g.add(mx, mxhat);
            let inp = g.concat_last(&[x_c, ms[t]]);
            h = self.gru.step(g, inp, h);
        }
        let mut total = losses[0];
        for &l in &losses[1..] {
            total = g.add(total, l);
        }
        (preds, total)
    }
}

impl BritsImputer {
    /// Create an untrained BRITS imputer.
    pub fn new(cfg: BritsConfig) -> Self {
        Self { cfg, state: None }
    }

    /// Impute a (possibly differently-masked) panel with the already-trained
    /// model. Panics if `fit_impute` has not been called.
    pub fn impute_panel(&self, data: &SpatioTemporalDataset) -> NdArray {
        let state = self.state.as_ref().expect("BRITS not trained yet");
        let hidden = self.cfg.hidden;
        impute_panel_by_windows(data, self.cfg.window_len, |w| impute_one(state, w, hidden))
    }
}

impl Default for BritsImputer {
    fn default() -> Self {
        Self::new(BritsConfig::default())
    }
}

/// Per-node time-since-last-observation, normalised by window length.
fn compute_deltas(mask: &NdArray) -> NdArray {
    let (n, l) = (mask.shape()[0], mask.shape()[1]);
    let mut out = NdArray::zeros(&[n, l]);
    for i in 0..n {
        let mut gap = 1.0f32;
        for t in 0..l {
            out.data_mut()[i * l + t] = gap / l as f32;
            if mask.data()[i * l + t] > 0.0 {
                gap = 1.0;
            } else {
                gap += 1.0;
            }
        }
    }
    out
}

/// Reverse a `[N, L]` window along time.
fn reverse_time(a: &NdArray) -> NdArray {
    let (n, l) = (a.shape()[0], a.shape()[1]);
    let mut out = NdArray::zeros(&[n, l]);
    for i in 0..n {
        for t in 0..l {
            out.data_mut()[i * l + t] = a.data()[i * l + (l - 1 - t)];
        }
    }
    out
}

/// Stack per-window `[N, L]` arrays into per-step `[B, N]` tape inputs.
fn step_inputs(g: &mut Graph<'_>, windows: &[NdArray], l: usize) -> Vec<Tx> {
    let b = windows.len();
    let n = windows[0].shape()[0];
    (0..l)
        .map(|t| {
            let mut arr = NdArray::zeros(&[b, n]);
            for (bi, w) in windows.iter().enumerate() {
                for i in 0..n {
                    arr.data_mut()[bi * n + i] = w.data()[i * l + t];
                }
            }
            g.input(arr)
        })
        .collect()
}

impl Imputer for BritsImputer {
    fn name(&self) -> &'static str {
        "BRITS"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = data.n_nodes();
        let normalizer = Normalizer::fit(data);
        let mut store = ParamStore::new();
        let fwd = Direction::new(&mut store, "fwd", n, cfg.hidden, &mut rng);
        let bwd = Direction::new(&mut store, "bwd", n, cfg.hidden, &mut rng);
        let mut opt = Adam::new(cfg.lr);

        // Prepare training windows (normalised values + visibility masks).
        let windows = data.windows(Split::Train, cfg.window_len, cfg.window_stride);
        assert!(!windows.is_empty(), "BRITS: no training windows");
        let prepared: Vec<(NdArray, NdArray)> = windows
            .iter()
            .map(|w| {
                let mut z = w.values.clone();
                normalizer.normalize_window(&mut z);
                let m = w.cond_mask();
                (z.mul(&m), m)
            })
            .collect();

        let mut order: Vec<usize> = (0..prepared.len()).collect();
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let batch_vals: Vec<NdArray> =
                    chunk.iter().map(|&i| prepared[i].0.clone()).collect();
                let batch_masks: Vec<NdArray> =
                    chunk.iter().map(|&i| prepared[i].1.clone()).collect();
                let (_, mut grads) = run_batch(
                    &store, &fwd, &bwd, &batch_vals, &batch_masks, cfg.hidden, cfg.window_len, true,
                );
                clip_grad_norm(&mut grads, 5.0);
                opt.step(&mut store, &grads);
            }
        }

        self.state = Some(BritsState { store, fwd, bwd, normalizer, n_nodes: n });
        let state = self.state.as_ref().unwrap();

        impute_panel_by_windows(data, cfg.window_len, |w| impute_one(state, w, cfg.hidden))
    }
}

/// Run one batch; returns (bidirectional predictions per direction averaged
/// per step as `[B, N]` values for imputation use) when `train == false`.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    store: &ParamStore,
    fwd: &Direction,
    bwd: &Direction,
    batch_vals: &[NdArray],
    batch_masks: &[NdArray],
    hidden: usize,
    l: usize,
    train: bool,
) -> (Vec<NdArray>, st_tensor::graph::Gradients) {
    let b = batch_vals.len();
    let mut g = if train { Graph::new(store) } else { Graph::new_eval(store) };

    let deltas_f: Vec<NdArray> = batch_masks.iter().map(compute_deltas).collect();
    let rev_vals: Vec<NdArray> = batch_vals.iter().map(reverse_time).collect();
    let rev_masks: Vec<NdArray> = batch_masks.iter().map(reverse_time).collect();
    let deltas_b: Vec<NdArray> = rev_masks.iter().map(compute_deltas).collect();

    let xs_f = step_inputs(&mut g, batch_vals, l);
    let ms_f = step_inputs(&mut g, batch_masks, l);
    let ds_f = step_inputs(&mut g, &deltas_f, l);
    let xs_b = step_inputs(&mut g, &rev_vals, l);
    let ms_b = step_inputs(&mut g, &rev_masks, l);
    let ds_b = step_inputs(&mut g, &deltas_b, l);

    let (preds_f, loss_f) = fwd.unroll(&mut g, &xs_f, &ms_f, &ds_f, b, hidden);
    let (preds_b, loss_b) = bwd.unroll(&mut g, &xs_b, &ms_b, &ds_b, b, hidden);

    // consistency: forward prediction at t vs backward prediction at l-1-t
    let mut cons_losses = Vec::with_capacity(l);
    let n = batch_vals[0].shape()[0];
    let full_mask = g.input(NdArray::ones(&[b, n]));
    for t in 0..l {
        let pf = preds_f[t];
        let pb = preds_b[l - 1 - t];
        cons_losses.push(g.mse_masked(pf, pb, full_mask));
    }
    let mut cons = cons_losses[0];
    for &c in &cons_losses[1..] {
        cons = g.add(cons, c);
    }
    let cons_w = g.scale(cons, 0.1);
    let sum = g.add(loss_f, loss_b);
    let loss = g.add(sum, cons_w);

    // Collect averaged per-step predictions (for imputation).
    let preds: Vec<NdArray> = (0..l)
        .map(|t| {
            let pf = g.value(preds_f[t]);
            let pb = g.value(preds_b[l - 1 - t]);
            pf.zip_map(pb, |a, c| 0.5 * (a + c))
        })
        .collect();
    let grads = if train { g.backward(loss) } else { st_tensor::graph::Gradients::default() };
    (preds, grads)
}

fn impute_one(state: &BritsState, w: &Window, hidden: usize) -> NdArray {
    let (n, l) = (w.n_nodes(), w.len());
    let mut z = w.values.clone();
    state.normalizer.normalize_window(&mut z);
    let m = w.cond_mask();
    let zv = z.mul(&m);
    let (preds, _) =
        run_batch(&state.store, &state.fwd, &state.bwd, &[zv], &[m], hidden, l, false);
    // preds: per step [1, N] -> assemble [N, L] and denormalise
    let mut out = NdArray::zeros(&[n, l]);
    for (t, p) in preds.iter().enumerate() {
        for i in 0..n {
            out.data_mut()[i * l + t] = p.data()[i];
        }
    }
    state.normalizer.denormalize_window(&mut out);
    debug_assert_eq!(state.n_nodes, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    #[test]
    fn deltas_count_gaps() {
        let mask = NdArray::from_vec(&[1, 5], vec![1.0, 0.0, 0.0, 1.0, 0.0]);
        let d = compute_deltas(&mask);
        let got: Vec<f32> = d.data().iter().map(|&v| v * 5.0).collect();
        assert_eq!(got, vec![1.0, 1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn reverse_time_is_involution() {
        let a = NdArray::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(reverse_time(&reverse_time(&a)), a);
        assert_eq!(reverse_time(&a).data(), &[3., 2., 1., 6., 5., 4.]);
    }

    #[test]
    fn brits_trains_and_beats_mean() {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 6,
            n_days: 8,
            seed: 51,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 53);
        let mut brits = BritsImputer::new(BritsConfig {
            hidden: 16,
            epochs: 8,
            window_len: 12,
            window_stride: 12,
            ..Default::default()
        });
        let out = brits.fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
        let b_err = evaluate_panel(&d, &out, Split::Test).mae();
        let m_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(b_err < m_err, "BRITS {b_err:.3} vs MEAN {m_err:.3}");
    }
}
