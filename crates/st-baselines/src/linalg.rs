//! Small dense linear-algebra helpers (Cholesky ridge solves) used by the
//! MICE / VAR / TRMF / BATF baselines.

/// Solve the ridge system `(XᵀX + λI) β = Xᵀy` for each target column.
///
/// `x` is `[rows, p]` row-major, `y` is `[rows]`. Returns `β` of length `p`.
pub fn ridge_solve(x: &[f32], y: &[f32], rows: usize, p: usize, lambda: f32) -> Vec<f32> {
    assert_eq!(x.len(), rows * p);
    assert_eq!(y.len(), rows);
    let mut xtx = vec![0.0f64; p * p];
    let mut xty = vec![0.0f64; p];
    for r in 0..rows {
        let xr = &x[r * p..(r + 1) * p];
        for i in 0..p {
            let xi = xr[i] as f64;
            if xi == 0.0 {
                continue;
            }
            xty[i] += xi * y[r] as f64;
            for j in i..p {
                xtx[i * p + j] += xi * xr[j] as f64;
            }
        }
    }
    for i in 0..p {
        for j in 0..i {
            xtx[i * p + j] = xtx[j * p + i];
        }
        xtx[i * p + i] += lambda as f64;
    }
    let beta = cholesky_solve(&mut xtx, &xty, p);
    beta.into_iter().map(|v| v as f32).collect()
}

/// Solve `A x = b` for symmetric positive-definite `A` (destroys `a`).
pub fn cholesky_solve(a: &mut [f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    // Cholesky factorisation A = L Lᵀ, stored in the lower triangle of `a`.
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                // Guard against indefiniteness from accumulated error.
                a[i * n + j] = sum.max(1e-12).sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }
    // Forward substitution L z = b
    let mut z = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= a[i * n + k] * z[k];
        }
        z[i] = sum / a[i * n + i];
    }
    // Back substitution Lᵀ x = z
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in (i + 1)..n {
            sum -= a[k * n + i] * x[k];
        }
        x[i] = sum / a[i * n + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [6, 5] -> x = [1, 1]
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        let x = cholesky_solve(&mut a, &[6.0, 5.0], 2);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_recovers_linear_coefficients() {
        // y = 2*x0 - 3*x1 with many samples and tiny lambda
        let rows = 200;
        let mut x = Vec::with_capacity(rows * 2);
        let mut y = Vec::with_capacity(rows);
        for r in 0..rows {
            let a = ((r * 37) % 17) as f32 / 17.0 - 0.5;
            let b = ((r * 61) % 23) as f32 / 23.0 - 0.5;
            x.push(a);
            x.push(b);
            y.push(2.0 * a - 3.0 * b);
        }
        let beta = ridge_solve(&x, &y, rows, 2, 1e-6);
        assert!((beta[0] - 2.0).abs() < 1e-3, "{beta:?}");
        assert!((beta[1] + 3.0).abs() < 1e-3, "{beta:?}");
    }

    #[test]
    fn large_lambda_shrinks_to_zero() {
        let x = vec![1.0f32; 10];
        let y = vec![5.0f32; 10];
        let beta = ridge_solve(&x, &y, 10, 1, 1e9);
        assert!(beta[0].abs() < 1e-3);
    }
}
