//! Statistic baselines: MEAN, DA (daily average), KNN and Lin-ITP
//! (paper Section IV-B, methods 1–4).

use crate::common::{visible, Imputer};
use st_data::dataset::{SpatioTemporalDataset, Split};
use st_data::interpolate::linear_interpolate;
use st_tensor::NdArray;

/// MEAN: impute with each node's historical (training-split) average.
#[derive(Debug, Default)]
pub struct MeanImputer;

impl Imputer for MeanImputer {
    fn name(&self) -> &'static str {
        "MEAN"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        let n = data.n_nodes();
        let (tr0, tr1) = data.split_range(Split::Train);
        let mut mean = vec![0.0f64; n];
        let mut cnt = vec![0.0f64; n];
        for t in tr0..tr1 {
            for i in 0..n {
                if mask.data()[t * n + i] > 0.0 {
                    mean[i] += vals.data()[t * n + i] as f64;
                    cnt[i] += 1.0;
                }
            }
        }
        let global = {
            let s: f64 = mean.iter().sum();
            let c: f64 = cnt.iter().sum();
            if c > 0.0 {
                s / c
            } else {
                0.0
            }
        };
        for i in 0..n {
            mean[i] = if cnt[i] > 0.0 { mean[i] / cnt[i] } else { global };
        }
        let mut out = data.values.mul(&mask);
        for t in 0..data.n_steps() {
            for i in 0..n {
                if mask.data()[t * n + i] == 0.0 {
                    out.data_mut()[t * n + i] = mean[i] as f32;
                }
            }
        }
        out
    }
}

/// DA: impute with the per-node average at the same time of day.
#[derive(Debug, Default)]
pub struct DailyAverageImputer;

impl Imputer for DailyAverageImputer {
    fn name(&self) -> &'static str {
        "DA"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        let n = data.n_nodes();
        let spd = data.steps_per_day;
        let mut sum = vec![0.0f64; n * spd];
        let mut cnt = vec![0.0f64; n * spd];
        for t in 0..data.n_steps() {
            let tod = t % spd;
            for i in 0..n {
                if mask.data()[t * n + i] > 0.0 {
                    sum[i * spd + tod] += vals.data()[t * n + i] as f64;
                    cnt[i * spd + tod] += 1.0;
                }
            }
        }
        // Node-level fallback when a (node, tod) cell is empty.
        let mut node_mean = vec![0.0f64; n];
        for i in 0..n {
            let s: f64 = sum[i * spd..(i + 1) * spd].iter().sum();
            let c: f64 = cnt[i * spd..(i + 1) * spd].iter().sum();
            node_mean[i] = if c > 0.0 { s / c } else { 0.0 };
        }
        let mut out = data.values.mul(&mask);
        for t in 0..data.n_steps() {
            let tod = t % spd;
            for i in 0..n {
                if mask.data()[t * n + i] == 0.0 {
                    let c = cnt[i * spd + tod];
                    out.data_mut()[t * n + i] = if c > 0.0 {
                        (sum[i * spd + tod] / c) as f32
                    } else {
                        node_mean[i] as f32
                    };
                }
            }
        }
        out
    }
}

/// KNN: impute with the average of the `k` geographically nearest nodes that
/// have a visible value at the same time step.
#[derive(Debug)]
pub struct KnnImputer {
    /// Number of neighbours.
    pub k: usize,
}

impl Default for KnnImputer {
    fn default() -> Self {
        Self { k: 5 }
    }
}

impl Imputer for KnnImputer {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        let n = data.n_nodes();
        // Precompute each node's neighbours sorted by distance.
        let neighbours: Vec<Vec<usize>> =
            (0..n).map(|i| data.graph.nearest_neighbors(i, n - 1)).collect();
        // Node means as a final fallback.
        let mut mean = vec![0.0f64; n];
        let mut cnt = vec![0.0f64; n];
        for t in 0..data.n_steps() {
            for i in 0..n {
                if mask.data()[t * n + i] > 0.0 {
                    mean[i] += vals.data()[t * n + i] as f64;
                    cnt[i] += 1.0;
                }
            }
        }
        for i in 0..n {
            if cnt[i] > 0.0 {
                mean[i] /= cnt[i];
            }
        }
        let mut out = data.values.mul(&mask);
        for t in 0..data.n_steps() {
            for i in 0..n {
                if mask.data()[t * n + i] > 0.0 {
                    continue;
                }
                let mut acc = 0.0f64;
                let mut found = 0usize;
                for &j in &neighbours[i] {
                    if mask.data()[t * n + j] > 0.0 {
                        acc += vals.data()[t * n + j] as f64;
                        found += 1;
                        if found == self.k {
                            break;
                        }
                    }
                }
                out.data_mut()[t * n + i] =
                    if found > 0 { (acc / found as f64) as f32 } else { mean[i] as f32 };
            }
        }
        out
    }
}

/// Lin-ITP: per-node linear interpolation along time (torchcde equivalent).
#[derive(Debug, Default)]
pub struct LinearImputer;

impl Imputer for LinearImputer {
    fn name(&self) -> &'static str {
        "Lin-ITP"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        // linear_interpolate works on [N, L]; transpose the [T, N] panel.
        let vt = vals.transpose2d();
        let mt = mask.transpose2d();
        let filled = linear_interpolate(&vt, &mt, 0.0);
        filled.transpose2d()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    fn dataset() -> SpatioTemporalDataset {
        // dense network so spatial neighbours are genuinely informative
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 24,
            n_days: 10,
            seed: 77,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 123);
        d
    }

    #[test]
    fn all_simple_imputers_fill_everything() {
        let d = dataset();
        let mut imps: Vec<Box<dyn Imputer>> = vec![
            Box::new(MeanImputer),
            Box::new(DailyAverageImputer),
            Box::new(KnnImputer::default()),
            Box::new(LinearImputer),
        ];
        for imp in &mut imps {
            let out = imp.fit_impute(&d);
            assert_eq!(out.shape(), d.values.shape());
            assert!(out.data().iter().all(|v| v.is_finite()), "{} produced NaN", imp.name());
        }
    }

    #[test]
    fn ranking_interp_beats_mean_beats_nothing() {
        // On smooth diurnal data: Lin-ITP < DA <= MEAN in MAE (paper's Table III order).
        let d = dataset();
        let mae = |imp: &mut dyn Imputer| {
            let out = imp.fit_impute(&d);
            evaluate_panel(&d, &out, Split::Test).mae()
        };
        let m_mean = mae(&mut MeanImputer);
        let m_da = mae(&mut DailyAverageImputer);
        let m_lin = mae(&mut LinearImputer);
        // Lin-ITP dominates on point missing (paper Table III shows the same
        // order); MEAN vs DA flips by dataset even in the paper, so only
        // require DA to be in the same ballpark as MEAN.
        assert!(m_lin < m_da, "Lin-ITP {m_lin:.3} should beat DA {m_da:.3}");
        assert!(m_lin < m_mean, "Lin-ITP {m_lin:.3} should beat MEAN {m_mean:.3}");
        assert!(m_da < 1.3 * m_mean, "DA {m_da:.3} wildly worse than MEAN {m_mean:.3}");
    }

    #[test]
    fn knn_uses_neighbours() {
        let d = dataset();
        let mut knn = KnnImputer { k: 3 };
        let out = knn.fit_impute(&d);
        let err = evaluate_panel(&d, &out, Split::Test).mae();
        let mean_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        // Spatially correlated data → KNN clearly better than node means.
        assert!(err < mean_err, "KNN {err:.3} vs MEAN {mean_err:.3}");
    }

    #[test]
    fn visible_values_pass_through() {
        let d = dataset();
        let out = MeanImputer.fit_impute(&d);
        let (vals, mask) = visible(&d);
        for i in 0..out.numel() {
            if mask.data()[i] > 0.0 {
                assert_eq!(out.data()[i], vals.data()[i]);
            }
        }
    }
}
