//! BATF: Bayesian augmented tensor factorisation (Chen et al. 2019).
//!
//! Simplification (documented in DESIGN.md §3.7): we keep the *augmented
//! factorisation* structure — explicit global mean, node bias and
//! time-of-day bias capturing transportation domain knowledge, plus a
//! low-rank interaction term — but fit it with alternating least squares
//! instead of MCMC. The Bayesian machinery in the original mainly provides
//! regularisation, which the ridge terms replicate.

use crate::common::{visible, Imputer};
use crate::linalg::cholesky_solve;
use crate::trmf::symmetrise_add_ridge;
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_data::dataset::SpatioTemporalDataset;
use st_tensor::NdArray;

/// Augmented factorisation imputer: `x[t,i] ≈ μ + θ_i + η_{tod(t)} + f_i·g_t`.
#[derive(Debug)]
pub struct BatfImputer {
    /// Interaction rank.
    pub rank: usize,
    /// Number of ALS sweeps.
    pub iters: usize,
    /// Ridge penalty on the factors.
    pub lambda: f64,
}

impl Default for BatfImputer {
    fn default() -> Self {
        Self { rank: 8, iters: 10, lambda: 2.0 }
    }
}

impl Imputer for BatfImputer {
    fn name(&self) -> &'static str {
        "BATF"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        let (t_len, n) = (data.n_steps(), data.n_nodes());
        let spd = data.steps_per_day;
        let r = self.rank.min(n);

        let mut mu = 0.0f64;
        let mut theta = vec![0.0f64; n]; // node bias
        let mut eta = vec![0.0f64; spd]; // time-of-day bias
        let mut rng = StdRng::seed_from_u64(7);
        let mut f = NdArray::randn(&[n, r], &mut rng).scale(0.05);
        let mut g = NdArray::randn(&[t_len, r], &mut rng).scale(0.05);

        let lowrank = |f: &NdArray, g: &NdArray, t: usize, i: usize| -> f64 {
            let fi = &f.data()[i * r..(i + 1) * r];
            let gt = &g.data()[t * r..(t + 1) * r];
            fi.iter().zip(gt).map(|(&a, &b)| a as f64 * b as f64).sum()
        };

        for _ in 0..self.iters {
            // --- global mean ---
            let mut num = 0.0;
            let mut den = 0.0;
            for t in 0..t_len {
                for i in 0..n {
                    if mask.data()[t * n + i] > 0.0 {
                        num += vals.data()[t * n + i] as f64
                            - theta[i]
                            - eta[t % spd]
                            - lowrank(&f, &g, t, i);
                        den += 1.0;
                    }
                }
            }
            mu = if den > 0.0 { num / den } else { 0.0 };

            // --- node biases ---
            for i in 0..n {
                let mut num = 0.0;
                let mut den = 1.0; // ridge toward 0
                for t in 0..t_len {
                    if mask.data()[t * n + i] > 0.0 {
                        num += vals.data()[t * n + i] as f64
                            - mu
                            - eta[t % spd]
                            - lowrank(&f, &g, t, i);
                        den += 1.0;
                    }
                }
                theta[i] = num / den;
            }

            // --- time-of-day biases ---
            let mut num_tod = vec![0.0f64; spd];
            let mut den_tod = vec![1.0f64; spd];
            for t in 0..t_len {
                let tod = t % spd;
                for i in 0..n {
                    if mask.data()[t * n + i] > 0.0 {
                        num_tod[tod] += vals.data()[t * n + i] as f64
                            - mu
                            - theta[i]
                            - lowrank(&f, &g, t, i);
                        den_tod[tod] += 1.0;
                    }
                }
            }
            for tod in 0..spd {
                eta[tod] = num_tod[tod] / den_tod[tod];
            }

            // --- low-rank interaction by ALS on the de-biased residual ---
            let resid =
                |t: usize, i: usize| -> f64 { vals.data()[t * n + i] as f64 - mu - theta[i] - eta[t % spd] };
            for i in 0..n {
                let mut a = vec![0.0f64; r * r];
                let mut b = vec![0.0f64; r];
                for t in 0..t_len {
                    if mask.data()[t * n + i] == 0.0 {
                        continue;
                    }
                    let gt = &g.data()[t * r..(t + 1) * r];
                    let y = resid(t, i);
                    for p in 0..r {
                        b[p] += gt[p] as f64 * y;
                        for q in p..r {
                            a[p * r + q] += gt[p] as f64 * gt[q] as f64;
                        }
                    }
                }
                symmetrise_add_ridge(&mut a, r, self.lambda);
                let sol = cholesky_solve(&mut a, &b, r);
                for p in 0..r {
                    f.data_mut()[i * r + p] = sol[p] as f32;
                }
            }
            for t in 0..t_len {
                let mut a = vec![0.0f64; r * r];
                let mut b = vec![0.0f64; r];
                for i in 0..n {
                    if mask.data()[t * n + i] == 0.0 {
                        continue;
                    }
                    let fi = &f.data()[i * r..(i + 1) * r];
                    let y = resid(t, i);
                    for p in 0..r {
                        b[p] += fi[p] as f64 * y;
                        for q in p..r {
                            a[p * r + q] += fi[p] as f64 * fi[q] as f64;
                        }
                    }
                }
                symmetrise_add_ridge(&mut a, r, self.lambda);
                let sol = cholesky_solve(&mut a, &b, r);
                for p in 0..r {
                    g.data_mut()[t * r + p] = sol[p] as f32;
                }
            }
        }

        let mut out = data.values.mul(&mask);
        for t in 0..t_len {
            for i in 0..n {
                if mask.data()[t * n + i] == 0.0 {
                    out.data_mut()[t * n + i] =
                        (mu + theta[i] + eta[t % spd] + lowrank(&f, &g, t, i)) as f32;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::dataset::Split;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    #[test]
    fn beats_mean_via_time_of_day_bias() {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 10,
            n_days: 8,
            seed: 41,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 43);
        let mut batf = BatfImputer { iters: 6, ..Default::default() };
        let out = batf.fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
        let b_err = evaluate_panel(&d, &out, Split::Test).mae();
        let m_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(b_err < m_err, "BATF {b_err:.3} vs MEAN {m_err:.3}");
    }

    #[test]
    fn captures_pure_bias_structure_exactly() {
        // x[t,i] = 5 + i + tod: the augmented biases alone should nail this.
        let (t_len, n, spd) = (96, 6, 24);
        let mut vals = NdArray::zeros(&[t_len, n]);
        for t in 0..t_len {
            for i in 0..n {
                vals.data_mut()[t * n + i] = 5.0 + i as f32 + (t % spd) as f32 * 0.5;
            }
        }
        let observed = NdArray::ones(&[t_len, n]);
        let eval = inject_point_missing(&observed, 0.3, 5);
        let d = SpatioTemporalDataset {
            name: "bias".into(),
            values: vals,
            observed_mask: observed,
            eval_mask: eval,
            steps_per_day: spd,
            graph: st_graph::SensorGraph::from_coords(
                st_graph::random_plane_layout(n, 5.0, 2),
                0.1,
            ),
            train_frac: 0.7,
            valid_frac: 0.1,
        };
        let mut batf = BatfImputer { rank: 2, iters: 8, lambda: 0.5 };
        let out = batf.fit_impute(&d);
        let err = evaluate_panel(&d, &out, Split::Test).mae();
        assert!(err < 0.1, "pure-bias data should be captured, MAE {err:.4}");
    }
}
