//! KF baseline: per-node Kalman filter + Rauch–Tung–Striebel smoother with a
//! local-level (random-walk) state model, the standard filterpy-style setup
//! the paper references. Missing steps skip the measurement update; the
//! smoother then distributes information both ways in time.

use crate::common::{visible, Imputer};
use st_data::dataset::SpatioTemporalDataset;
use st_tensor::NdArray;

/// Local-level Kalman smoother applied independently to each node's series.
#[derive(Debug)]
pub struct KalmanImputer {
    /// Process-noise to measurement-noise ratio (`q = ratio · r`).
    pub q_over_r: f64,
}

impl Default for KalmanImputer {
    fn default() -> Self {
        Self { q_over_r: 0.2 }
    }
}

impl Imputer for KalmanImputer {
    fn name(&self) -> &'static str {
        "KF"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        let (t_len, n) = (data.n_steps(), data.n_nodes());
        let mut out = data.values.mul(&mask);
        for i in 0..n {
            let series: Vec<f32> = (0..t_len).map(|t| vals.data()[t * n + i]).collect();
            let obs: Vec<bool> = (0..t_len).map(|t| mask.data()[t * n + i] > 0.0).collect();
            let smoothed = self.smooth_series(&series, &obs);
            for t in 0..t_len {
                if !obs[t] {
                    out.data_mut()[t * n + i] = smoothed[t] as f32;
                }
            }
        }
        out
    }
}

impl KalmanImputer {
    /// Filter + RTS smooth one series; positions with `observed == false`
    /// receive only the time update.
    fn smooth_series(&self, series: &[f32], observed: &[bool]) -> Vec<f64> {
        let t_len = series.len();
        // Estimate measurement noise from first differences of observed runs.
        let mut diffs = Vec::new();
        for t in 1..t_len {
            if observed[t] && observed[t - 1] {
                diffs.push((series[t] - series[t - 1]) as f64);
            }
        }
        let var_diff = if diffs.len() > 1 {
            let m = diffs.iter().sum::<f64>() / diffs.len() as f64;
            diffs.iter().map(|d| (d - m) * (d - m)).sum::<f64>() / (diffs.len() - 1) as f64
        } else {
            1.0
        };
        let r = (var_diff / 2.0).max(1e-6);
        let q = (self.q_over_r * r).max(1e-8);

        // Initial state: first observed value (or 0).
        let first = observed
            .iter()
            .position(|&o| o)
            .map(|t| series[t] as f64)
            .unwrap_or(0.0);

        let mut x_pred = vec![0.0f64; t_len];
        let mut p_pred = vec![0.0f64; t_len];
        let mut x_filt = vec![0.0f64; t_len];
        let mut p_filt = vec![0.0f64; t_len];
        let mut x = first;
        let mut p = var_diff.max(1.0);
        for t in 0..t_len {
            // time update (x unchanged under local level)
            let xp = x;
            let pp = p + q;
            x_pred[t] = xp;
            p_pred[t] = pp;
            if observed[t] {
                let k = pp / (pp + r);
                x = xp + k * (series[t] as f64 - xp);
                p = (1.0 - k) * pp;
            } else {
                x = xp;
                p = pp;
            }
            x_filt[t] = x;
            p_filt[t] = p;
        }
        // RTS smoother.
        let mut x_smooth = x_filt.clone();
        let mut p_smooth = p_filt.clone();
        for t in (0..t_len.saturating_sub(1)).rev() {
            let c = p_filt[t] / p_pred[t + 1];
            x_smooth[t] = x_filt[t] + c * (x_smooth[t + 1] - x_pred[t + 1]);
            p_smooth[t] = p_filt[t] + c * c * (p_smooth[t + 1] - p_pred[t + 1]);
        }
        x_smooth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::dataset::Split;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    #[test]
    fn smoother_recovers_constant_signal() {
        let kf = KalmanImputer::default();
        let series = vec![5.0f32; 50];
        let mut obs = vec![true; 50];
        for t in 20..30 {
            obs[t] = false;
        }
        let sm = kf.smooth_series(&series, &obs);
        for t in 20..30 {
            assert!((sm[t] - 5.0).abs() < 0.2, "t={t}: {}", sm[t]);
        }
    }

    #[test]
    fn smoother_interpolates_through_gap() {
        let kf = KalmanImputer { q_over_r: 1.0 };
        // Ramp 0..50 with a gap in the middle: smoothed estimate should be
        // between the endpoint values.
        let series: Vec<f32> = (0..50).map(|t| t as f32).collect();
        let mut obs = vec![true; 50];
        for t in 20..30 {
            obs[t] = false;
        }
        let sm = kf.smooth_series(&series, &obs);
        for t in 21..29 {
            assert!(sm[t] > 15.0 && sm[t] < 35.0, "t={t}: {}", sm[t]);
        }
        // and increasing across the gap
        assert!(sm[28] > sm[21]);
    }

    #[test]
    fn beats_mean_on_smooth_data() {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 10,
            n_days: 8,
            seed: 31,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 7);
        let kf_err = evaluate_panel(&d, &KalmanImputer::default().fit_impute(&d), Split::Test).mae();
        let mean_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(kf_err < mean_err, "KF {kf_err:.3} vs MEAN {mean_err:.3}");
    }

    #[test]
    fn handles_fully_missing_series() {
        let kf = KalmanImputer::default();
        let sm = kf.smooth_series(&[0.0; 10], &[false; 10]);
        assert!(sm.iter().all(|v| v.is_finite()));
    }
}
