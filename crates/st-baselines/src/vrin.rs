//! V-RIN: variational-recurrent imputation network (Mulyadi et al. 2021).
//!
//! Simplified re-implementation keeping the defining structure — a recurrent
//! encoder producing a per-step Gaussian posterior, a decoder emitting the
//! imputation with quantified (learned) observation uncertainty, trained with
//! the ELBO — while dropping the uncertainty-gated fusion refinements of the
//! original (documented in DESIGN.md §3.7). The quantified uncertainty is
//! exactly what makes this baseline probabilistic for the CRPS table.

use crate::common::{impute_panel_by_windows, Imputer, ProbabilisticImputer};
use st_rand::StdRng;
use st_rand::SliceRandom;
use st_rand::SeedableRng;
use st_data::dataset::{SpatioTemporalDataset, Split, Window};
use st_data::normalize::Normalizer;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{GruCell, Linear};
use st_tensor::optim::{clip_grad_norm, Adam};
use st_tensor::param::ParamStore;

/// Training hyperparameters for V-RIN.
#[derive(Debug, Clone)]
pub struct VrinConfig {
    /// GRU hidden width.
    pub hidden: usize,
    /// Latent dimension per step.
    pub latent: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Window length.
    pub window_len: usize,
    /// Stride between training windows.
    pub window_stride: usize,
    /// KL weight β.
    pub beta: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VrinConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            latent: 8,
            epochs: 15,
            batch_size: 8,
            lr: 3e-3,
            window_len: 24,
            window_stride: 12,
            beta: 0.1,
            seed: 19,
        }
    }
}

/// The V-RIN imputer.
pub struct VrinImputer {
    /// Hyperparameters.
    pub cfg: VrinConfig,
    state: Option<VrinState>,
}

struct VrinState {
    store: ParamStore,
    net: VrinNet,
    normalizer: Normalizer,
}

struct VrinNet {
    gru: GruCell,
    mu_head: Linear,
    logvar_head: Linear,
    dec1: Linear,
    dec2: Linear,
    /// Name of the learned per-node observation log-variance.
    obs_logvar: String,
}

impl VrinNet {
    fn new(store: &mut ParamStore, n: usize, cfg: &VrinConfig, rng: &mut StdRng) -> Self {
        store.insert("vrin.obs_logvar", NdArray::zeros(&[n]));
        Self {
            gru: GruCell::new(store, "vrin.gru", 2 * n, cfg.hidden, rng),
            mu_head: Linear::new(store, "vrin.mu", cfg.hidden, cfg.latent, rng),
            logvar_head: Linear::new(store, "vrin.logvar", cfg.hidden, cfg.latent, rng),
            dec1: Linear::new(store, "vrin.dec1", cfg.latent, cfg.hidden, rng),
            dec2: Linear::new(store, "vrin.dec2", cfg.hidden, n, rng),
            obs_logvar: "vrin.obs_logvar".into(),
        }
    }

    /// Encode a window and decode per-step predictions.
    ///
    /// When `eps` is `Some`, latents are sampled via the reparameterisation
    /// trick (training / posterior sampling); when `None`, the posterior mean
    /// is used (deterministic imputation).
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        g: &mut Graph<'_>,
        xs: &[Tx],
        ms: &[Tx],
        b: usize,
        hidden: usize,
        latent: usize,
        eps: Option<&[NdArray]>,
    ) -> (Vec<Tx>, Tx) {
        let l = xs.len();
        let mut h = g.input(NdArray::zeros(&[b, hidden]));
        let mut preds = Vec::with_capacity(l);
        let mut kls = Vec::with_capacity(l);
        for t in 0..l {
            let inp = g.concat_last(&[xs[t], ms[t]]);
            h = self.gru.step(g, inp, h);
            let mu = self.mu_head.forward(g, h);
            let logvar = self.logvar_head.forward(g, h);
            // KL(q || N(0,1)) = -0.5 Σ (1 + logvar − mu² − e^{logvar})
            let mu2 = g.square(mu);
            let ev = g.exp(logvar);
            let one = g.input(NdArray::ones(&[b, latent]));
            let s1 = g.add(one, logvar);
            let s2 = g.sub(s1, mu2);
            let s3 = g.sub(s2, ev);
            let ksum = g.sum_all(s3);
            kls.push(g.scale(ksum, -0.5 / b as f32));
            // latent: mean or reparameterised sample
            let z = match eps {
                Some(es) => {
                    let e = g.input(es[t].clone());
                    let half = g.scale(logvar, 0.5);
                    let std = g.exp(half);
                    let noise = g.mul(std, e);
                    g.add(mu, noise)
                }
                None => mu,
            };
            let d1 = self.dec1.forward(g, z);
            let a = g.silu(d1);
            preds.push(self.dec2.forward(g, a));
        }
        let mut kl = kls[0];
        for &k in &kls[1..] {
            kl = g.add(kl, k);
        }
        (preds, kl)
    }

    /// Gaussian NLL of observed entries under the learned per-node variance.
    fn nll(&self, g: &mut Graph<'_>, preds: &[Tx], xs: &[Tx], ms: &[Tx]) -> Tx {
        let logvar = g.param(&self.obs_logvar); // [N], broadcasts over [B, N]
        let inv = {
            let neg = g.scale(logvar, -1.0);
            g.exp(neg)
        };
        let mut terms = Vec::with_capacity(preds.len());
        let mut mask_total = 0.0f32;
        for t in 0..preds.len() {
            let diff = g.sub(preds[t], xs[t]);
            let sq = g.square(diff);
            let weighted = g.mul(sq, inv);
            let lv_term = g.add(weighted, logvar);
            let masked = g.mul(lv_term, ms[t]);
            terms.push(g.sum_all(masked));
            mask_total += g.value(ms[t]).sum() as f32;
        }
        let mut s = terms[0];
        for &t in &terms[1..] {
            s = g.add(s, t);
        }
        g.scale(s, 0.5 / mask_total.max(1.0))
    }
}

impl VrinImputer {
    /// Create an untrained V-RIN imputer.
    pub fn new(cfg: VrinConfig) -> Self {
        Self { cfg, state: None }
    }

    fn ensure_trained(&mut self, data: &SpatioTemporalDataset) {
        if self.state.is_some() {
            return;
        }
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = data.n_nodes();
        let normalizer = Normalizer::fit(data);
        let mut store = ParamStore::new();
        let net = VrinNet::new(&mut store, n, &cfg, &mut rng);
        let mut opt = Adam::new(cfg.lr);

        let windows = data.windows(Split::Train, cfg.window_len, cfg.window_stride);
        assert!(!windows.is_empty(), "V-RIN: no training windows");
        let prepared: Vec<(NdArray, NdArray)> = windows
            .iter()
            .map(|w| {
                let mut z = w.values.clone();
                normalizer.normalize_window(&mut z);
                let m = w.cond_mask();
                (z.mul(&m), m)
            })
            .collect();

        let l = cfg.window_len;
        let mut order: Vec<usize> = (0..prepared.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let vals: Vec<NdArray> = chunk.iter().map(|&i| prepared[i].0.clone()).collect();
                let masks: Vec<NdArray> = chunk.iter().map(|&i| prepared[i].1.clone()).collect();
                let b = vals.len();
                let eps: Vec<NdArray> =
                    (0..l).map(|_| NdArray::randn(&[b, cfg.latent], &mut rng)).collect();
                let mut g = Graph::new(&store);
                let xs = crate::rgain::step_in(&mut g, &vals, l);
                let ms = crate::rgain::step_in(&mut g, &masks, l);
                let (preds, kl) =
                    net.forward(&mut g, &xs, &ms, b, cfg.hidden, cfg.latent, Some(&eps));
                let nll = net.nll(&mut g, &preds, &xs, &ms);
                let klw = g.scale(kl, cfg.beta / l as f32);
                let loss = g.add(nll, klw);
                let mut grads = g.backward(loss);
                clip_grad_norm(&mut grads, 5.0);
                opt.step(&mut store, &grads);
            }
        }
        self.state = Some(VrinState { store, net, normalizer });
    }

    fn impute_window_with(
        &self,
        w: &Window,
        eps_seed: Option<u64>,
        with_obs_noise: bool,
    ) -> NdArray {
        let st = self.state.as_ref().expect("V-RIN not trained");
        let cfg = &self.cfg;
        let (n, l) = (w.n_nodes(), w.len());
        let mut z = w.values.clone();
        st.normalizer.normalize_window(&mut z);
        let m = w.cond_mask();
        let zv = z.mul(&m);
        let mut g = Graph::new_eval(&st.store);
        let xs = crate::rgain::step_in(&mut g, &[zv], l);
        let ms = crate::rgain::step_in(&mut g, &[m], l);
        let eps_arrays = eps_seed.map(|s| {
            let mut r = StdRng::seed_from_u64(s);
            (0..l).map(|_| NdArray::randn(&[1, cfg.latent], &mut r)).collect::<Vec<_>>()
        });
        let (preds, _) = st.net.forward(
            &mut g,
            &xs,
            &ms,
            1,
            cfg.hidden,
            cfg.latent,
            eps_arrays.as_deref(),
        );
        let obs_std: Vec<f32> = st
            .store
            .get(&st.net.obs_logvar)
            .unwrap()
            .data()
            .iter()
            .map(|&lv| (0.5 * lv).exp())
            .collect();
        let mut out = NdArray::zeros(&[n, l]);
        let mut noise_rng = eps_seed.map(|s| StdRng::seed_from_u64(s.wrapping_add(1)));
        for (t, &p) in preds.iter().enumerate() {
            for i in 0..n {
                let mut v = g.value(p).data()[i];
                if with_obs_noise {
                    if let Some(r) = noise_rng.as_mut() {
                        let z: f32 =
                            st_rand::Distribution::sample(&st_rand::StandardNormal, r);
                        v += obs_std[i] * z;
                    }
                }
                out.data_mut()[i * l + t] = v;
            }
        }
        st.normalizer.denormalize_window(&mut out);
        out
    }
}

impl Default for VrinImputer {
    fn default() -> Self {
        Self::new(VrinConfig::default())
    }
}

impl Imputer for VrinImputer {
    fn name(&self) -> &'static str {
        "V-RIN"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        self.ensure_trained(data);
        let me = &*self;
        impute_panel_by_windows(data, self.cfg.window_len, |w| {
            me.impute_window_with(w, None, false)
        })
    }
}

impl ProbabilisticImputer for VrinImputer {
    fn sample_ensemble(
        &mut self,
        data: &SpatioTemporalDataset,
        n_samples: usize,
        seed: u64,
    ) -> Vec<NdArray> {
        self.ensure_trained(data);
        let me = &*self;
        (0..n_samples)
            .map(|s| {
                impute_panel_by_windows(data, self.cfg.window_len, |w| {
                    me.impute_window_with(
                        w,
                        Some(seed.wrapping_mul(1000).wrapping_add(s as u64 * 7919 + w.t_start as u64)),
                        true,
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    fn dataset() -> SpatioTemporalDataset {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 6,
            n_days: 8,
            seed: 81,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 83);
        d
    }

    fn small_cfg() -> VrinConfig {
        VrinConfig { hidden: 16, latent: 4, epochs: 8, window_len: 12, window_stride: 12, ..Default::default() }
    }

    #[test]
    fn vrin_trains_and_beats_mean() {
        let d = dataset();
        let mut vrin = VrinImputer::new(small_cfg());
        let out = vrin.fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
        let v_err = evaluate_panel(&d, &out, Split::Test).mae();
        let m_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(v_err < m_err, "V-RIN {v_err:.3} vs MEAN {m_err:.3}");
    }

    #[test]
    fn ensemble_has_spread() {
        let d = dataset();
        let mut vrin = VrinImputer::new(small_cfg());
        let samples = vrin.sample_ensemble(&d, 4, 1);
        assert_eq!(samples.len(), 4);
        // at eval positions, samples should not be identical
        let mut any_diff = false;
        for i in 0..d.eval_mask.numel() {
            if d.eval_mask.data()[i] > 0.0 && (samples[0].data()[i] - samples[1].data()[i]).abs() > 1e-6 {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "posterior samples are identical");
    }
}
