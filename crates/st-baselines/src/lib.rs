//! # st-baselines
//!
//! Every comparison method from the paper's Table III/IV, re-implemented in
//! Rust on the same substrates as PriSTI:
//!
//! | group | methods | module |
//! |---|---|---|
//! | statistic | MEAN, DA, KNN, Lin-ITP | [`simple`] |
//! | classic ML | KF (Kalman smoother), MICE, VAR(1) | [`kalman`], [`mice`], [`var`] |
//! | matrix factorisation | TRMF, BATF | [`trmf`], [`batf`] |
//! | deep autoregressive | BRITS, GRIN | [`brits`], [`grin`] |
//! | deep generative | rGAIN, V-RIN, GP-VAE | [`rgain`], [`vrin`], [`gpvae`] |
//!
//! (CSDI and PriSTI itself live in `pristi-core`, sharing components.)
//! Simplifications relative to the original implementations are documented
//! per-module and in DESIGN.md §3.7.
//!
//! All methods implement [`Imputer`]: fit on the visible values (observed and
//! not evaluation-masked) and return a fully imputed `[T, N]` panel.

#![warn(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod batf;
pub mod brits;
pub mod common;
pub mod gpvae;
pub mod grin;
pub mod kalman;
pub mod linalg;
pub mod mice;
pub mod rgain;
pub mod simple;
pub mod trmf;
pub mod var;
pub mod vrin;

pub use common::{evaluate_panel, visible, Imputer, ProbabilisticImputer};
