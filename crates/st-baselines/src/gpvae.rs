//! GP-VAE: deep probabilistic time-series imputation with a Gaussian-process
//! prior in latent space (Fortuin et al., AISTATS 2020).
//!
//! Simplified re-implementation: a per-step MLP encoder produces a Gaussian
//! posterior, the decoder reconstructs with learned observation variance, and
//! the Cauchy-kernel GP prior over time is approximated by a first-order
//! smoothness penalty `λ Σ_t ‖μ_t − μ_{t−1}‖²` on top of the standard KL —
//! the component of the GP prior that actually shapes imputations (temporal
//! coupling of the latents). Documented in DESIGN.md §3.7.

use crate::common::{impute_panel_by_windows, Imputer, ProbabilisticImputer};
use crate::rgain::step_in;
use st_rand::StdRng;
use st_rand::SliceRandom;
use st_rand::SeedableRng;
use st_data::dataset::{SpatioTemporalDataset, Split, Window};
use st_data::normalize::Normalizer;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::Linear;
use st_tensor::optim::{clip_grad_norm, Adam};
use st_tensor::param::ParamStore;

/// Training hyperparameters for GP-VAE.
#[derive(Debug, Clone)]
pub struct GpvaeConfig {
    /// Encoder/decoder hidden width.
    pub hidden: usize,
    /// Latent dimension per step.
    pub latent: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Window length.
    pub window_len: usize,
    /// Stride between training windows.
    pub window_stride: usize,
    /// KL weight β.
    pub beta: f32,
    /// Latent temporal-smoothness weight λ (the GP-prior surrogate).
    pub smooth: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GpvaeConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            latent: 8,
            epochs: 15,
            batch_size: 8,
            lr: 3e-3,
            window_len: 24,
            window_stride: 12,
            beta: 0.05,
            smooth: 1.0,
            seed: 23,
        }
    }
}

/// The GP-VAE imputer.
pub struct GpvaeImputer {
    /// Hyperparameters.
    pub cfg: GpvaeConfig,
    state: Option<GpvaeState>,
}

struct GpvaeState {
    store: ParamStore,
    net: GpvaeNet,
    normalizer: Normalizer,
}

struct GpvaeNet {
    enc1: Linear,
    enc_mu: Linear,
    enc_logvar: Linear,
    dec1: Linear,
    dec2: Linear,
    obs_logvar: String,
}

impl GpvaeNet {
    fn new(store: &mut ParamStore, n: usize, cfg: &GpvaeConfig, rng: &mut StdRng) -> Self {
        store.insert("gpvae.obs_logvar", NdArray::zeros(&[n]));
        Self {
            enc1: Linear::new(store, "gpvae.enc1", 2 * n, cfg.hidden, rng),
            enc_mu: Linear::new(store, "gpvae.mu", cfg.hidden, cfg.latent, rng),
            enc_logvar: Linear::new(store, "gpvae.logvar", cfg.hidden, cfg.latent, rng),
            dec1: Linear::new(store, "gpvae.dec1", cfg.latent, cfg.hidden, rng),
            dec2: Linear::new(store, "gpvae.dec2", cfg.hidden, n, rng),
            obs_logvar: "gpvae.obs_logvar".into(),
        }
    }

    /// Encode → (sample or mean) → decode each step.
    ///
    /// Returns per-step predictions, the summed KL, and the latent-smoothness
    /// penalty (the GP-prior surrogate).
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        g: &mut Graph<'_>,
        xs: &[Tx],
        ms: &[Tx],
        b: usize,
        latent: usize,
        eps: Option<&[NdArray]>,
    ) -> (Vec<Tx>, Tx, Tx) {
        let l = xs.len();
        let mut preds = Vec::with_capacity(l);
        let mut kls = Vec::with_capacity(l);
        let mut mus = Vec::with_capacity(l);
        for t in 0..l {
            let inp = g.concat_last(&[xs[t], ms[t]]);
            let e1 = self.enc1.forward(g, inp);
            let h = g.silu(e1);
            let mu = self.enc_mu.forward(g, h);
            let logvar = self.enc_logvar.forward(g, h);
            mus.push(mu);
            let mu2 = g.square(mu);
            let ev = g.exp(logvar);
            let one = g.input(NdArray::ones(&[b, latent]));
            let s1 = g.add(one, logvar);
            let s2 = g.sub(s1, mu2);
            let s3 = g.sub(s2, ev);
            let ksum = g.sum_all(s3);
            kls.push(g.scale(ksum, -0.5 / b as f32));
            let z = match eps {
                Some(es) => {
                    let e = g.input(es[t].clone());
                    let half = g.scale(logvar, 0.5);
                    let std = g.exp(half);
                    let noise = g.mul(std, e);
                    g.add(mu, noise)
                }
                None => mu,
            };
            let d1 = self.dec1.forward(g, z);
            let a = g.silu(d1);
            preds.push(self.dec2.forward(g, a));
        }
        let mut kl = kls[0];
        for &k in &kls[1..] {
            kl = g.add(kl, k);
        }
        // GP surrogate: Σ_t ‖μ_t − μ_{t−1}‖²
        let mut smooth_terms = Vec::with_capacity(l.saturating_sub(1));
        for t in 1..l {
            let d = g.sub(mus[t], mus[t - 1]);
            let sq = g.square(d);
            smooth_terms.push(g.sum_all(sq));
        }
        let mut smooth = smooth_terms[0];
        for &s in &smooth_terms[1..] {
            smooth = g.add(smooth, s);
        }
        let smooth_norm = g.scale(smooth, 1.0 / b as f32);
        (preds, kl, smooth_norm)
    }
}

impl GpvaeImputer {
    /// Create an untrained GP-VAE imputer.
    pub fn new(cfg: GpvaeConfig) -> Self {
        Self { cfg, state: None }
    }

    fn ensure_trained(&mut self, data: &SpatioTemporalDataset) {
        if self.state.is_some() {
            return;
        }
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = data.n_nodes();
        let normalizer = Normalizer::fit(data);
        let mut store = ParamStore::new();
        let net = GpvaeNet::new(&mut store, n, &cfg, &mut rng);
        let mut opt = Adam::new(cfg.lr);

        let windows = data.windows(Split::Train, cfg.window_len, cfg.window_stride);
        assert!(!windows.is_empty(), "GP-VAE: no training windows");
        let prepared: Vec<(NdArray, NdArray)> = windows
            .iter()
            .map(|w| {
                let mut z = w.values.clone();
                normalizer.normalize_window(&mut z);
                let m = w.cond_mask();
                (z.mul(&m), m)
            })
            .collect();

        let l = cfg.window_len;
        let mut order: Vec<usize> = (0..prepared.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let vals: Vec<NdArray> = chunk.iter().map(|&i| prepared[i].0.clone()).collect();
                let masks: Vec<NdArray> = chunk.iter().map(|&i| prepared[i].1.clone()).collect();
                let b = vals.len();
                let eps: Vec<NdArray> =
                    (0..l).map(|_| NdArray::randn(&[b, cfg.latent], &mut rng)).collect();
                let mut g = Graph::new(&store);
                let xs = step_in(&mut g, &vals, l);
                let ms = step_in(&mut g, &masks, l);
                let (preds, kl, smooth) =
                    net.forward(&mut g, &xs, &ms, b, cfg.latent, Some(&eps));
                // Gaussian NLL on observed entries with learned variance.
                let logvar = g.param(&net.obs_logvar);
                let inv = {
                    let neg = g.scale(logvar, -1.0);
                    g.exp(neg)
                };
                let mut terms = Vec::with_capacity(l);
                let mut mask_total = 0.0f32;
                for t in 0..l {
                    let diff = g.sub(preds[t], xs[t]);
                    let sq = g.square(diff);
                    let wgt = g.mul(sq, inv);
                    let lvt = g.add(wgt, logvar);
                    let masked = g.mul(lvt, ms[t]);
                    terms.push(g.sum_all(masked));
                    mask_total += g.value(ms[t]).sum() as f32;
                }
                let mut nll = terms[0];
                for &t in &terms[1..] {
                    nll = g.add(nll, t);
                }
                let nll_n = g.scale(nll, 0.5 / mask_total.max(1.0));
                let klw = g.scale(kl, cfg.beta / l as f32);
                let smw = g.scale(smooth, cfg.smooth / l as f32);
                let s1 = g.add(nll_n, klw);
                let loss = g.add(s1, smw);
                let mut grads = g.backward(loss);
                clip_grad_norm(&mut grads, 5.0);
                opt.step(&mut store, &grads);
            }
        }
        self.state = Some(GpvaeState { store, net, normalizer });
    }

    fn impute_window_with(&self, w: &Window, eps_seed: Option<u64>, with_obs_noise: bool) -> NdArray {
        let st = self.state.as_ref().expect("GP-VAE not trained");
        let cfg = &self.cfg;
        let (n, l) = (w.n_nodes(), w.len());
        let mut z = w.values.clone();
        st.normalizer.normalize_window(&mut z);
        let m = w.cond_mask();
        let zv = z.mul(&m);
        let mut g = Graph::new_eval(&st.store);
        let xs = step_in(&mut g, &[zv], l);
        let ms = step_in(&mut g, &[m], l);
        let eps_arrays = eps_seed.map(|s| {
            let mut r = StdRng::seed_from_u64(s);
            (0..l).map(|_| NdArray::randn(&[1, cfg.latent], &mut r)).collect::<Vec<_>>()
        });
        let (preds, _, _) = st.net.forward(&mut g, &xs, &ms, 1, cfg.latent, eps_arrays.as_deref());
        let obs_std: Vec<f32> = st
            .store
            .get(&st.net.obs_logvar)
            .unwrap()
            .data()
            .iter()
            .map(|&lv| (0.5 * lv).exp())
            .collect();
        let mut out = NdArray::zeros(&[n, l]);
        let mut noise_rng = eps_seed.map(|s| StdRng::seed_from_u64(s.wrapping_add(1)));
        for (t, &p) in preds.iter().enumerate() {
            for i in 0..n {
                let mut v = g.value(p).data()[i];
                if with_obs_noise {
                    if let Some(r) = noise_rng.as_mut() {
                        v += obs_std[i]
                            * st_rand::Distribution::<f32>::sample(&st_rand::StandardNormal, r);
                    }
                }
                out.data_mut()[i * l + t] = v;
            }
        }
        st.normalizer.denormalize_window(&mut out);
        out
    }
}

impl Default for GpvaeImputer {
    fn default() -> Self {
        Self::new(GpvaeConfig::default())
    }
}

impl Imputer for GpvaeImputer {
    fn name(&self) -> &'static str {
        "GP-VAE"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        self.ensure_trained(data);
        let me = &*self;
        impute_panel_by_windows(data, self.cfg.window_len, |w| {
            me.impute_window_with(w, None, false)
        })
    }
}

impl ProbabilisticImputer for GpvaeImputer {
    fn sample_ensemble(
        &mut self,
        data: &SpatioTemporalDataset,
        n_samples: usize,
        seed: u64,
    ) -> Vec<NdArray> {
        self.ensure_trained(data);
        let me = &*self;
        (0..n_samples)
            .map(|s| {
                impute_panel_by_windows(data, self.cfg.window_len, |w| {
                    me.impute_window_with(
                        w,
                        Some(seed.wrapping_mul(733).wrapping_add(s as u64 * 7907 + w.t_start as u64)),
                        true,
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    fn dataset() -> SpatioTemporalDataset {
        // episode-free panel: learnable for a tiny VAE at smoke budgets
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 6,
            n_days: 8,
            seed: 91,
            episodes_per_week: 0.0,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 97);
        d
    }

    fn small_cfg() -> GpvaeConfig {
        GpvaeConfig { hidden: 16, latent: 4, epochs: 10, window_len: 12, window_stride: 12, ..Default::default() }
    }

    #[test]
    fn gpvae_trains_and_beats_mean() {
        let d = dataset();
        let mut m = GpvaeImputer::new(small_cfg());
        let out = m.fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
        let g_err = evaluate_panel(&d, &out, Split::Test).mae();
        let mean_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(g_err < mean_err, "GP-VAE {g_err:.3} vs MEAN {mean_err:.3}");
    }

    #[test]
    fn ensemble_sampling_works() {
        let d = dataset();
        let mut m = GpvaeImputer::new(small_cfg());
        let samples = m.sample_ensemble(&d, 3, 5);
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|s| s.data().iter().all(|v| v.is_finite())));
    }
}
