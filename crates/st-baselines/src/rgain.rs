//! rGAIN: GAIN (Yoon et al., ICML 2018) with a bidirectional recurrent
//! generator, as used in the paper's baseline table.
//!
//! The generator is a bidirectional GRU that regresses each step's values
//! from its recurrent state; the discriminator is a per-step MLP that, given
//! the imputed vector and a GAIN-style hint, predicts which entries were
//! actually observed. Training alternates discriminator and generator steps
//! with binary cross-entropy from logits (numerically stable via softplus).
//! Simplification: the encoder-decoder of full rGAIN is collapsed into the
//! recurrent generator (documented in DESIGN.md §3.7).

use crate::common::{impute_panel_by_windows, Imputer};
use st_rand::StdRng;
use st_rand::SliceRandom;
use st_rand::{Rng, SeedableRng};
use st_data::dataset::{SpatioTemporalDataset, Split, Window};
use st_data::normalize::Normalizer;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{GruCell, Linear};
use st_tensor::optim::{clip_grad_norm, Adam};
use st_tensor::param::ParamStore;

/// Training hyperparameters for rGAIN.
#[derive(Debug, Clone)]
pub struct RgainConfig {
    /// GRU hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Window length.
    pub window_len: usize,
    /// Stride between training windows.
    pub window_stride: usize,
    /// Reconstruction weight α in the generator loss.
    pub alpha: f32,
    /// Hint rate (fraction of mask entries revealed to the discriminator).
    pub hint_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RgainConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            epochs: 12,
            batch_size: 8,
            lr: 3e-3,
            window_len: 24,
            window_stride: 12,
            alpha: 10.0,
            hint_rate: 0.9,
            seed: 17,
        }
    }
}

/// The rGAIN imputer.
pub struct RgainImputer {
    /// Hyperparameters.
    pub cfg: RgainConfig,
    state: Option<RgainState>,
}

struct RgainState {
    store: ParamStore,
    normalizer: Normalizer,
    hidden: usize,
}

impl RgainImputer {
    /// Create an untrained rGAIN imputer.
    pub fn new(cfg: RgainConfig) -> Self {
        Self { cfg, state: None }
    }
}

impl Default for RgainImputer {
    fn default() -> Self {
        Self::new(RgainConfig::default())
    }
}

struct Generator {
    gru_f: GruCell,
    head_f: Linear,
    gru_b: GruCell,
    head_b: Linear,
}

impl Generator {
    fn new(store: &mut ParamStore, n: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            gru_f: GruCell::new(store, "gen.fwd.gru", 2 * n, hidden, rng),
            head_f: Linear::new(store, "gen.fwd.head", hidden, n, rng),
            gru_b: GruCell::new(store, "gen.bwd.gru", 2 * n, hidden, rng),
            head_b: Linear::new(store, "gen.bwd.head", hidden, n, rng),
        }
    }

    /// Produce per-step imputed vectors `[B, N]` (forward/backward average).
    fn forward(
        &self,
        g: &mut Graph<'_>,
        xs: &[Tx],
        ms: &[Tx],
        b: usize,
        hidden: usize,
    ) -> Vec<Tx> {
        let l = xs.len();
        let run = |g: &mut Graph<'_>, gru: &GruCell, head: &Linear, rev: bool| -> Vec<Tx> {
            let mut h = g.input(NdArray::zeros(&[b, hidden]));
            let mut preds = vec![None; l];
            for step in 0..l {
                let t = if rev { l - 1 - step } else { step };
                let pred = head.forward(g, h);
                preds[t] = Some(pred);
                let mx = g.mul(ms[t], xs[t]);
                let one = g.input(NdArray::ones(&[b, 1]));
                let inv = g.sub(one, ms[t]);
                let fill = g.mul(inv, pred);
                let xc = g.add(mx, fill);
                let inp = g.concat_last(&[xc, ms[t]]);
                h = gru.step(g, inp, h);
            }
            preds.into_iter().map(Option::unwrap).collect()
        };
        let pf = run(g, &self.gru_f, &self.head_f, false);
        let pb = run(g, &self.gru_b, &self.head_b, true);
        (0..l)
            .map(|t| {
                let s = g.add(pf[t], pb[t]);
                g.scale(s, 0.5)
            })
            .collect()
    }
}

struct Discriminator {
    l1: Linear,
    l2: Linear,
}

impl Discriminator {
    fn new(store: &mut ParamStore, n: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            l1: Linear::new(store, "disc.l1", 2 * n, hidden, rng),
            l2: Linear::new(store, "disc.l2", hidden, n, rng),
        }
    }

    /// Per-step logits `[B, N]` for "this entry was observed".
    fn forward(&self, g: &mut Graph<'_>, imputed: Tx, hint: Tx) -> Tx {
        let inp = g.concat_last(&[imputed, hint]);
        let h = self.l1.forward(g, inp);
        let a = g.silu(h);
        self.l2.forward(g, a)
    }
}

/// BCE-from-logits against target `y ∈ {0,1}`, optionally weighted by a mask,
/// averaged over the weight sum: `y·softplus(−z) + (1−y)·softplus(z)`.
fn bce_logits(g: &mut Graph<'_>, logits: Tx, target: Tx, weight: Tx, weight_sum: f32) -> Tx {
    let neg = g.scale(logits, -1.0);
    let sp_neg = g.softplus(neg);
    let sp_pos = g.softplus(logits);
    let t1 = g.mul(target, sp_neg);
    let one = g.input(NdArray::ones(g.shape(target)));
    let inv = g.sub(one, target);
    let t2 = g.mul(inv, sp_pos);
    let sum = g.add(t1, t2);
    let weighted = g.mul(sum, weight);
    let total = g.sum_all(weighted);
    g.scale(total, 1.0 / weight_sum.max(1.0))
}

impl Imputer for RgainImputer {
    fn name(&self) -> &'static str {
        "rGAIN"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = data.n_nodes();
        let normalizer = Normalizer::fit(data);
        let mut store = ParamStore::new();
        let gen = Generator::new(&mut store, n, cfg.hidden, &mut rng);
        let disc = Discriminator::new(&mut store, n, cfg.hidden, &mut rng);
        let mut opt_g = Adam::new(cfg.lr);
        let mut opt_d = Adam::new(cfg.lr);

        let windows = data.windows(Split::Train, cfg.window_len, cfg.window_stride);
        assert!(!windows.is_empty(), "rGAIN: no training windows");
        let prepared: Vec<(NdArray, NdArray)> = windows
            .iter()
            .map(|w| {
                let mut z = w.values.clone();
                normalizer.normalize_window(&mut z);
                let m = w.cond_mask();
                (z.mul(&m), m)
            })
            .collect();

        let l = cfg.window_len;
        let mut order: Vec<usize> = (0..prepared.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let vals: Vec<NdArray> = chunk.iter().map(|&i| prepared[i].0.clone()).collect();
                let masks: Vec<NdArray> = chunk.iter().map(|&i| prepared[i].1.clone()).collect();
                let b = vals.len();
                // Pre-draw hints for this batch.
                let hints: Vec<NdArray> = (0..l)
                    .map(|t| {
                        let mut h = NdArray::zeros(&[b, n]);
                        for (bi, m) in masks.iter().enumerate() {
                            for i in 0..n {
                                let mv = m.data()[i * l + t];
                                h.data_mut()[bi * n + i] =
                                    if rng.random::<f64>() < cfg.hint_rate { mv } else { 0.5 };
                            }
                        }
                        h
                    })
                    .collect();

                for gen_turn in [false, true] {
                    let mut g = Graph::new(&store);
                    let xs = step_in(&mut g, &vals, l);
                    let ms = step_in(&mut g, &masks, l);
                    let preds = gen.forward(&mut g, &xs, &ms, b, cfg.hidden);
                    let mut adv_terms = Vec::with_capacity(l);
                    let mut rec_terms = Vec::with_capacity(l);
                    let weight_sum = (b * n * l) as f32;
                    for t in 0..l {
                        let mx = g.mul(ms[t], xs[t]);
                        let one = g.input(NdArray::ones(&[b, 1]));
                        let inv = g.sub(one, ms[t]);
                        let fill = g.mul(inv, preds[t]);
                        let imputed = g.add(mx, fill);
                        let hint = g.input(hints[t].clone());
                        let logits = disc.forward(&mut g, imputed, hint);
                        let w_all = g.input(NdArray::ones(&[b, n]));
                        if gen_turn {
                            // fool the discriminator at missing entries:
                            // target "observed" (1) weighted by (1-m)
                            let ones_t = g.input(NdArray::ones(&[b, n]));
                            let w = g.sub(ones_t, ms[t]);
                            adv_terms.push(bce_logits(&mut g, logits, ones_t, w, weight_sum));
                            rec_terms.push(g.mae_masked(preds[t], xs[t], ms[t]));
                        } else {
                            adv_terms.push(bce_logits(&mut g, logits, ms[t], w_all, weight_sum));
                        }
                    }
                    let mut loss = adv_terms[0];
                    for &a in &adv_terms[1..] {
                        loss = g.add(loss, a);
                    }
                    if gen_turn {
                        let mut rec = rec_terms[0];
                        for &r in &rec_terms[1..] {
                            rec = g.add(rec, r);
                        }
                        let rec_w = g.scale(rec, cfg.alpha / l as f32);
                        loss = g.add(loss, rec_w);
                    }
                    let mut grads = g.backward(loss);
                    grads.retain_prefix(if gen_turn { "gen." } else { "disc." });
                    clip_grad_norm(&mut grads, 5.0);
                    if gen_turn {
                        opt_g.step(&mut store, &grads);
                    } else {
                        opt_d.step(&mut store, &grads);
                    }
                }
            }
        }

        self.state = Some(RgainState { store, normalizer, hidden: cfg.hidden });
        let st = self.state.as_ref().unwrap();
        let gen2 = Generator {
            gru_f: gen.gru_f,
            head_f: gen.head_f,
            gru_b: gen.gru_b,
            head_b: gen.head_b,
        };
        impute_panel_by_windows(data, cfg.window_len, |w| impute_one(st, &gen2, w))
    }
}

pub(crate) fn step_in(g: &mut Graph<'_>, ws: &[NdArray], l: usize) -> Vec<Tx> {
    let b = ws.len();
    let n = ws[0].shape()[0];
    (0..l)
        .map(|t| {
            let mut arr = NdArray::zeros(&[b, n]);
            for (bi, w) in ws.iter().enumerate() {
                for i in 0..n {
                    arr.data_mut()[bi * n + i] = w.data()[i * l + t];
                }
            }
            g.input(arr)
        })
        .collect()
}

fn impute_one(st: &RgainState, gen: &Generator, w: &Window) -> NdArray {
    let (n, l) = (w.n_nodes(), w.len());
    let mut z = w.values.clone();
    st.normalizer.normalize_window(&mut z);
    let m = w.cond_mask();
    let zv = z.mul(&m);
    let mut g = Graph::new_eval(&st.store);
    let xs = step_in(&mut g, &[zv], l);
    let ms = step_in(&mut g, &[m], l);
    let preds = gen.forward(&mut g, &xs, &ms, 1, st.hidden);
    let mut out = NdArray::zeros(&[n, l]);
    for (t, &p) in preds.iter().enumerate() {
        for i in 0..n {
            out.data_mut()[i * l + t] = g.value(p).data()[i];
        }
    }
    st.normalizer.denormalize_window(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    #[test]
    fn rgain_trains_and_beats_mean() {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 6,
            n_days: 8,
            seed: 71,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 73);
        let mut rgain = RgainImputer::new(RgainConfig {
            hidden: 16,
            epochs: 6,
            window_len: 12,
            window_stride: 12,
            ..Default::default()
        });
        let out = rgain.fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
        let r_err = evaluate_panel(&d, &out, Split::Test).mae();
        let m_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(r_err < m_err, "rGAIN {r_err:.3} vs MEAN {m_err:.3}");
    }

    #[test]
    fn bce_logits_matches_closed_form() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let logits = g.input(NdArray::from_vec(&[1, 2], vec![0.0, 2.0]));
        let target = g.input(NdArray::from_vec(&[1, 2], vec![1.0, 0.0]));
        let w = g.input(NdArray::ones(&[1, 2]));
        let loss = bce_logits(&mut g, logits, target, w, 2.0);
        // entry 1: y=1, z=0 -> softplus(0)=ln2; entry 2: y=0, z=2 -> softplus(2)
        let expect = 0.5 * ((2.0f32).ln() + (1.0 + 2.0f32.exp()).ln());
        assert!((g.value(loss).data()[0] - expect).abs() < 1e-5);
    }
}
