//! TRMF: temporal-regularized matrix factorisation (Yu et al., NeurIPS 2016).
//!
//! `X[t, i] ≈ f_i · g_t` with an AR(1) penalty `‖g_t − W g_{t−1}‖²` on the
//! temporal factors (diagonal `W`, learned), solved by alternating ridge
//! updates (Gauss–Seidel sweep over time for `G`). Node means are removed
//! before factorisation and restored afterwards.

use crate::common::{visible, Imputer};
use crate::linalg::cholesky_solve;
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_data::dataset::SpatioTemporalDataset;
use st_tensor::NdArray;

/// Temporal-regularized matrix factorisation imputer.
#[derive(Debug)]
pub struct TrmfImputer {
    /// Factor rank (paper: 10–50 depending on dataset).
    pub rank: usize,
    /// Number of alternating iterations.
    pub iters: usize,
    /// Ridge penalty on node factors.
    pub lambda_f: f64,
    /// Temporal-regularisation strength on time factors.
    pub lambda_g: f64,
    /// Ridge penalty on the AR coefficients.
    pub lambda_w: f64,
}

impl Default for TrmfImputer {
    fn default() -> Self {
        Self { rank: 10, iters: 12, lambda_f: 1.0, lambda_g: 2.0, lambda_w: 1.0 }
    }
}

impl Imputer for TrmfImputer {
    fn name(&self) -> &'static str {
        "TRMF"
    }

    fn fit_impute(&mut self, data: &SpatioTemporalDataset) -> NdArray {
        let (vals, mask) = visible(data);
        let (t_len, n) = (data.n_steps(), data.n_nodes());
        let r = self.rank.min(n);

        // Remove node means.
        let mut mean = vec![0.0f64; n];
        let mut cnt = vec![0.0f64; n];
        for t in 0..t_len {
            for i in 0..n {
                if mask.data()[t * n + i] > 0.0 {
                    mean[i] += vals.data()[t * n + i] as f64;
                    cnt[i] += 1.0;
                }
            }
        }
        for i in 0..n {
            if cnt[i] > 0.0 {
                mean[i] /= cnt[i];
            }
        }

        let mut rng = StdRng::seed_from_u64(42);
        let mut f = NdArray::randn(&[n, r], &mut rng).scale(0.1); // node factors
        let mut g = NdArray::randn(&[t_len, r], &mut rng).scale(0.1); // time factors
        let mut w = vec![0.8f64; r]; // diagonal AR coefficients

        let resid = |t: usize, i: usize| -> f64 { vals.data()[t * n + i] as f64 - mean[i] };

        for _it in 0..self.iters {
            // --- update node factors F ---
            for i in 0..n {
                let mut a = vec![0.0f64; r * r];
                let mut b = vec![0.0f64; r];
                for t in 0..t_len {
                    if mask.data()[t * n + i] == 0.0 {
                        continue;
                    }
                    let gt = &g.data()[t * r..(t + 1) * r];
                    let y = resid(t, i);
                    for p in 0..r {
                        b[p] += gt[p] as f64 * y;
                        for q in p..r {
                            a[p * r + q] += gt[p] as f64 * gt[q] as f64;
                        }
                    }
                }
                symmetrise_add_ridge(&mut a, r, self.lambda_f);
                let sol = cholesky_solve(&mut a, &b, r);
                for p in 0..r {
                    f.data_mut()[i * r + p] = sol[p] as f32;
                }
            }

            // --- update time factors G (Gauss–Seidel over t) ---
            for t in 0..t_len {
                let mut a = vec![0.0f64; r * r];
                let mut b = vec![0.0f64; r];
                for i in 0..n {
                    if mask.data()[t * n + i] == 0.0 {
                        continue;
                    }
                    let fi = &f.data()[i * r..(i + 1) * r];
                    let y = resid(t, i);
                    for p in 0..r {
                        b[p] += fi[p] as f64 * y;
                        for q in p..r {
                            a[p * r + q] += fi[p] as f64 * fi[q] as f64;
                        }
                    }
                }
                // temporal terms: ‖g_t − W g_{t−1}‖² and ‖g_{t+1} − W g_t‖²
                for p in 0..r {
                    let mut diag = 0.0;
                    let mut rhs = 0.0;
                    if t > 0 {
                        diag += self.lambda_g;
                        rhs += self.lambda_g * w[p] * g.data()[(t - 1) * r + p] as f64;
                    }
                    if t + 1 < t_len {
                        diag += self.lambda_g * w[p] * w[p];
                        rhs += self.lambda_g * w[p] * g.data()[(t + 1) * r + p] as f64;
                    }
                    a[p * r + p] += diag;
                    b[p] += rhs;
                }
                symmetrise_add_ridge(&mut a, r, 1e-3);
                let sol = cholesky_solve(&mut a, &b, r);
                for p in 0..r {
                    g.data_mut()[t * r + p] = sol[p] as f32;
                }
            }

            // --- update diagonal AR coefficients W ---
            for (p, wp) in w.iter_mut().enumerate() {
                let mut num = 0.0f64;
                let mut den = self.lambda_w;
                for t in 1..t_len {
                    let prev = g.data()[(t - 1) * r + p] as f64;
                    num += prev * g.data()[t * r + p] as f64;
                    den += prev * prev;
                }
                *wp = (num / den).clamp(-1.0, 1.0);
            }
        }

        // Reconstruct: visible values pass through, the rest from the factors.
        let mut out = data.values.mul(&mask);
        for t in 0..t_len {
            for i in 0..n {
                if mask.data()[t * n + i] == 0.0 {
                    let fi = &f.data()[i * r..(i + 1) * r];
                    let gt = &g.data()[t * r..(t + 1) * r];
                    let dot: f32 = fi.iter().zip(gt).map(|(&a, &b)| a * b).sum();
                    out.data_mut()[t * n + i] = mean[i] as f32 + dot;
                }
            }
        }
        out
    }
}

pub(crate) fn symmetrise_add_ridge(a: &mut [f64], r: usize, ridge: f64) {
    for p in 0..r {
        for q in 0..p {
            a[p * r + q] = a[q * r + p];
        }
        a[p * r + p] += ridge;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_panel;
    use crate::simple::MeanImputer;
    use st_data::dataset::Split;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    fn dataset() -> SpatioTemporalDataset {
        let mut d = generate_air_quality(&AirQualityConfig {
            n_nodes: 10,
            n_days: 8,
            seed: 23,
            ..Default::default()
        });
        d.eval_mask = inject_point_missing(&d.observed_mask, 0.25, 37);
        d
    }

    #[test]
    fn reconstruction_finite_and_better_than_mean() {
        let d = dataset();
        let mut trmf = TrmfImputer { iters: 8, ..Default::default() };
        let out = trmf.fit_impute(&d);
        assert!(out.data().iter().all(|v| v.is_finite()));
        let t_err = evaluate_panel(&d, &out, Split::Test).mae();
        let m_err = evaluate_panel(&d, &MeanImputer.fit_impute(&d), Split::Test).mae();
        assert!(t_err < m_err, "TRMF {t_err:.3} vs MEAN {m_err:.3}");
    }

    #[test]
    fn low_rank_recovers_exact_low_rank_data() {
        // Build a rank-2 panel, hide 30%, expect near-exact recovery.
        let (t_len, n) = (200, 8);
        let mut vals = NdArray::zeros(&[t_len, n]);
        for t in 0..t_len {
            for i in 0..n {
                let a = (t as f32 * 0.1).sin() * (i as f32 + 1.0);
                let b = (t as f32 * 0.03).cos() * ((i % 3) as f32);
                vals.data_mut()[t * n + i] = a + b + 10.0;
            }
        }
        let observed = NdArray::ones(&[t_len, n]);
        let eval = inject_point_missing(&observed, 0.3, 3);
        let d = SpatioTemporalDataset {
            name: "lowrank".into(),
            values: vals,
            observed_mask: observed,
            eval_mask: eval,
            steps_per_day: 24,
            graph: st_graph::SensorGraph::from_coords(
                st_graph::random_plane_layout(n, 5.0, 1),
                0.1,
            ),
            train_frac: 0.7,
            valid_frac: 0.1,
        };
        let mut trmf = TrmfImputer { rank: 4, iters: 15, lambda_g: 0.1, ..Default::default() };
        let out = trmf.fit_impute(&d);
        let err = evaluate_panel(&d, &out, Split::Test).mae();
        assert!(err < 0.5, "rank-2 data should be recovered well, MAE {err:.3}");
    }
}
