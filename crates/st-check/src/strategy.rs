//! Input-generation strategies for the [`properties!`](crate::properties)
//! macro, mirroring the subset of `proptest`'s strategy combinators the
//! workspace uses: numeric ranges, `prop::collection::vec`, `prop::bool::ANY`,
//! tuples, and `prop_map`.

use st_rand::{Rng, SampleUniform, StdRng};
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating one test-case input from a seeded generator.
pub trait Strategy {
    /// The generated value type (must be `Debug` for failure reports).
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f` (the `proptest` combinator name).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Numeric half-open ranges are strategies: `0u64..100`, `-1.0f32..1.0`, …
impl<T: SampleUniform + Debug> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A vector whose length and elements are both drawn from strategies.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `proptest`-compatible module layout: `prop::collection::vec`,
/// `prop::bool::ANY`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Vectors of `len ∈ size` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { elem, len: size }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::Strategy;
        use st_rand::{Rng, StdRng};

        /// A fair coin.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.random_bool(0.5)
            }
        }

        /// Either boolean with equal probability.
        pub const ANY: Any = Any;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::SeedableRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = 5usize..20;
        for _ in 0..500 {
            assert!((5..20).contains(&s.generate(&mut rng)));
        }
        let f = -1.5f32..2.5;
        for _ in 0..500 {
            assert!((-1.5..2.5).contains(&f.generate(&mut rng)));
        }
    }

    #[test]
    fn vec_strategy_respects_size_and_elems() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = prop::collection::vec(0i64..10, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn tuple_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = (1usize..4, 10usize..13).prop_map(|(a, b)| a * 100 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            let (a, b) = (v / 100, v % 100);
            assert!((1..4).contains(&a) && (10..13).contains(&b));
        }
    }

    #[test]
    fn bool_any_yields_both() {
        let mut rng = StdRng::seed_from_u64(4);
        let vals: Vec<bool> = (0..100).map(|_| prop::bool::ANY.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }

    #[test]
    fn just_returns_value() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Just(42).generate(&mut rng), 42);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..1000, prop::collection::vec(-1.0f64..1.0, 1..5));
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
