//! Minimal, fully deterministic property-testing harness.
//!
//! A hermetic replacement for the parts of `proptest` the workspace used:
//! seeded case generation through [`Strategy`] values, a fixed iteration
//! count, and failure reports that include the case number, the seed, and
//! the generated inputs. Unlike `proptest` there is no shrinking — instead
//! every run is bitwise reproducible: the per-test seed is derived only from
//! the test's name, so a reported failure can be replayed exactly by
//! re-running the test.
//!
//! ```
//! use st_check::prelude::*;
//!
//! properties! {
//!     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes(); // under `#[test]` this runs via the harness
//! ```
//!
//! The crate also hosts the workspace's central finite-difference gradient
//! checker ([`gradcheck`]), shared by the autodiff test suites.

pub mod gradcheck;
mod strategy;

pub use strategy::{prop, Just, Map, Strategy, VecStrategy};

/// One-stop imports for property test files.
pub mod prelude {
    pub use crate::strategy::{prop, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, properties};
}

use st_rand::{SeedableRng, StdRng};

/// Default number of generated cases per property.
pub const DEFAULT_CASES: usize = 64;

/// Base seed mixed into every per-test seed; bump to re-roll all suites.
pub const DEFAULT_SEED: u64 = 0x5749_5354_2d43_4845;

/// Number of cases to run, honouring the `ST_CHECK_CASES` env override.
pub fn case_count() -> usize {
    std::env::var("ST_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// FNV-1a hash of the test name, used to give each property its own stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ DEFAULT_SEED
}

/// Drive one property: generate `case_count()` cases from the name-derived
/// seed and panic with a replayable report on the first failure.
///
/// `case` returns `Err((message, rendered_inputs))` when an assertion fails;
/// panics inside the property body are caught and reported the same way.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), (String, String)>,
{
    let cases = case_count();
    let seed = seed_for(name);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..cases {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        let failure = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err((msg, inputs))) => (msg, inputs),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panic with non-string payload".into());
                (format!("panicked: {msg}"), String::from("<lost in panic>"))
            }
        };
        panic!(
            "property `{name}` failed at case {i}/{cases} (seed {seed:#018x})\n  \
             cause: {}\n  inputs: {}",
            failure.0, failure.1
        );
    }
}

/// Fail the surrounding property unless `cond` holds.
///
/// Must be used inside a [`properties!`] body (it `return`s an `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)*)
            ));
        }
    };
}

/// Fail the surrounding property unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} ({})\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l,
                r
            ));
        }
    }};
}

/// Define seeded property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a regular
/// `#[test]`-able function that draws its arguments from the given
/// [`Strategy`] values [`case_count()`] times. Inside the body use
/// [`prop_assert!`] / [`prop_assert_eq!`]; plain `assert!` also works (the
/// panic is caught and reported with the failing case).
#[macro_export]
macro_rules! properties {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // The argument list forms one tuple strategy, built once;
                // generation is per-case.
                let __strat = ($($strat,)+);
                $crate::run_cases(stringify!($name), |__rng| {
                    let __vals = $crate::Strategy::generate(&__strat, __rng);
                    let __rendered = format!("{:?}", &__vals);
                    #[allow(unused_parens)]
                    let ($($arg,)+) = __vals;
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    __result.map_err(|e| (e, __rendered))
                });
            }
        )*
    };
}
