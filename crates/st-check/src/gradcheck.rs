//! Central finite-difference gradient checking.
//!
//! Every autodiff gradient rule in the workspace is verified against central
//! finite differences `(f(x+ε) − f(x−ε)) / 2ε`. This module owns the
//! numerics — perturbation, tolerance handling, mismatch reporting — so the
//! per-crate test suites only describe how to build the loss.

/// Report of a single gradient comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GradMismatch {
    /// Flat index of the disagreeing coordinate.
    pub index: usize,
    /// Analytic (backward-pass) derivative.
    pub analytic: f32,
    /// Central-finite-difference estimate.
    pub numeric: f32,
    /// Tolerance that was exceeded.
    pub tol: f32,
}

/// Compare an analytic gradient against central finite differences.
///
/// * `n` — number of coordinates in the parameter;
/// * `analytic(i)` — the backward-pass derivative for coordinate `i`;
/// * `shift(i, delta)` — add `delta` to coordinate `i` of the parameter
///   in place (called with `+eps`, `-2eps`... net shifts that always sum
///   back to zero per coordinate);
/// * `loss()` — evaluate the scalar loss at the current parameter value.
///
/// Returns the first mismatch, or `None` when every coordinate agrees within
/// `atol + rtol * max(|analytic|, |numeric|)`.
pub fn first_grad_mismatch(
    n: usize,
    mut analytic: impl FnMut(usize) -> f32,
    mut shift: impl FnMut(usize, f32),
    mut loss: impl FnMut() -> f32,
    eps: f32,
    rtol: f32,
    atol: f32,
) -> Option<GradMismatch> {
    for i in 0..n {
        shift(i, eps);
        let lp = loss();
        shift(i, -2.0 * eps);
        let lm = loss();
        shift(i, eps); // restore
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic(i);
        let tol = atol + rtol * numeric.abs().max(a.abs());
        if (a - numeric).abs() > tol {
            return Some(GradMismatch { index: i, analytic: a, numeric, tol });
        }
    }
    None
}

/// Like [`first_grad_mismatch`] but panics with a readable report, naming
/// the checked parameter.
#[allow(clippy::too_many_arguments)]
pub fn assert_grad_matches(
    label: &str,
    n: usize,
    analytic: impl FnMut(usize) -> f32,
    shift: impl FnMut(usize, f32),
    loss: impl FnMut() -> f32,
    eps: f32,
    rtol: f32,
    atol: f32,
) {
    if let Some(m) = first_grad_mismatch(n, analytic, shift, loss, eps, rtol, atol) {
        panic!(
            "gradient mismatch for `{label}`[{}]: analytic {}, numeric {} (tol {})",
            m.index, m.analytic, m.numeric, m.tol
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::cell::RefCell;

    /// f(x) = Σ xᵢ² + 3x₀ has gradient 2x + [3,0,...].
    #[test]
    fn quadratic_gradient_passes() {
        let x = vec![1.0f32, -2.0, 0.5];
        let grad: Vec<f32> =
            x.iter().enumerate().map(|(i, &v)| 2.0 * v + if i == 0 { 3.0 } else { 0.0 }).collect();
        let xs = RefCell::new(x.clone());
        assert_eq!(
            first_grad_mismatch(
                3,
                |i| grad[i],
                |i, d| xs.borrow_mut()[i] += d,
                || {
                    let xs = xs.borrow();
                    xs.iter().map(|v| v * v).sum::<f32>() + 3.0 * xs[0]
                },
                1e-3,
                1e-3,
                1e-4,
            ),
            None
        );
        // shifts must have restored the parameter
        for (a, b) in xs.borrow().iter().zip(&x) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn wrong_gradient_detected() {
        let x = RefCell::new(vec![0.7f32, -0.3]);
        let m = first_grad_mismatch(
            2,
            |_| 0.0, // claims zero gradient
            |i, d| x.borrow_mut()[i] += d,
            || x.borrow().iter().map(|v| v * v).sum(),
            1e-3,
            1e-2,
            1e-3,
        );
        let m = m.expect("zero gradient for x² must be rejected");
        assert_eq!(m.index, 0);
        assert!((m.numeric - 1.4).abs() < 1e-2, "numeric {}", m.numeric);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch for `w`")]
    fn assert_variant_panics_with_label() {
        let x = RefCell::new(vec![1.0f32]);
        assert_grad_matches(
            "w",
            1,
            |_| -1.0,
            |i, d| x.borrow_mut()[i] += d,
            || {
                let x = x.borrow();
                x[0] * x[0]
            },
            1e-3,
            1e-3,
            1e-4,
        );
    }
}
