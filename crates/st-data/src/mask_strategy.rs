//! Training mask strategies (Section III-A, "Training strategies" of IV-D).
//!
//! During training, observed values in each window are randomly re-masked to
//! become the imputation target `X̃⁰`; the remainder stays as conditioning
//! information. The paper uses three strategies and matches them to the test
//! missing pattern: *hybrid + historical* on AQI-36, *hybrid + block* on
//! block-missing traffic, *point* on point-missing traffic.

use st_rand::StdRng;
use st_rand::Rng;
use st_tensor::NdArray;

/// A training mask strategy producing target masks over observed positions.
#[derive(Debug, Clone)]
pub enum MaskStrategy {
    /// Draw `m ~ U[0,100]%` and mask `m%` of observed values.
    Point,
    /// Per-node contiguous runs of length `[L/2, L]` with probability
    /// `p ~ U[0, 0.15]`, plus 5 % random points.
    Block,
    /// 50 % point / 50 % block.
    HybridBlock,
    /// 50 % point / 50 % a historical missing pattern drawn from `patterns`
    /// (observed masks of other training samples; their *complement* becomes
    /// the target).
    HybridHistorical {
        /// Library of `[N, L]` observed masks harvested from the training set.
        patterns: Vec<NdArray>,
    },
}

impl MaskStrategy {
    /// Produce a target mask for one `[N, L]` window.
    ///
    /// `cond_observed` has 1 where a value is available for training;
    /// returned mask has 1 on positions selected as the imputation target
    /// (always a subset of `cond_observed`). Guarantees at least one target
    /// position when any position is observed.
    pub fn sample(&self, cond_observed: &NdArray, rng: &mut StdRng) -> NdArray {
        let mask = match self {
            MaskStrategy::Point => point_mask(cond_observed, rng),
            MaskStrategy::Block => block_mask(cond_observed, rng),
            MaskStrategy::HybridBlock => {
                if rng.random::<f64>() < 0.5 {
                    point_mask(cond_observed, rng)
                } else {
                    block_mask(cond_observed, rng)
                }
            }
            MaskStrategy::HybridHistorical { patterns } => {
                if patterns.is_empty() || rng.random::<f64>() < 0.5 {
                    point_mask(cond_observed, rng)
                } else {
                    historical_mask(cond_observed, patterns, rng)
                }
            }
        };
        ensure_nonempty(mask, cond_observed, rng)
    }
}

fn point_mask(observed: &NdArray, rng: &mut StdRng) -> NdArray {
    let rate = rng.random::<f64>(); // m ~ U[0, 100]%
    let mut out = NdArray::zeros(observed.shape());
    for (o, &obs) in out.data_mut().iter_mut().zip(observed.data()) {
        if obs > 0.0 && rng.random::<f64>() < rate {
            *o = 1.0;
        }
    }
    out
}

fn block_mask(observed: &NdArray, rng: &mut StdRng) -> NdArray {
    let (n, l) = (observed.shape()[0], observed.shape()[1]);
    let mut out = NdArray::zeros(observed.shape());
    let p = rng.random::<f64>() * 0.15;
    for i in 0..n {
        if rng.random::<f64>() < p {
            let len = rng.random_range((l / 2).max(1)..=l);
            let start = rng.random_range(0..=(l - len));
            for t in start..start + len {
                if observed.data()[i * l + t] > 0.0 {
                    out.data_mut()[i * l + t] = 1.0;
                }
            }
        }
    }
    // plus 5% random observed points
    for (o, &obs) in out.data_mut().iter_mut().zip(observed.data()) {
        if obs > 0.0 && rng.random::<f64>() < 0.05 {
            *o = 1.0;
        }
    }
    out
}

fn historical_mask(observed: &NdArray, patterns: &[NdArray], rng: &mut StdRng) -> NdArray {
    let pat = &patterns[rng.random_range(0..patterns.len())];
    assert_eq!(pat.shape(), observed.shape(), "historical pattern shape mismatch");
    // Positions missing in the historical pattern but observed here become targets.
    observed.zip_map(pat, |obs, hist| if obs > 0.0 && hist == 0.0 { 1.0 } else { 0.0 })
}

fn ensure_nonempty(mut mask: NdArray, observed: &NdArray, rng: &mut StdRng) -> NdArray {
    if mask.data().iter().any(|&v| v > 0.0) {
        return mask;
    }
    let candidates: Vec<usize> = observed
        .data()
        .iter()
        .enumerate()
        .filter(|(_, &o)| o > 0.0)
        .map(|(i, _)| i)
        .collect();
    if !candidates.is_empty() {
        let pick = candidates[rng.random_range(0..candidates.len())];
        mask.data_mut()[pick] = 1.0;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn point_mask_subset_of_observed() {
        let mut observed = NdArray::ones(&[6, 12]);
        for i in 0..20 {
            observed.data_mut()[i * 3] = 0.0;
        }
        let mut r = rng(1);
        for _ in 0..20 {
            let m = MaskStrategy::Point.sample(&observed, &mut r);
            for (&mv, &ov) in m.data().iter().zip(observed.data()) {
                assert!(mv == 0.0 || ov > 0.0, "target outside observed");
            }
        }
    }

    #[test]
    fn block_mask_produces_long_runs_sometimes() {
        let observed = NdArray::ones(&[8, 24]);
        let mut r = rng(2);
        let mut max_run = 0usize;
        for _ in 0..200 {
            let m = MaskStrategy::Block.sample(&observed, &mut r);
            for i in 0..8 {
                let mut run = 0;
                for t in 0..24 {
                    if m.data()[i * 24 + t] > 0.0 {
                        run += 1;
                        max_run = max_run.max(run);
                    } else {
                        run = 0;
                    }
                }
            }
        }
        assert!(max_run >= 12, "block strategy never produced a long run (max {max_run})");
    }

    #[test]
    fn always_at_least_one_target() {
        let observed = NdArray::ones(&[4, 8]);
        let mut r = rng(3);
        for strat in [MaskStrategy::Point, MaskStrategy::Block, MaskStrategy::HybridBlock] {
            for _ in 0..100 {
                let m = strat.sample(&observed, &mut r);
                assert!(m.data().iter().any(|&v| v > 0.0), "{strat:?} produced empty target");
            }
        }
    }

    #[test]
    fn historical_uses_pattern_complement() {
        let observed = NdArray::ones(&[2, 4]);
        let mut pat = NdArray::ones(&[2, 4]);
        pat.data_mut()[1] = 0.0;
        pat.data_mut()[6] = 0.0;
        let strat = MaskStrategy::HybridHistorical { patterns: vec![pat] };
        let mut r = rng(4);
        // run until the historical branch is taken
        let mut hit = false;
        for _ in 0..50 {
            let m = strat.sample(&observed, &mut r);
            if m.data()[1] == 1.0 && m.data()[6] == 1.0 {
                let count: f32 = m.data().iter().sum();
                assert_eq!(count, 2.0);
                hit = true;
                break;
            }
        }
        assert!(hit, "historical branch never selected");
    }

    #[test]
    fn all_strategies_preserve_observed_positions() {
        // Conditioning values the window does NOT have must never be selected
        // as targets, for every strategy including the historical hybrid.
        let mut observed = NdArray::ones(&[6, 12]);
        for i in 0..24 {
            observed.data_mut()[i * 3 % 72] = 0.0;
        }
        let mut pat = NdArray::ones(&[6, 12]);
        for i in 0..36 {
            pat.data_mut()[(i * 2 + 1) % 72] = 0.0;
        }
        let strategies = [
            MaskStrategy::Point,
            MaskStrategy::Block,
            MaskStrategy::HybridBlock,
            MaskStrategy::HybridHistorical { patterns: vec![pat] },
        ];
        let mut r = rng(6);
        for strat in &strategies {
            for _ in 0..50 {
                let m = strat.sample(&observed, &mut r);
                for (&mv, &ov) in m.data().iter().zip(observed.data()) {
                    assert!(mv == 0.0 || ov > 0.0, "{strat:?} selected an unobserved target");
                }
            }
        }
    }

    #[test]
    fn point_mask_realized_rate_matches_drawn_rate_on_average() {
        // Point draws m ~ U[0,1] then masks each observed cell w.p. m, so the
        // long-run average target fraction over observed cells is E[m] = 1/2.
        let observed = NdArray::ones(&[10, 20]);
        let mut r = rng(7);
        let draws = 400;
        let mut total = 0.0f64;
        for _ in 0..draws {
            let m = MaskStrategy::Point.sample(&observed, &mut r);
            total += m.data().iter().map(|&v| f64::from(v)).sum::<f64>() / 200.0;
        }
        let mean = total / f64::from(draws);
        assert!(
            (mean - 0.5).abs() < 0.05,
            "mean point-mask rate {mean:.3} outside tolerance of E[m]=0.5"
        );
    }

    #[test]
    fn block_mask_rate_stays_in_strategy_band() {
        // Block masks p ~ U[0, 0.15] of nodes with runs of ≥ L/2 plus 5 %
        // random points: the long-run average rate must sit well inside
        // (0.05, 0.25) — far below point's 0.5 and clearly above pure noise.
        let observed = NdArray::ones(&[10, 20]);
        let mut r = rng(8);
        let draws = 400;
        let mut total = 0.0f64;
        for _ in 0..draws {
            let m = MaskStrategy::Block.sample(&observed, &mut r);
            total += m.data().iter().map(|&v| f64::from(v)).sum::<f64>() / 200.0;
        }
        let mean = total / f64::from(draws);
        assert!(
            (0.05..0.25).contains(&mean),
            "mean block-mask rate {mean:.3} outside the strategy's expected band"
        );
    }

    #[test]
    fn empty_observed_yields_empty_mask() {
        let observed = NdArray::zeros(&[3, 5]);
        let mut r = rng(5);
        let m = MaskStrategy::Point.sample(&observed, &mut r);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }
}
