//! CSV import/export so the library can be used on real sensor exports, not
//! just the synthetic generators.
//!
//! Format (long/tidy or wide both supported):
//!
//! * **wide** — header `time,<name1>,<name2>,…`; one row per time step;
//!   empty cells or `nan` mark missing values;
//! * **coords** — header `sensor,x,y`; one row per sensor, kilometres.
//!
//! Values parse as `f32`; the time column is kept only for ordering and may
//! be any string.

use crate::dataset::SpatioTemporalDataset;
use st_graph::layout::Coord;
use st_graph::SensorGraph;
use st_tensor::NdArray;
use std::fmt::Write as _;
use std::path::Path;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Malformed(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Malformed(m) => write!(f, "malformed csv: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// A parsed wide-format panel: sensor names, values and observed mask.
#[derive(Debug, Clone)]
pub struct CsvPanel {
    /// Column names (sensor identifiers).
    pub sensors: Vec<String>,
    /// Values `[T, N]`; missing cells hold 0.0 and are 0 in `observed`.
    pub values: NdArray,
    /// Observed mask `[T, N]`.
    pub observed: NdArray,
}

/// Parse a wide-format panel from CSV text.
pub fn parse_panel_csv(text: &str) -> Result<CsvPanel, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| CsvError::Malformed("empty file".into()))?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    if cols.len() < 2 {
        return Err(CsvError::Malformed("need a time column and at least one sensor".into()));
    }
    let sensors: Vec<String> = cols[1..].iter().map(|s| s.to_string()).collect();
    let n = sensors.len();
    let mut values = Vec::new();
    let mut observed = Vec::new();
    let mut t = 0usize;
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != n + 1 {
            return Err(CsvError::Malformed(format!(
                "row {} has {} cells, expected {}",
                lineno + 2,
                cells.len(),
                n + 1
            )));
        }
        for cell in &cells[1..] {
            if cell.is_empty() || cell.eq_ignore_ascii_case("nan") {
                values.push(0.0);
                observed.push(0.0);
            } else {
                let v: f32 = cell.parse().map_err(|_| {
                    CsvError::Malformed(format!("row {}: bad number `{cell}`", lineno + 2))
                })?;
                if v.is_finite() {
                    values.push(v);
                    observed.push(1.0);
                } else {
                    values.push(0.0);
                    observed.push(0.0);
                }
            }
        }
        t += 1;
    }
    if t == 0 {
        return Err(CsvError::Malformed("no data rows".into()));
    }
    Ok(CsvPanel {
        sensors,
        values: NdArray::from_vec(&[t, n], values),
        observed: NdArray::from_vec(&[t, n], observed),
    })
}

/// Parse sensor coordinates (`sensor,x,y`) from CSV text, matched by name
/// against `sensors` (order need not match the panel).
pub fn parse_coords_csv(text: &str, sensors: &[String]) -> Result<Vec<Coord>, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let _header = lines.next().ok_or_else(|| CsvError::Malformed("empty coords file".into()))?;
    let mut by_name = std::collections::HashMap::new();
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != 3 {
            return Err(CsvError::Malformed(format!(
                "coords row {} has {} cells, expected 3",
                lineno + 2,
                cells.len()
            )));
        }
        let x: f64 = cells[1]
            .parse()
            .map_err(|_| CsvError::Malformed(format!("bad x `{}`", cells[1])))?;
        let y: f64 = cells[2]
            .parse()
            .map_err(|_| CsvError::Malformed(format!("bad y `{}`", cells[2])))?;
        by_name.insert(cells[0].to_string(), Coord { x, y });
    }
    sensors
        .iter()
        .map(|s| {
            by_name
                .get(s)
                .copied()
                .ok_or_else(|| CsvError::Malformed(format!("no coordinates for sensor `{s}`")))
        })
        .collect()
}

/// Load a dataset from a panel CSV and a coordinates CSV on disk.
///
/// `eval_mask` starts empty: on real data there is no ground truth for the
/// original missing values, so evaluation masks (if any) must be injected by
/// the caller with [`crate::missing`].
pub fn load_dataset(
    panel_path: &Path,
    coords_path: &Path,
    steps_per_day: usize,
) -> Result<SpatioTemporalDataset, CsvError> {
    let panel = parse_panel_csv(&std::fs::read_to_string(panel_path)?)?;
    let coords = parse_coords_csv(&std::fs::read_to_string(coords_path)?, &panel.sensors)?;
    let graph = SensorGraph::from_coords(coords, 0.1);
    let (t, n) = (panel.values.shape()[0], panel.values.shape()[1]);
    let data = SpatioTemporalDataset {
        name: panel_path.file_stem().and_then(|s| s.to_str()).unwrap_or("csv").to_string(),
        values: panel.values,
        observed_mask: panel.observed,
        eval_mask: NdArray::zeros(&[t, n]),
        steps_per_day,
        graph,
        train_frac: 0.7,
        valid_frac: 0.1,
    };
    data.check_invariants();
    Ok(data)
}

/// Serialise an imputed `[T, N]` panel back to wide CSV (time column is the
/// step index).
pub fn panel_to_csv(panel: &NdArray, sensors: &[String]) -> String {
    let (t, n) = (panel.shape()[0], panel.shape()[1]);
    assert_eq!(n, sensors.len(), "sensor-name count mismatch");
    let mut out = String::with_capacity(t * n * 8);
    out.push_str("time");
    for s in sensors {
        out.push(',');
        out.push_str(s);
    }
    out.push('\n');
    for ti in 0..t {
        let _ = write!(out, "{ti}");
        for i in 0..n {
            let _ = write!(out, ",{:.4}", panel.data()[ti * n + i]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PANEL: &str = "time,s1,s2,s3\n\
        2024-01-01T00:00,1.0,2.0,3.0\n\
        2024-01-01T01:00,1.5,,3.5\n\
        2024-01-01T02:00,nan,2.5,4.0\n";

    const COORDS: &str = "sensor,x,y\ns3,2.0,0.0\ns1,0.0,0.0\ns2,1.0,1.0\n";

    #[test]
    fn parses_wide_panel_with_missing() {
        let p = parse_panel_csv(PANEL).unwrap();
        assert_eq!(p.sensors, vec!["s1", "s2", "s3"]);
        assert_eq!(p.values.shape(), &[3, 3]);
        assert_eq!(p.values.at(&[0, 0]), 1.0);
        assert_eq!(p.observed.at(&[1, 1]), 0.0, "empty cell must be missing");
        assert_eq!(p.observed.at(&[2, 0]), 0.0, "nan must be missing");
        assert_eq!(p.values.at(&[2, 2]), 4.0);
    }

    #[test]
    fn coords_matched_by_name_any_order() {
        let p = parse_panel_csv(PANEL).unwrap();
        let coords = parse_coords_csv(COORDS, &p.sensors).unwrap();
        assert_eq!(coords[0].x, 0.0); // s1
        assert_eq!(coords[1].x, 1.0); // s2
        assert_eq!(coords[2].x, 2.0); // s3
    }

    #[test]
    fn missing_coordinate_is_an_error() {
        let p = parse_panel_csv(PANEL).unwrap();
        let err = parse_coords_csv("sensor,x,y\ns1,0,0\n", &p.sensors).unwrap_err();
        assert!(err.to_string().contains("s2"));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = parse_panel_csv("time,a,b\n0,1.0\n").unwrap_err();
        assert!(matches!(err, CsvError::Malformed(_)));
    }

    #[test]
    fn bad_number_rejected_with_location() {
        let err = parse_panel_csv("time,a\n0,xyz\n").unwrap_err();
        assert!(err.to_string().contains("row 2"));
    }

    #[test]
    fn csv_round_trip() {
        let p = parse_panel_csv(PANEL).unwrap();
        let text = panel_to_csv(&p.values, &p.sensors);
        let back = parse_panel_csv(&text).unwrap();
        assert_eq!(back.values.shape(), p.values.shape());
        for (a, b) in back.values.data().iter().zip(p.values.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn load_dataset_end_to_end() {
        let dir = std::env::temp_dir().join("pristi_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let panel_path = dir.join("panel.csv");
        let coords_path = dir.join("coords.csv");
        std::fs::write(&panel_path, PANEL).unwrap();
        std::fs::write(&coords_path, COORDS).unwrap();
        let d = load_dataset(&panel_path, &coords_path, 24).unwrap();
        assert_eq!(d.n_steps(), 3);
        assert_eq!(d.n_nodes(), 3);
        assert_eq!(d.graph.n_nodes(), 3);
        assert_eq!(d.observed_mask.at(&[1, 1]), 0.0);
    }
}
