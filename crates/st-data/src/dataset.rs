//! The central dataset container and window extraction.

use st_graph::SensorGraph;
use st_tensor::NdArray;

/// Which portion of the time axis a window comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training portion.
    Train,
    /// Validation portion.
    Valid,
    /// Test portion (where evaluation masks live).
    Test,
}

/// A complete spatiotemporal panel.
///
/// * `values[t, n]` — ground-truth signal (synthetic generators know the truth
///   even at "missing" positions, which is what lets us score imputations);
/// * `observed_mask[t, n]` — 1 where a real deployment would have a reading
///   (original missing = 0);
/// * `eval_mask[t, n]` — 1 where a value was *manually* masked for evaluation
///   (the imputation target `X̃`); evaluation positions are always a subset of
///   observed ones, mirroring the paper's protocol of hiding known values.
#[derive(Debug, Clone)]
pub struct SpatioTemporalDataset {
    /// Human-readable dataset name (e.g. `"aqi36-like"`).
    pub name: String,
    /// Ground-truth values, `[T, N]` time-major.
    pub values: NdArray,
    /// Original observation mask, `[T, N]`.
    pub observed_mask: NdArray,
    /// Manually injected evaluation mask, `[T, N]`.
    pub eval_mask: NdArray,
    /// Steps per day (24 for hourly, 288 for 5-minute data).
    pub steps_per_day: usize,
    /// The sensor network.
    pub graph: SensorGraph,
    /// Fraction of the time axis used for training.
    pub train_frac: f64,
    /// Fraction used for validation (the remainder is test).
    pub valid_frac: f64,
}

/// One training/evaluation sample: an `[N, L]` slice of the panel.
#[derive(Debug, Clone)]
pub struct Window {
    /// Ground-truth values `[N, L]`.
    pub values: NdArray,
    /// Observed mask `[N, L]` (1 = sensor reported a value).
    pub observed: NdArray,
    /// Evaluation-target mask `[N, L]` (1 = manually hidden, to be imputed).
    pub eval: NdArray,
    /// Absolute index of the window's first time step in the full panel.
    pub t_start: usize,
}

impl Window {
    /// Mask of values the model may condition on: observed and *not* hidden
    /// for evaluation.
    pub fn cond_mask(&self) -> NdArray {
        self.observed.zip_map(&self.eval, |o, e| if o > 0.0 && e == 0.0 { 1.0 } else { 0.0 })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.values.shape()[0]
    }

    /// Window length.
    pub fn len(&self) -> usize {
        self.values.shape()[1]
    }

    /// True when the window has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpatioTemporalDataset {
    /// Number of time steps.
    pub fn n_steps(&self) -> usize {
        self.values.shape()[0]
    }

    /// Number of sensors.
    pub fn n_nodes(&self) -> usize {
        self.values.shape()[1]
    }

    /// `[start, end)` time range of a split.
    pub fn split_range(&self, split: Split) -> (usize, usize) {
        let t = self.n_steps();
        let train_end = (t as f64 * self.train_frac).round() as usize;
        let valid_end = (t as f64 * (self.train_frac + self.valid_frac)).round() as usize;
        match split {
            Split::Train => (0, train_end),
            Split::Valid => (train_end, valid_end),
            Split::Test => (valid_end, t),
        }
    }

    /// Extract consecutive windows of length `len` with the given `stride`
    /// from a split. Windows never straddle the split boundary.
    pub fn windows(&self, split: Split, len: usize, stride: usize) -> Vec<Window> {
        assert!(len > 0 && stride > 0, "window len and stride must be positive");
        let (start, end) = self.split_range(split);
        let mut out = Vec::new();
        if end < start + len {
            return out;
        }
        let mut t0 = start;
        while t0 + len <= end {
            out.push(self.window_at(t0, len));
            t0 += stride;
        }
        out
    }

    /// Extract one `[N, L]` window starting at absolute step `t0`.
    pub fn window_at(&self, t0: usize, len: usize) -> Window {
        let (t, n) = (self.n_steps(), self.n_nodes());
        assert!(t0 + len <= t, "window [{t0}, {}) exceeds panel length {t}", t0 + len);
        let mut values = NdArray::zeros(&[n, len]);
        let mut observed = NdArray::zeros(&[n, len]);
        let mut eval = NdArray::zeros(&[n, len]);
        for l in 0..len {
            for i in 0..n {
                let src = (t0 + l) * n + i;
                values.data_mut()[i * len + l] = self.values.data()[src];
                observed.data_mut()[i * len + l] = self.observed_mask.data()[src];
                eval.data_mut()[i * len + l] = self.eval_mask.data()[src];
            }
        }
        Window { values, observed, eval, t_start: t0 }
    }

    /// Fraction of positions that are missing from the sensors' perspective
    /// (original missing plus manual eval masking) over a split.
    pub fn missing_fraction(&self, split: Split) -> f64 {
        let (start, end) = self.split_range(split);
        let n = self.n_nodes();
        let mut missing = 0usize;
        let mut total = 0usize;
        for t in start..end {
            for i in 0..n {
                let idx = t * n + i;
                total += 1;
                if self.observed_mask.data()[idx] == 0.0 || self.eval_mask.data()[idx] > 0.0 {
                    missing += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            missing as f64 / total as f64
        }
    }

    /// Fraction of observed positions that were manually masked for
    /// evaluation over a split (the paper reports these percentages in
    /// Table III's header).
    pub fn eval_fraction(&self, split: Split) -> f64 {
        let (start, end) = self.split_range(split);
        let n = self.n_nodes();
        let mut masked = 0usize;
        let mut total = 0usize;
        for t in start..end {
            for i in 0..n {
                let idx = t * n + i;
                if self.observed_mask.data()[idx] > 0.0 {
                    total += 1;
                    if self.eval_mask.data()[idx] > 0.0 {
                        masked += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            masked as f64 / total as f64
        }
    }

    /// Validate internal invariants (shapes agree, eval ⊆ observed). Panics
    /// with a descriptive message if violated; used by generators and tests.
    pub fn check_invariants(&self) {
        assert_eq!(self.values.shape(), self.observed_mask.shape(), "mask shape mismatch");
        assert_eq!(self.values.shape(), self.eval_mask.shape(), "eval mask shape mismatch");
        assert_eq!(self.n_nodes(), self.graph.n_nodes(), "graph size mismatch");
        assert!(self.train_frac > 0.0 && self.train_frac + self.valid_frac < 1.0);
        for (i, (&e, &o)) in
            self.eval_mask.data().iter().zip(self.observed_mask.data()).enumerate()
        {
            assert!(
                e == 0.0 || o > 0.0,
                "eval mask set at position {i} where nothing was observed"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::{random_plane_layout, SensorGraph};

    fn tiny_dataset() -> SpatioTemporalDataset {
        let n = 4;
        let t = 100;
        let graph = SensorGraph::from_coords(random_plane_layout(n, 10.0, 1), 0.1);
        let values =
            NdArray::from_vec(&[t, n], (0..t * n).map(|i| i as f32 * 0.1).collect());
        let mut observed = NdArray::ones(&[t, n]);
        observed.data_mut()[5] = 0.0;
        let mut eval = NdArray::zeros(&[t, n]);
        eval.data_mut()[8] = 1.0;
        SpatioTemporalDataset {
            name: "tiny".into(),
            values,
            observed_mask: observed,
            eval_mask: eval,
            steps_per_day: 24,
            graph,
            train_frac: 0.7,
            valid_frac: 0.1,
        }
    }

    #[test]
    fn split_ranges_partition_time() {
        let d = tiny_dataset();
        let (a0, a1) = d.split_range(Split::Train);
        let (b0, b1) = d.split_range(Split::Valid);
        let (c0, c1) = d.split_range(Split::Test);
        assert_eq!(a0, 0);
        assert_eq!(a1, b0);
        assert_eq!(b1, c0);
        assert_eq!(c1, 100);
        assert_eq!(a1, 70);
        assert_eq!(b1, 80);
    }

    #[test]
    fn windows_do_not_straddle_split() {
        let d = tiny_dataset();
        let ws = d.windows(Split::Valid, 6, 2);
        assert!(!ws.is_empty());
        for w in &ws {
            assert!(w.t_start >= 70 && w.t_start + 6 <= 80);
        }
    }

    #[test]
    fn window_transposes_correctly() {
        let d = tiny_dataset();
        let w = d.window_at(10, 5);
        assert_eq!(w.values.shape(), &[4, 5]);
        // values[t,n] = (t*4+n)*0.1; window element [n=2, l=3] = value at t=13,n=2
        let expect = (13 * 4 + 2) as f32 * 0.1;
        assert!((w.values.at(&[2, 3]) - expect).abs() < 1e-5);
    }

    #[test]
    fn cond_mask_excludes_eval_and_unobserved() {
        let d = tiny_dataset();
        let w = d.window_at(0, 4);
        let cm = w.cond_mask();
        // position (t=1,n=1) -> flat 5 was unobserved -> window [n=1, l=1]
        assert_eq!(cm.at(&[1, 1]), 0.0);
        // position flat 8 -> t=2, n=0 eval-masked -> window [n=0, l=2]
        assert_eq!(cm.at(&[0, 2]), 0.0);
        assert_eq!(w.observed.at(&[0, 2]), 1.0);
        // a normal position is conditionable
        assert_eq!(cm.at(&[3, 3]), 1.0);
    }

    #[test]
    fn invariants_hold_for_tiny() {
        tiny_dataset().check_invariants();
    }

    #[test]
    #[should_panic(expected = "eval mask set")]
    fn invariant_catches_eval_outside_observed() {
        let mut d = tiny_dataset();
        d.eval_mask.data_mut()[5] = 1.0; // position 5 is unobserved
        d.check_invariants();
    }

    #[test]
    fn eval_fraction_counts_manual_masks() {
        let d = tiny_dataset();
        // one eval position in train split of 70*4=280 positions, 279 observed
        let f = d.eval_fraction(Split::Train);
        assert!((f - 1.0 / 279.0).abs() < 1e-9);
    }
}
