//! Evaluation-mask injection: the paper's three missing patterns
//! (Section IV-D, Fig. 4).
//!
//! All injectors operate on a `[T, N]` panel and only ever mark positions
//! that are currently observed, so `eval ⊆ observed` holds by construction.
//! The evaluation is later restricted to a chosen split, but masks are
//! injected across the whole panel exactly as the GRIN/CSDI pipelines do.

use st_rand::StdRng;
use st_rand::{Rng, SeedableRng};
use st_tensor::NdArray;

/// Point missing: uniformly mask `rate` of the observed positions
/// (25 % in the paper's traffic setting).
pub fn inject_point_missing(
    observed: &NdArray,
    rate: f64,
    seed: u64,
) -> NdArray {
    assert!((0.0..=1.0).contains(&rate), "rate out of range: {rate}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut eval = NdArray::zeros(observed.shape());
    for (e, &o) in eval.data_mut().iter_mut().zip(observed.data()) {
        if o > 0.0 && rng.random::<f64>() < rate {
            *e = 1.0;
        }
    }
    eval
}

/// Block missing (paper protocol): mask 5 % of observed points uniformly,
/// plus, for each sensor and time step, start an outage lasting between
/// `min_len` and `max_len` steps with probability `fault_prob` (0.15 % in the
/// paper; 1–4 h at 5-min sampling → 12–48 steps).
pub fn inject_block_missing(
    observed: &NdArray,
    point_rate: f64,
    fault_prob: f64,
    min_len: usize,
    max_len: usize,
    seed: u64,
) -> NdArray {
    assert!(min_len >= 1 && max_len >= min_len, "invalid block length range");
    let mut rng = StdRng::seed_from_u64(seed);
    let (t, n) = (observed.shape()[0], observed.shape()[1]);
    let mut eval = inject_point_missing(observed, point_rate, seed.wrapping_add(1));
    for i in 0..n {
        let mut ti = 0usize;
        while ti < t {
            if rng.random::<f64>() < fault_prob {
                let len = rng.random_range(min_len..=max_len);
                for tt in ti..(ti + len).min(t) {
                    let idx = tt * n + i;
                    if observed.data()[idx] > 0.0 {
                        eval.data_mut()[idx] = 1.0;
                    }
                }
                ti += len;
            } else {
                ti += 1;
            }
        }
    }
    eval
}

/// Simulated sensor failure (the AQI-36 evaluation protocol of Yi et al.
/// 2016): bursty, per-sensor failure episodes whose lengths follow a
/// geometric distribution, tuned to hit roughly `target_rate` of observed
/// values overall (24.6 % in the paper). Mimics the "real missing
/// distribution" replay used for the air-quality benchmark.
pub fn inject_simulated_failure(
    observed: &NdArray,
    target_rate: f64,
    mean_episode_len: f64,
    seed: u64,
) -> NdArray {
    assert!((0.0..1.0).contains(&target_rate), "target_rate out of range");
    assert!(mean_episode_len >= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let (t, n) = (observed.shape()[0], observed.shape()[1]);
    let mut eval = NdArray::zeros(observed.shape());
    // Probability a new episode starts, chosen so that the expected masked
    // fraction p_start * mean_len / (p_start * mean_len + 1) ≈ target_rate.
    let p_start = target_rate / (mean_episode_len * (1.0 - target_rate));
    let p_continue = 1.0 - 1.0 / mean_episode_len;
    for i in 0..n {
        let mut failing = false;
        for ti in 0..t {
            if failing {
                failing = rng.random::<f64>() < p_continue;
            } else {
                failing = rng.random::<f64>() < p_start;
            }
            if failing {
                let idx = ti * n + i;
                if observed.data()[idx] > 0.0 {
                    eval.data_mut()[idx] = 1.0;
                }
            }
        }
    }
    eval
}

/// Regionally correlated sensor failures: outage episodes strike a
/// geographic *cluster* of stations simultaneously (city-wide transmission
/// faults in the AQI-36 benchmark), which is what makes the real
/// simulated-failure evaluation hard for purely cross-sectional imputers —
/// a failing station's neighbours are often failing too.
///
/// Episodes (random centre, radius `radius_km`, geometric duration with the
/// given mean) are added until roughly `target_rate` of observed values are
/// masked.
pub fn inject_regional_failure(
    observed: &NdArray,
    coords: &[st_graph::layout::Coord],
    target_rate: f64,
    mean_episode_len: f64,
    radius_km: f64,
    seed: u64,
) -> NdArray {
    assert!((0.0..1.0).contains(&target_rate));
    let mut rng = StdRng::seed_from_u64(seed);
    let (t, n) = (observed.shape()[0], observed.shape()[1]);
    assert_eq!(coords.len(), n, "coords/panel node mismatch");
    let mut eval = NdArray::zeros(observed.shape());
    let total_obs: f64 = observed.data().iter().map(|&v| v as f64).sum();
    let mut masked = 0.0f64;
    let mut guard = 0usize;
    while masked / total_obs.max(1.0) < target_rate && guard < 100_000 {
        guard += 1;
        let t0 = rng.random_range(0..t);
        let center = rng.random_range(0..n);
        // geometric-ish duration
        let mut dur = 1usize;
        while rng.random::<f64>() < 1.0 - 1.0 / mean_episode_len && dur < 10 * mean_episode_len as usize {
            dur += 1;
        }
        for (i, c) in coords.iter().enumerate() {
            if coords[center].distance(c) > radius_km {
                continue;
            }
            for tt in t0..(t0 + dur).min(t) {
                let idx = tt * n + i;
                if observed.data()[idx] > 0.0 && eval.data()[idx] == 0.0 {
                    eval.data_mut()[idx] = 1.0;
                    masked += 1.0;
                }
            }
        }
    }
    eval
}

/// Completely mask a set of sensors (for the Fig. 7 sensor-failure /
/// virtual-kriging experiment): every observed value of those nodes becomes
/// an evaluation target.
pub fn mask_entire_sensors(observed: &NdArray, sensors: &[usize]) -> NdArray {
    let (t, n) = (observed.shape()[0], observed.shape()[1]);
    let mut eval = NdArray::zeros(observed.shape());
    for &s in sensors {
        assert!(s < n, "sensor index {s} out of range");
        for ti in 0..t {
            let idx = ti * n + s;
            if observed.data()[idx] > 0.0 {
                eval.data_mut()[idx] = 1.0;
            }
        }
    }
    eval
}

/// Fraction of observed positions covered by an eval mask.
pub fn eval_rate(observed: &NdArray, eval: &NdArray) -> f64 {
    let obs: f64 = observed.data().iter().map(|&v| v as f64).sum();
    let masked: f64 = eval.data().iter().map(|&v| v as f64).sum();
    if obs == 0.0 {
        0.0
    } else {
        masked / obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_observed(t: usize, n: usize) -> NdArray {
        NdArray::ones(&[t, n])
    }

    #[test]
    fn point_rate_approximately_hit() {
        let obs = full_observed(500, 20);
        let eval = inject_point_missing(&obs, 0.25, 42);
        let r = eval_rate(&obs, &eval);
        assert!((r - 0.25).abs() < 0.02, "rate {r}");
    }

    #[test]
    fn point_missing_respects_observed() {
        let mut obs = full_observed(50, 4);
        for i in 0..50 {
            obs.data_mut()[i * 4] = 0.0; // node 0 never observed
        }
        let eval = inject_point_missing(&obs, 0.9, 7);
        for i in 0..50 {
            assert_eq!(eval.data()[i * 4], 0.0);
        }
    }

    #[test]
    fn block_missing_creates_runs() {
        let obs = full_observed(2000, 10);
        let eval = inject_block_missing(&obs, 0.0, 0.005, 12, 48, 3);
        // find at least one run of >= 12 consecutive masked steps on some node
        let mut found = false;
        'outer: for i in 0..10 {
            let mut run = 0;
            for t in 0..2000 {
                if eval.data()[t * 10 + i] > 0.0 {
                    run += 1;
                    if run >= 12 {
                        found = true;
                        break 'outer;
                    }
                } else {
                    run = 0;
                }
            }
        }
        assert!(found, "no contiguous block of length >= 12 found");
    }

    #[test]
    fn block_missing_rate_reasonable() {
        let obs = full_observed(2000, 10);
        let eval = inject_block_missing(&obs, 0.05, 0.0015, 12, 48, 4);
        let r = eval_rate(&obs, &eval);
        // paper reports 9-17% for this protocol depending on dataset length
        assert!(r > 0.05 && r < 0.30, "block rate {r}");
    }

    #[test]
    fn simulated_failure_rate_near_target() {
        let obs = full_observed(4000, 36);
        let eval = inject_simulated_failure(&obs, 0.246, 24.0, 5);
        let r = eval_rate(&obs, &eval);
        assert!((r - 0.246).abs() < 0.08, "failure rate {r}");
    }

    #[test]
    fn simulated_failure_is_bursty() {
        let obs = full_observed(4000, 8);
        let eval = inject_simulated_failure(&obs, 0.25, 24.0, 6);
        // average run length of masked segments should be well above 1
        let mut runs = Vec::new();
        for i in 0..8 {
            let mut run = 0usize;
            for t in 0..4000 {
                if eval.data()[t * 8 + i] > 0.0 {
                    run += 1;
                } else if run > 0 {
                    runs.push(run);
                    run = 0;
                }
            }
            if run > 0 {
                runs.push(run);
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len().max(1) as f64;
        assert!(mean_run > 5.0, "episodes not bursty: mean run {mean_run}");
    }

    #[test]
    fn entire_sensor_masked() {
        let obs = full_observed(100, 5);
        let eval = mask_entire_sensors(&obs, &[2, 4]);
        for t in 0..100 {
            assert_eq!(eval.data()[t * 5 + 2], 1.0);
            assert_eq!(eval.data()[t * 5 + 4], 1.0);
            assert_eq!(eval.data()[t * 5], 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let obs = full_observed(200, 6);
        let a = inject_point_missing(&obs, 0.3, 9);
        let b = inject_point_missing(&obs, 0.3, 9);
        assert_eq!(a, b);
        let c = inject_point_missing(&obs, 0.3, 10);
        assert_ne!(a, c);
    }
}
