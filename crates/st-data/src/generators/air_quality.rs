//! AQI-36-like synthetic panel: hourly PM2.5-style readings from 36 urban
//! monitoring stations with diurnal cycles, multi-day regional pollution
//! episodes that diffuse across the sensor graph, and bursty original
//! missingness (~13 % as documented for AQI-36).

use crate::dataset::SpatioTemporalDataset;
use crate::generators::noise::spatially_correlated_ar1;
use st_rand::StdRng;
use st_rand::{Rng, SeedableRng};
use st_graph::{random_plane_layout, SensorGraph};
use st_tensor::NdArray;

/// Configuration for the air-quality generator.
#[derive(Debug, Clone)]
pub struct AirQualityConfig {
    /// Number of monitoring stations (paper: 36).
    pub n_nodes: usize,
    /// Number of simulated days (paper: ~365; default scaled down).
    pub n_days: usize,
    /// Master seed.
    pub seed: u64,
    /// Target original-missing rate (paper: 13.24 %).
    pub original_missing_rate: f64,
    /// Mean pollution episodes per week.
    pub episodes_per_week: f64,
    /// Fraction of the time axis used for training.
    pub train_frac: f64,
    /// Fraction used for validation.
    pub valid_frac: f64,
}

impl Default for AirQualityConfig {
    fn default() -> Self {
        Self {
            n_nodes: 36,
            n_days: 56,
            seed: 2023,
            original_missing_rate: 0.1324,
            episodes_per_week: 1.6,
            train_frac: 0.7,
            valid_frac: 0.1,
        }
    }
}

/// Generate an AQI-36-like dataset (hourly sampling, `steps_per_day = 24`).
/// The returned dataset has `eval_mask` all zero; inject an evaluation
/// pattern with the functions in [`crate::missing`].
pub fn generate_air_quality(cfg: &AirQualityConfig) -> SpatioTemporalDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_nodes;
    let t = cfg.n_days * 24;
    let coords = random_plane_layout(n, 40.0, cfg.seed.wrapping_mul(31).wrapping_add(7));
    let graph = SensorGraph::from_coords(coords, 0.1);
    let (fwd, _) = graph.transition_matrices();

    // Per-node climatology.
    // stations across one metro area share similar base levels
    let base: Vec<f32> = (0..n).map(|_| rng.random_range(38.0..62.0)).collect();
    let amp: Vec<f32> = (0..n).map(|_| rng.random_range(6.0..18.0)).collect();
    let phase: Vec<f32> = (0..n).map(|_| rng.random_range(-0.6..0.6)).collect();

    let mut values = NdArray::zeros(&[t, n]);
    for ti in 0..t {
        let hour = (ti % 24) as f32;
        for i in 0..n {
            let diurnal = amp[i] * (std::f32::consts::TAU * hour / 24.0 + phase[i]).sin();
            values.data_mut()[ti * n + i] = base[i] + diurnal;
        }
    }

    // Regional pollution episodes diffusing over the graph.
    let episode_prob_per_hour = cfg.episodes_per_week / (7.0 * 24.0);
    let mut ti = 0usize;
    while ti < t {
        if rng.random::<f64>() < episode_prob_per_hour {
            let center = rng.random_range(0..n);
            let magnitude: f32 = rng.random_range(40.0..140.0);
            let duration = rng.random_range(12..72usize);
            let sigma_km: f64 = rng.random_range(4.0..14.0);
            for (i, c) in graph.coords.iter().enumerate() {
                let d = graph.coords[center].distance(c);
                let w = (-d * d / (sigma_km * sigma_km)).exp() as f32;
                if w < 0.01 {
                    continue;
                }
                for dt in 0..duration {
                    let tt = ti + dt;
                    if tt >= t {
                        break;
                    }
                    // triangular ramp up/down
                    let half = duration as f32 / 2.0;
                    let prog = 1.0 - ((dt as f32 - half).abs() / half);
                    values.data_mut()[tt * n + i] += magnitude * w * prog;
                }
            }
            ti += duration / 2; // allow overlapping tails but not immediate re-trigger
        } else {
            ti += 1;
        }
    }

    // Two noise components: a slow spatially-correlated drift and a
    // temporally rough but spatially smooth fluctuation (regional chemistry
    // jitter — recoverable from same-hour neighbours but not from a
    // station's own history).
    let slow = spatially_correlated_ar1(t, &fwd, 0.85, 3.0, &mut rng);
    let rough = spatially_correlated_ar1(t, &fwd, 0.15, 3.5, &mut rng);
    for ((v, &s), &r) in values.data_mut().iter_mut().zip(slow.data()).zip(rough.data()) {
        *v = (*v + s + r).max(1.0);
    }

    // Original missing: scattered points + bursty outages tuned to the target.
    let observed_mask = original_missing_mask(t, n, cfg.original_missing_rate, &mut rng);

    let data = SpatioTemporalDataset {
        name: "aqi36-like".into(),
        values,
        observed_mask,
        eval_mask: NdArray::zeros(&[t, n]),
        steps_per_day: 24,
        graph,
        train_frac: cfg.train_frac,
        valid_frac: cfg.valid_frac,
    };
    data.check_invariants();
    data
}

/// Build an observed mask with roughly `rate` missing, one third scattered
/// points and two thirds bursty multi-hour outages.
pub(crate) fn original_missing_mask(
    t: usize,
    n: usize,
    rate: f64,
    rng: &mut StdRng,
) -> NdArray {
    let mut mask = NdArray::ones(&[t, n]);
    if rate <= 0.0 {
        return mask;
    }
    let point_rate = rate / 3.0;
    let burst_rate = rate * 2.0 / 3.0;
    let mean_len = 12.0f64;
    let p_start = burst_rate / (mean_len * (1.0 - burst_rate));
    let p_cont = 1.0 - 1.0 / mean_len;
    for i in 0..n {
        let mut out = false;
        for ti in 0..t {
            out = if out { rng.random::<f64>() < p_cont } else { rng.random::<f64>() < p_start };
            if out || rng.random::<f64>() < point_rate {
                mask.data_mut()[ti * n + i] = 0.0;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;

    fn small_cfg() -> AirQualityConfig {
        AirQualityConfig { n_days: 14, ..Default::default() }
    }

    #[test]
    fn shapes_and_invariants() {
        let d = generate_air_quality(&small_cfg());
        assert_eq!(d.n_nodes(), 36);
        assert_eq!(d.n_steps(), 14 * 24);
        assert_eq!(d.steps_per_day, 24);
        d.check_invariants();
    }

    #[test]
    fn values_positive() {
        let d = generate_air_quality(&small_cfg());
        assert!(d.values.data().iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn original_missing_near_target() {
        let d = generate_air_quality(&AirQualityConfig { n_days: 60, ..Default::default() });
        let missing = 1.0
            - d.observed_mask.data().iter().map(|&v| v as f64).sum::<f64>()
                / d.observed_mask.numel() as f64;
        assert!((missing - 0.1324).abs() < 0.06, "missing rate {missing}");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate_air_quality(&small_cfg());
        let b = generate_air_quality(&small_cfg());
        assert_eq!(a.values, b.values);
        assert_eq!(a.observed_mask, b.observed_mask);
        let c = generate_air_quality(&AirQualityConfig { seed: 99, ..small_cfg() });
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn neighbours_more_correlated_than_strangers() {
        let d = generate_air_quality(&AirQualityConfig { n_days: 30, ..Default::default() });
        let n = d.n_nodes();
        let t = d.n_steps();
        let series = |i: usize| -> Vec<f32> { (0..t).map(|ti| d.values.data()[ti * n + i]).collect() };
        // pick node 0, its nearest neighbour, and its farthest node
        let nn = d.graph.nearest_neighbors(0, 1)[0];
        let far = (0..n)
            .max_by(|&a, &b| {
                d.graph.coords[0]
                    .distance(&d.graph.coords[a])
                    .partial_cmp(&d.graph.coords[0].distance(&d.graph.coords[b]))
                    .unwrap()
            })
            .unwrap();
        let c_near = corr(&series(0), &series(nn));
        let c_far = corr(&series(0), &series(far));
        assert!(
            c_near > c_far - 0.05,
            "near correlation {c_near} not above far correlation {c_far}"
        );
    }

    fn corr(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len() as f32;
        let ma = a.iter().sum::<f32>() / n;
        let mb = b.iter().sum::<f32>() / n;
        let cov: f32 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum::<f32>() / n;
        let va: f32 = a.iter().map(|&x| (x - ma) * (x - ma)).sum::<f32>() / n;
        let vb: f32 = b.iter().map(|&y| (y - mb) * (y - mb)).sum::<f32>() / n;
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }

    #[test]
    fn diurnal_cycle_visible() {
        let d = generate_air_quality(&AirQualityConfig { n_days: 30, episodes_per_week: 0.0, ..Default::default() });
        // hour-of-day averages should vary by at least a few units
        let n = d.n_nodes();
        let mut by_hour = [0.0f64; 24];
        let mut cnt = [0.0f64; 24];
        for ti in 0..d.n_steps() {
            by_hour[ti % 24] += d.values.data()[ti * n] as f64;
            cnt[ti % 24] += 1.0;
        }
        for h in 0..24 {
            by_hour[h] /= cnt[h];
        }
        let max = by_hour.iter().cloned().fold(f64::MIN, f64::max);
        let min = by_hour.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 4.0, "diurnal amplitude too small: {}", max - min);
    }

    #[test]
    fn splits_usable() {
        let d = generate_air_quality(&small_cfg());
        assert!(!d.windows(Split::Train, 36, 36).is_empty());
        assert!(!d.windows(Split::Test, 36, 36).is_empty());
    }
}
