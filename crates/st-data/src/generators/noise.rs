//! Spatially correlated AR(1) noise shared by the generators.

use st_rand::StdRng;
use st_rand::{Distribution, Normal};
use st_tensor::NdArray;

/// Generate `[T, N]` noise with per-step spatial mixing and temporal AR(1)
/// persistence:
///
/// `g_t = rho * g_{t-1} + (0.5·I + 0.5·P) ξ_t`,  `ξ_t ~ N(0, std²)`
///
/// where `P` is a row-stochastic `[N, N]` transition matrix, so neighbouring
/// sensors receive correlated innovations.
pub fn spatially_correlated_ar1(
    t: usize,
    transition: &NdArray,
    rho: f32,
    std: f32,
    rng: &mut StdRng,
) -> NdArray {
    let n = transition.shape()[0];
    assert_eq!(transition.shape(), &[n, n]);
    assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
    let normal = Normal::new(0.0f32, std).expect("valid normal");
    let mut out = NdArray::zeros(&[t, n]);
    let mut state = vec![0.0f32; n];
    let mut xi = vec![0.0f32; n];
    let mut mixed = vec![0.0f32; n];
    for ti in 0..t {
        for x in xi.iter_mut() {
            *x = normal.sample(rng);
        }
        // mixed = 0.5 xi + 0.5 P xi
        for i in 0..n {
            let mut acc = 0.0f32;
            for j in 0..n {
                acc += transition.data()[i * n + j] * xi[j];
            }
            mixed[i] = 0.5 * xi[i] + 0.5 * acc;
        }
        for i in 0..n {
            state[i] = rho * state[i] + mixed[i];
            out.data_mut()[ti * n + i] = state[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::SeedableRng;

    fn uniform_transition(n: usize) -> NdArray {
        NdArray::full(&[n, n], 1.0 / n as f32)
    }

    #[test]
    fn shape_and_determinism() {
        let p = uniform_transition(4);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = spatially_correlated_ar1(50, &p, 0.8, 1.0, &mut r1);
        let b = spatially_correlated_ar1(50, &p, 0.8, 1.0, &mut r2);
        assert_eq!(a.shape(), &[50, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn temporal_autocorrelation_positive() {
        let p = uniform_transition(3);
        let mut rng = StdRng::seed_from_u64(2);
        let g = spatially_correlated_ar1(5000, &p, 0.9, 1.0, &mut rng);
        // lag-1 autocorrelation of node 0 should be near rho
        let series: Vec<f32> = (0..5000).map(|t| g.data()[t * 3]).collect();
        let mean = series.iter().sum::<f32>() / series.len() as f32;
        let var: f32 =
            series.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / series.len() as f32;
        let cov: f32 = series
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f32>()
            / (series.len() - 1) as f32;
        let ac = cov / var;
        assert!(ac > 0.7, "autocorrelation too low: {ac}");
    }

    #[test]
    fn spatial_correlation_from_mixing() {
        // strong mixing → nodes correlated
        let p = uniform_transition(2);
        let mut rng = StdRng::seed_from_u64(3);
        let g = spatially_correlated_ar1(5000, &p, 0.0, 1.0, &mut rng);
        let a: Vec<f32> = (0..5000).map(|t| g.data()[t * 2]).collect();
        let b: Vec<f32> = (0..5000).map(|t| g.data()[t * 2 + 1]).collect();
        let corr = correlation(&a, &b);
        assert!(corr > 0.4, "spatial correlation too low: {corr}");
    }

    fn correlation(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len() as f32;
        let ma = a.iter().sum::<f32>() / n;
        let mb = b.iter().sum::<f32>() / n;
        let cov: f32 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum::<f32>() / n;
        let va: f32 = a.iter().map(|&x| (x - ma) * (x - ma)).sum::<f32>() / n;
        let vb: f32 = b.iter().map(|&y| (y - mb) * (y - mb)).sum::<f32>() / n;
        cov / (va.sqrt() * vb.sqrt())
    }
}
