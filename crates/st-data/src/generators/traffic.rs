//! Traffic-speed panels standing in for METR-LA and PEMS-BAY: 5-minute
//! loop-detector speeds along a synthetic highway, with AM/PM rush-hour dips,
//! congestion incidents that propagate to graph neighbours with distance-
//! dependent lag (the shockwave structure GRIN and PriSTI exploit), and each
//! dataset's documented original-missing rate.

use crate::dataset::SpatioTemporalDataset;
use crate::generators::air_quality::original_missing_mask;
use crate::generators::noise::spatially_correlated_ar1;
use st_rand::StdRng;
use st_rand::{Rng, SeedableRng};
use st_graph::{highway_chain_layout, SensorGraph};
use st_tensor::NdArray;

/// Which real dataset the generated panel mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficProfile {
    /// METR-LA-like: noisier, more incidents, 8.10 % original missing.
    MetrLa,
    /// PEMS-BAY-like: smoother, fewer incidents, 0.02 % original missing.
    PemsBay,
}

/// Configuration for the traffic generator.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Which profile to mimic.
    pub profile: TrafficProfile,
    /// Number of loop detectors (paper: 207 / 325; defaults scaled down).
    pub n_nodes: usize,
    /// Number of simulated days.
    pub n_days: usize,
    /// Master seed.
    pub seed: u64,
    /// Fraction of the time axis used for training.
    pub train_frac: f64,
    /// Fraction used for validation.
    pub valid_frac: f64,
}

impl TrafficConfig {
    /// METR-LA-like defaults (48 nodes, 14 days).
    pub fn metr_la() -> Self {
        Self {
            profile: TrafficProfile::MetrLa,
            n_nodes: 48,
            n_days: 14,
            seed: 207,
            train_frac: 0.7,
            valid_frac: 0.1,
        }
    }

    /// PEMS-BAY-like defaults (56 nodes, 14 days).
    pub fn pems_bay() -> Self {
        Self {
            profile: TrafficProfile::PemsBay,
            n_nodes: 56,
            n_days: 14,
            seed: 325,
            train_frac: 0.7,
            valid_frac: 0.1,
        }
    }
}

/// Generate a traffic-speed dataset (5-minute sampling, `steps_per_day = 288`).
pub fn generate_traffic(cfg: &TrafficConfig) -> SpatioTemporalDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_nodes;
    let spd = 288usize;
    let t = cfg.n_days * spd;
    let coords = highway_chain_layout(n, 1.5, cfg.seed.wrapping_mul(17).wrapping_add(3));
    let graph = SensorGraph::from_coords(coords, 0.1);
    let (fwd, _) = graph.transition_matrices();

    let (noise_std, incidents_per_day, missing_rate, name) = match cfg.profile {
        TrafficProfile::MetrLa => (2.6f32, 3.0f64, 0.081, "metr-la-like"),
        TrafficProfile::PemsBay => (1.4f32, 1.2f64, 0.0002, "pems-bay-like"),
    };

    // Per-node free-flow speed and rush-hour susceptibility.
    let free_flow: Vec<f32> = (0..n).map(|_| rng.random_range(58.0..70.0)).collect();
    let rush_am: Vec<f32> = (0..n).map(|_| rng.random_range(5.0..30.0)).collect();
    let rush_pm: Vec<f32> = (0..n).map(|_| rng.random_range(8.0..35.0)).collect();

    let mut values = NdArray::zeros(&[t, n]);
    for ti in 0..t {
        let hour = (ti % spd) as f32 * 24.0 / spd as f32;
        let day = ti / spd;
        let weekend = day % 7 >= 5;
        let am = gaussian_bump(hour, 8.0, 1.3);
        let pm = gaussian_bump(hour, 17.5, 1.6);
        let weekday_factor = if weekend { 0.35 } else { 1.0 };
        for i in 0..n {
            let dip = weekday_factor * (rush_am[i] * am + rush_pm[i] * pm);
            values.data_mut()[ti * n + i] = free_flow[i] - dip;
        }
    }

    // Congestion incidents: start at a node, spread to close nodes with a lag
    // proportional to distance (≈ shockwave at ~20 km/h upstream).
    let incident_prob_per_step = incidents_per_day / spd as f64;
    for ti in 0..t {
        if rng.random::<f64>() < incident_prob_per_step {
            let center = rng.random_range(0..n);
            let severity: f32 = rng.random_range(15.0..40.0);
            let duration = rng.random_range(6..36usize); // 30 min – 3 h
            for (i, c) in graph.coords.iter().enumerate() {
                let d_km = graph.coords[center].distance(c);
                let w = (-d_km * d_km / 16.0).exp() as f32;
                if w < 0.05 {
                    continue;
                }
                let lag = (d_km / 1.7).round() as usize; // steps of propagation delay
                for dt in 0..duration {
                    let tt = ti + lag + dt;
                    if tt >= t {
                        break;
                    }
                    let half = duration as f32 / 2.0;
                    let prog = 1.0 - ((dt as f32 - half).abs() / half);
                    values.data_mut()[tt * n + i] -= severity * w * prog;
                }
            }
        }
    }

    // Two noise components, then clamping to a physical range:
    // a slow spatially-correlated drift, and a temporally *rough* but
    // spatially smooth fluctuation (shared congestion jitter along the road —
    // predictable from neighbours at the same instant but not from a node's
    // own past, which is what separates spatial models from interpolation).
    let slow = spatially_correlated_ar1(t, &fwd, 0.7, noise_std * 0.6, &mut rng);
    let rough = spatially_correlated_ar1(t, &fwd, 0.1, noise_std, &mut rng);
    for ((v, &s), &r) in values.data_mut().iter_mut().zip(slow.data()).zip(rough.data()) {
        *v = (*v + s + r).clamp(3.0, 75.0);
    }

    let observed_mask = original_missing_mask(t, n, missing_rate, &mut rng);

    let data = SpatioTemporalDataset {
        name: name.into(),
        values,
        observed_mask,
        eval_mask: NdArray::zeros(&[t, n]),
        steps_per_day: spd,
        graph,
        train_frac: cfg.train_frac,
        valid_frac: cfg.valid_frac,
    };
    data.check_invariants();
    data
}

fn gaussian_bump(hour: f32, center: f32, width: f32) -> f32 {
    let d = hour - center;
    (-d * d / (2.0 * width * width)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(profile: TrafficProfile) -> TrafficConfig {
        TrafficConfig {
            profile,
            n_nodes: 16,
            n_days: 4,
            seed: 11,
            train_frac: 0.7,
            valid_frac: 0.1,
        }
    }

    #[test]
    fn shapes_and_invariants() {
        let d = generate_traffic(&small(TrafficProfile::MetrLa));
        assert_eq!(d.n_nodes(), 16);
        assert_eq!(d.n_steps(), 4 * 288);
        assert_eq!(d.steps_per_day, 288);
        d.check_invariants();
    }

    #[test]
    fn speeds_in_physical_range() {
        let d = generate_traffic(&small(TrafficProfile::MetrLa));
        assert!(d.values.data().iter().all(|&v| (3.0..=75.0).contains(&v)));
    }

    #[test]
    fn rush_hour_slower_than_night() {
        let d = generate_traffic(&small(TrafficProfile::MetrLa));
        let n = d.n_nodes();
        let spd = 288;
        // average speed at 8am (step 96) on day 0-3 weekdays vs 3am (step 36)
        let mut rush = 0.0f64;
        let mut night = 0.0f64;
        let mut cnt = 0.0;
        for day in 0..4 {
            if day % 7 >= 5 {
                continue;
            }
            for i in 0..n {
                rush += d.values.data()[(day * spd + 96) * n + i] as f64;
                night += d.values.data()[(day * spd + 36) * n + i] as f64;
                cnt += 1.0;
            }
        }
        assert!(rush / cnt < night / cnt - 3.0, "no rush-hour dip: {} vs {}", rush / cnt, night / cnt);
    }

    #[test]
    fn pems_profile_smoother_and_denser() {
        let la = generate_traffic(&small(TrafficProfile::MetrLa));
        let bay = generate_traffic(&small(TrafficProfile::PemsBay));
        let missing = |d: &SpatioTemporalDataset| {
            1.0 - d.observed_mask.data().iter().map(|&v| v as f64).sum::<f64>()
                / d.observed_mask.numel() as f64
        };
        assert!(missing(&la) > missing(&bay), "METR-LA-like should have more original missing");
        assert!(missing(&bay) < 0.01);
    }

    #[test]
    fn names_match_profiles() {
        assert_eq!(generate_traffic(&small(TrafficProfile::MetrLa)).name, "metr-la-like");
        assert_eq!(generate_traffic(&small(TrafficProfile::PemsBay)).name, "pems-bay-like");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate_traffic(&small(TrafficProfile::MetrLa));
        let b = generate_traffic(&small(TrafficProfile::MetrLa));
        assert_eq!(a.values, b.values);
    }
}
