//! Synthetic dataset generators replacing the paper's real-world panels.
//!
//! Real AQI-36 / METR-LA / PEMS-BAY archives are not available offline, so
//! these generators synthesise panels with the three properties the
//! imputation task actually exercises (DESIGN.md §1):
//!
//! 1. **temporal structure** — diurnal cycles plus AR(1) persistence;
//! 2. **spatial structure aligned with the graph** — latent disturbances
//!    (pollution episodes / traffic incidents) diffuse to geographic
//!    neighbours, so the thresholded-Gaussian-kernel adjacency is genuinely
//!    informative;
//! 3. **realistic original missingness** — bursty sensor outages on top of
//!    scattered point dropouts, at each dataset's documented rate.

mod air_quality;
mod noise;
mod traffic;

pub use air_quality::{generate_air_quality, AirQualityConfig};
pub use noise::spatially_correlated_ar1;
pub use traffic::{generate_traffic, TrafficConfig, TrafficProfile};
