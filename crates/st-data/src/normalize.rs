//! Per-node standardisation fitted on training-split observed values only
//! (no information leak from validation/test or from masked positions).

use crate::dataset::{SpatioTemporalDataset, Split};
use st_tensor::NdArray;

/// Per-node mean/std scaler.
#[derive(Debug, Clone)]
pub struct Normalizer {
    /// Per-node means, length `N`.
    pub mean: Vec<f32>,
    /// Per-node standard deviations (floored at a small epsilon), length `N`.
    pub std: Vec<f32>,
}

impl Normalizer {
    /// Fit on the training split of a dataset, using only positions that are
    /// observed and not eval-masked.
    pub fn fit(data: &SpatioTemporalDataset) -> Self {
        let n = data.n_nodes();
        let (start, end) = data.split_range(Split::Train);
        let mut sum = vec![0.0f64; n];
        let mut sum_sq = vec![0.0f64; n];
        let mut count = vec![0.0f64; n];
        for t in start..end {
            for i in 0..n {
                let idx = t * n + i;
                if data.observed_mask.data()[idx] > 0.0 && data.eval_mask.data()[idx] == 0.0 {
                    let v = data.values.data()[idx] as f64;
                    sum[i] += v;
                    sum_sq[i] += v * v;
                    count[i] += 1.0;
                }
            }
        }
        // Nodes with no training observations fall back to global statistics.
        let total: f64 = count.iter().sum();
        let gmean = if total > 0.0 { sum.iter().sum::<f64>() / total } else { 0.0 };
        let gvar = if total > 0.0 {
            (sum_sq.iter().sum::<f64>() / total - gmean * gmean).max(1e-8)
        } else {
            1.0
        };
        let mut mean = vec![0.0f32; n];
        let mut std = vec![1.0f32; n];
        for i in 0..n {
            if count[i] > 1.0 {
                let m = sum[i] / count[i];
                let v = (sum_sq[i] / count[i] - m * m).max(1e-8);
                mean[i] = m as f32;
                std[i] = (v.sqrt() as f32).max(1e-4);
            } else {
                mean[i] = gmean as f32;
                std[i] = (gvar.sqrt() as f32).max(1e-4);
            }
        }
        Self { mean, std }
    }

    /// Normalise an `[N, L]` window in place.
    pub fn normalize_window(&self, w: &mut NdArray) {
        let (n, l) = (w.shape()[0], w.shape()[1]);
        assert_eq!(n, self.mean.len(), "normalizer node count mismatch");
        for i in 0..n {
            let (m, s) = (self.mean[i], self.std[i]);
            for v in &mut w.data_mut()[i * l..(i + 1) * l] {
                *v = (*v - m) / s;
            }
        }
    }

    /// Invert normalisation on an `[N, L]` window in place.
    pub fn denormalize_window(&self, w: &mut NdArray) {
        let (n, l) = (w.shape()[0], w.shape()[1]);
        assert_eq!(n, self.mean.len(), "normalizer node count mismatch");
        for i in 0..n {
            let (m, s) = (self.mean[i], self.std[i]);
            for v in &mut w.data_mut()[i * l..(i + 1) * l] {
                *v = *v * s + m;
            }
        }
    }

    /// Normalise a single value for node `i`.
    pub fn normalize_value(&self, i: usize, v: f32) -> f32 {
        (v - self.mean[i]) / self.std[i]
    }

    /// Denormalise a single value for node `i`.
    pub fn denormalize_value(&self, i: usize, v: f32) -> f32 {
        v * self.std[i] + self.mean[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::{random_plane_layout, SensorGraph};

    fn dataset_with_values(vals: Vec<f32>, t: usize, n: usize) -> SpatioTemporalDataset {
        SpatioTemporalDataset {
            name: "t".into(),
            values: NdArray::from_vec(&[t, n], vals),
            observed_mask: NdArray::ones(&[t, n]),
            eval_mask: NdArray::zeros(&[t, n]),
            steps_per_day: 24,
            graph: SensorGraph::from_coords(random_plane_layout(n, 10.0, 1), 0.1),
            train_frac: 0.8,
            valid_frac: 0.1,
        }
    }

    #[test]
    fn fit_recovers_mean_and_std() {
        // node 0 constant 10 (std floored), node 1 alternating 0/2 (mean 1, std 1)
        let t = 100;
        let mut vals = vec![0.0f32; t * 2];
        for ti in 0..t {
            vals[ti * 2] = 10.0;
            vals[ti * 2 + 1] = if ti % 2 == 0 { 0.0 } else { 2.0 };
        }
        let d = dataset_with_values(vals, t, 2);
        let norm = Normalizer::fit(&d);
        assert!((norm.mean[0] - 10.0).abs() < 1e-4);
        assert!((norm.mean[1] - 1.0).abs() < 1e-4);
        assert!((norm.std[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn round_trip_window() {
        let t = 50;
        let n = 3;
        let vals: Vec<f32> = (0..t * n).map(|i| (i as f32 * 0.37).sin() * 5.0 + 20.0).collect();
        let d = dataset_with_values(vals, t, n);
        let norm = Normalizer::fit(&d);
        let w = d.window_at(10, 8);
        let mut z = w.values.clone();
        norm.normalize_window(&mut z);
        let mut back = z.clone();
        norm.denormalize_window(&mut back);
        for (a, b) in back.data().iter().zip(w.values.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn eval_masked_positions_do_not_leak_into_stats() {
        let t = 20;
        let mut d = dataset_with_values(vec![1.0; t * 2], t, 2);
        // poison some values but eval-mask them; stats must ignore them
        for ti in 0..5 {
            d.values.data_mut()[ti * 2] = 1e6;
            d.eval_mask.data_mut()[ti * 2] = 1.0;
        }
        let norm = Normalizer::fit(&d);
        assert!((norm.mean[0] - 1.0).abs() < 1e-4, "mean leaked: {}", norm.mean[0]);
    }

    #[test]
    fn single_value_round_trip() {
        let d = dataset_with_values((0..40).map(|i| i as f32).collect(), 20, 2);
        let norm = Normalizer::fit(&d);
        let z = norm.normalize_value(1, 7.0);
        assert!((norm.denormalize_value(1, z) - 7.0).abs() < 1e-4);
    }
}
