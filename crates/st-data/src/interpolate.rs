//! Per-node linear interpolation along time.
//!
//! This single routine plays two roles in the paper: it is PriSTI's
//! `Interpolate(·)` conditioner, producing the "coarse yet effective"
//! conditional information `𝒳` (Section III-B1), and it is the Lin-ITP
//! baseline (torchcde's linear interpolation). Edge behaviour matches
//! torchcde: constant extrapolation before the first / after the last
//! observation; a node with no observations at all falls back to `fallback`
//! (0 in normalised space, i.e. the training mean).

use std::collections::VecDeque;

use st_tensor::NdArray;

/// Linearly interpolate a `[N, L]` window along its time axis.
///
/// `mask[n, l] > 0` marks positions whose `values` are trusted; all other
/// positions are filled. Returns a fully dense `[N, L]` array.
pub fn linear_interpolate(values: &NdArray, mask: &NdArray, fallback: f32) -> NdArray {
    assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
    assert_eq!(values.ndim(), 2, "expected [N, L]");
    let (n, l) = (values.shape()[0], values.shape()[1]);
    let mut out = values.clone();
    for i in 0..n {
        let row_mask = &mask.data()[i * l..(i + 1) * l];
        let observed: Vec<usize> = (0..l).filter(|&t| row_mask[t] > 0.0).collect();
        let row = &mut out.data_mut()[i * l..(i + 1) * l];
        if observed.is_empty() {
            for v in row.iter_mut() {
                *v = fallback;
            }
            continue;
        }
        // constant extrapolation at the edges
        let first = observed[0];
        let last = *observed.last().unwrap();
        for t in 0..first {
            row[t] = row[first];
        }
        for t in (last + 1)..l {
            row[t] = row[last];
        }
        // linear segments between consecutive observations
        for w in observed.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b - a <= 1 {
                continue;
            }
            let va = row[a];
            let vb = row[b];
            let span = (b - a) as f32;
            for t in (a + 1)..b {
                let frac = (t - a) as f32 / span;
                row[t] = va + frac * (vb - va);
            }
        }
    }
    out
}

/// Incrementally maintained linear interpolation of a sliding `[N, L]`
/// window, bitwise-identical to rerunning [`linear_interpolate`] on the full
/// window after every shift.
///
/// The streaming server shifts its window one timestep per tick; rebuilding
/// the conditional prior from scratch is `O(N·L)` per tick even though at
/// most one column of observation support changed. `SlidingInterp` keeps the
/// interpolated window and, per [`shift`](SlidingInterp::shift), recomputes
/// only the regions whose supporting observations changed:
///
/// * the tail segment from the previous last observation when the incoming
///   column is observed (it was constant extrapolation, now it is a linear
///   segment),
/// * the single appended cell when the incoming column is missing (constant
///   extrapolation of the last observation, or `fallback`),
/// * the head region up to the new first observation when the departing
///   column carried the row's first observation (it was a linear segment,
///   now it is constant extrapolation),
/// * the whole row in the two degenerate transitions (last observation
///   departs → `fallback` row; first observation arrives → constant row).
///
/// **Why this is bitwise-equal to a full rebuild:** every value
/// [`linear_interpolate`] produces is either a trusted observation, the
/// `fallback`, a copy of the nearest edge observation, or
/// `va + frac·(vb−va)` with `frac = (t−a)/(b−a)` — a function of the
/// *difference* between window-relative indices, never of the absolute
/// positions. Shifting the window subtracts the same constant from `t`, `a`
/// and `b`, so a segment computed when it formed yields the exact same f32
/// inputs — and therefore the exact same bits — as a recompute at any later
/// shift. DESIGN.md §16 spells out the full argument.
///
/// ```
/// use st_data::interpolate::{linear_interpolate, SlidingInterp};
/// use st_tensor::NdArray;
///
/// let mut inc = SlidingInterp::new(1, 4, 0.0);
/// for (v, obs) in [(1.0, true), (0.0, false), (3.0, true), (0.0, false)] {
///     inc.shift(&[v], &[obs]);
/// }
/// // window is now [1.0, gap, 3.0, gap]
/// let full = linear_interpolate(
///     &NdArray::from_vec(&[1, 4], vec![1.0, 0.0, 3.0, 0.0]),
///     &NdArray::from_vec(&[1, 4], vec![1.0, 0.0, 1.0, 0.0]),
///     0.0,
/// );
/// assert_eq!(inc.cond().data(), full.data());
/// ```
#[derive(Debug, Clone)]
pub struct SlidingInterp {
    n: usize,
    l: usize,
    fallback: f32,
    /// Window-relative indices of observed positions, ascending, per row.
    obs: Vec<VecDeque<usize>>,
    /// The interpolated window `[N, L]`.
    cond: NdArray,
}

impl SlidingInterp {
    /// A sliding interpolator over `n` nodes and window length `l`, starting
    /// from an all-missing window (every cell is `fallback`).
    ///
    /// # Panics
    /// Panics when `n == 0` or `l == 0`.
    pub fn new(n: usize, l: usize, fallback: f32) -> Self {
        assert!(n > 0 && l > 0, "SlidingInterp needs a non-empty window");
        SlidingInterp {
            n,
            l,
            fallback,
            obs: vec![VecDeque::new(); n],
            cond: NdArray::from_vec(&[n, l], vec![fallback; n * l]),
        }
    }

    /// The current interpolated window, `[N, L]`.
    pub fn cond(&self) -> &NdArray {
        &self.cond
    }

    /// Number of observed positions currently inside row `node`'s window.
    pub fn observed_count(&self, node: usize) -> usize {
        self.obs[node].len()
    }

    /// Shift the window one timestep: drop the oldest column, append one new
    /// column. `vals[i]` is the trusted value for node `i` when
    /// `observed[i]` is true; when false `vals[i]` is ignored.
    ///
    /// # Panics
    /// Panics when `vals` or `observed` is not `N` long.
    pub fn shift(&mut self, vals: &[f32], observed: &[bool]) {
        assert_eq!(vals.len(), self.n, "vals length != N");
        assert_eq!(observed.len(), self.n, "observed length != N");
        let l = self.l;
        for i in 0..self.n {
            let obs = &mut self.obs[i];
            let row = &mut self.cond.data_mut()[i * l..(i + 1) * l];
            // 1. retire the departing column and re-address survivors
            let first_obs_departed = obs.front() == Some(&0);
            if first_obs_departed {
                obs.pop_front();
            }
            for o in obs.iter_mut() {
                *o -= 1;
            }
            // 2. slide the interpolated row left by one
            row.copy_within(1.., 0);
            // 3. integrate the appended column
            if observed[i] {
                let val = vals[i];
                if let Some(&p) = obs.back() {
                    // the old constant tail (p, L-1] becomes a linear segment
                    let va = row[p];
                    let span = (l - 1 - p) as f32;
                    for t in (p + 1)..(l - 1) {
                        let frac = (t - p) as f32 / span;
                        row[t] = va + frac * (val - va);
                    }
                } else {
                    // first observation in the window: constant row
                    for v in row.iter_mut() {
                        *v = val;
                    }
                }
                row[l - 1] = val;
                obs.push_back(l - 1);
            } else {
                row[l - 1] = match obs.back() {
                    Some(&p) => row[p],
                    None => self.fallback,
                };
            }
            // 4. head fix-up: the departed column held the first observation
            if first_obs_departed {
                match obs.front() {
                    Some(&f) => {
                        // the old linear head segment becomes constant
                        // extrapolation of the new first observation
                        let v = row[f];
                        for t in 0..f {
                            row[t] = v;
                        }
                    }
                    // no observation left anywhere (the appended-column case
                    // already rebuilt the row if it was observed)
                    None => {
                        for v in row.iter_mut() {
                            *v = self.fallback;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interp(vals: Vec<f32>, mask: Vec<f32>) -> Vec<f32> {
        let l = vals.len();
        let v = NdArray::from_vec(&[1, l], vals);
        let m = NdArray::from_vec(&[1, l], mask);
        linear_interpolate(&v, &m, 0.0).into_vec()
    }

    #[test]
    fn exact_on_observed_positions() {
        let out = interp(vec![1.0, 9.0, 3.0, 9.0, 5.0], vec![1.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[2], 3.0);
        assert_eq!(out[4], 5.0);
    }

    #[test]
    fn midpoints_are_linear() {
        let out = interp(vec![0.0, -1.0, 4.0], vec![1.0, 0.0, 1.0]);
        assert!((out[1] - 2.0).abs() < 1e-6);
        let out = interp(vec![0.0, 0.0, 0.0, 3.0], vec![1.0, 0.0, 0.0, 1.0]);
        assert!((out[1] - 1.0).abs() < 1e-6);
        assert!((out[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn constant_extrapolation_at_edges() {
        let out = interp(vec![9.0, 9.0, 5.0, 7.0, 9.0], vec![0.0, 0.0, 1.0, 1.0, 0.0]);
        assert_eq!(out[0], 5.0);
        assert_eq!(out[1], 5.0);
        assert_eq!(out[4], 7.0);
    }

    #[test]
    fn unobserved_node_gets_fallback() {
        let v = NdArray::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 9.0, 9.0, 9.0]);
        let m = NdArray::from_vec(&[2, 3], vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        let out = linear_interpolate(&v, &m, -7.5);
        assert_eq!(&out.data()[3..], &[-7.5, -7.5, -7.5]);
        assert_eq!(&out.data()[..3], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn fully_observed_is_identity() {
        let out = interp(vec![3.0, 1.0, 4.0, 1.0], vec![1.0; 4]);
        assert_eq!(out, vec![3.0, 1.0, 4.0, 1.0]);
    }

    #[test]
    fn single_observation_fills_constant() {
        let out = interp(vec![0.0, 2.5, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]);
        assert_eq!(out, vec![2.5, 2.5, 2.5, 2.5]);
    }

    /// Drive a `SlidingInterp` with a pseudo-random tick stream and assert
    /// after every shift that its window is bitwise-identical to a cold
    /// `linear_interpolate` over the materialised values/mask — the
    /// incremental ≡ rebuild contract DESIGN.md §16 rests on.
    #[test]
    fn sliding_matches_full_recompute_bitwise() {
        use st_rand::{Rng, SeedableRng, StdRng};
        let (n, l, fallback) = (4usize, 7usize, 0.0f32);
        let mut rng = StdRng::seed_from_u64(0x51_1D1);
        let mut inc = SlidingInterp::new(n, l, fallback);
        // materialised window the reference recompute sees
        let mut values = vec![0.0f32; n * l];
        let mut mask = vec![0.0f32; n * l];
        for tick in 0..64 {
            let mut vals = vec![0.0f32; n];
            let mut observed = vec![false; n];
            for i in 0..n {
                // per-row density ranges from dense to fully missing so the
                // stream exercises every head/tail/degenerate transition
                let density = [0.9, 0.5, 0.15, 0.0][i % 4];
                observed[i] = rng.random_bool(density);
                vals[i] = (rng.random::<f32>() - 0.5) * 4.0;
            }
            inc.shift(&vals, &observed);
            for i in 0..n {
                let row_v = &mut values[i * l..(i + 1) * l];
                let row_m = &mut mask[i * l..(i + 1) * l];
                row_v.copy_within(1.., 0);
                row_m.copy_within(1.., 0);
                row_v[l - 1] = if observed[i] { vals[i] } else { 0.0 };
                row_m[l - 1] = if observed[i] { 1.0 } else { 0.0 };
            }
            let full = linear_interpolate(
                &NdArray::from_vec(&[n, l], values.clone()),
                &NdArray::from_vec(&[n, l], mask.clone()),
                fallback,
            );
            for (a, b) in inc.cond().data().iter().zip(full.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "tick {tick}: {a} != {b}");
            }
        }
    }

    #[test]
    fn sliding_observed_count_tracks_mask() {
        let mut inc = SlidingInterp::new(1, 3, 0.0);
        assert_eq!(inc.observed_count(0), 0);
        inc.shift(&[1.0], &[true]);
        inc.shift(&[2.0], &[true]);
        inc.shift(&[0.0], &[false]);
        assert_eq!(inc.observed_count(0), 2);
        // both observations slide out over the next three shifts
        inc.shift(&[0.0], &[false]);
        inc.shift(&[0.0], &[false]);
        inc.shift(&[0.0], &[false]);
        assert_eq!(inc.observed_count(0), 0);
        assert_eq!(inc.cond().data(), &[0.0, 0.0, 0.0]);
    }
}
