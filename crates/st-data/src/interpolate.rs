//! Per-node linear interpolation along time.
//!
//! This single routine plays two roles in the paper: it is PriSTI's
//! `Interpolate(·)` conditioner, producing the "coarse yet effective"
//! conditional information `𝒳` (Section III-B1), and it is the Lin-ITP
//! baseline (torchcde's linear interpolation). Edge behaviour matches
//! torchcde: constant extrapolation before the first / after the last
//! observation; a node with no observations at all falls back to `fallback`
//! (0 in normalised space, i.e. the training mean).

use st_tensor::NdArray;

/// Linearly interpolate a `[N, L]` window along its time axis.
///
/// `mask[n, l] > 0` marks positions whose `values` are trusted; all other
/// positions are filled. Returns a fully dense `[N, L]` array.
pub fn linear_interpolate(values: &NdArray, mask: &NdArray, fallback: f32) -> NdArray {
    assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
    assert_eq!(values.ndim(), 2, "expected [N, L]");
    let (n, l) = (values.shape()[0], values.shape()[1]);
    let mut out = values.clone();
    for i in 0..n {
        let row_mask = &mask.data()[i * l..(i + 1) * l];
        let observed: Vec<usize> = (0..l).filter(|&t| row_mask[t] > 0.0).collect();
        let row = &mut out.data_mut()[i * l..(i + 1) * l];
        if observed.is_empty() {
            for v in row.iter_mut() {
                *v = fallback;
            }
            continue;
        }
        // constant extrapolation at the edges
        let first = observed[0];
        let last = *observed.last().unwrap();
        for t in 0..first {
            row[t] = row[first];
        }
        for t in (last + 1)..l {
            row[t] = row[last];
        }
        // linear segments between consecutive observations
        for w in observed.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b - a <= 1 {
                continue;
            }
            let va = row[a];
            let vb = row[b];
            let span = (b - a) as f32;
            for t in (a + 1)..b {
                let frac = (t - a) as f32 / span;
                row[t] = va + frac * (vb - va);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interp(vals: Vec<f32>, mask: Vec<f32>) -> Vec<f32> {
        let l = vals.len();
        let v = NdArray::from_vec(&[1, l], vals);
        let m = NdArray::from_vec(&[1, l], mask);
        linear_interpolate(&v, &m, 0.0).into_vec()
    }

    #[test]
    fn exact_on_observed_positions() {
        let out = interp(vec![1.0, 9.0, 3.0, 9.0, 5.0], vec![1.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[2], 3.0);
        assert_eq!(out[4], 5.0);
    }

    #[test]
    fn midpoints_are_linear() {
        let out = interp(vec![0.0, -1.0, 4.0], vec![1.0, 0.0, 1.0]);
        assert!((out[1] - 2.0).abs() < 1e-6);
        let out = interp(vec![0.0, 0.0, 0.0, 3.0], vec![1.0, 0.0, 0.0, 1.0]);
        assert!((out[1] - 1.0).abs() < 1e-6);
        assert!((out[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn constant_extrapolation_at_edges() {
        let out = interp(vec![9.0, 9.0, 5.0, 7.0, 9.0], vec![0.0, 0.0, 1.0, 1.0, 0.0]);
        assert_eq!(out[0], 5.0);
        assert_eq!(out[1], 5.0);
        assert_eq!(out[4], 7.0);
    }

    #[test]
    fn unobserved_node_gets_fallback() {
        let v = NdArray::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 9.0, 9.0, 9.0]);
        let m = NdArray::from_vec(&[2, 3], vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        let out = linear_interpolate(&v, &m, -7.5);
        assert_eq!(&out.data()[3..], &[-7.5, -7.5, -7.5]);
        assert_eq!(&out.data()[..3], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn fully_observed_is_identity() {
        let out = interp(vec![3.0, 1.0, 4.0, 1.0], vec![1.0; 4]);
        assert_eq!(out, vec![3.0, 1.0, 4.0, 1.0]);
    }

    #[test]
    fn single_observation_fills_constant() {
        let out = interp(vec![0.0, 2.5, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]);
        assert_eq!(out, vec![2.5, 2.5, 2.5, 2.5]);
    }
}
