//! # st-data
//!
//! Data substrate for PriSTI-rs: synthetic spatiotemporal datasets standing in
//! for AQI-36 / METR-LA / PEMS-BAY (see DESIGN.md §1 for the substitution
//! argument), evaluation-mask injection for the paper's three missing
//! patterns, the training mask strategies of Section III-A, per-node linear
//! interpolation (the `Interpolate(·)` conditioner and the Lin-ITP baseline),
//! windowing and normalisation.
//!
//! Conventions: full series are stored time-major `[T, N]`; training windows
//! are node-major `[N, L]` as in the paper's notation.

#![warn(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod dataset;
pub mod generators;
pub mod interpolate;
pub mod io;
pub mod mask_strategy;
pub mod missing;
pub mod normalize;

pub use dataset::{SpatioTemporalDataset, Split, Window};
pub use interpolate::{linear_interpolate, SlidingInterp};
pub use mask_strategy::MaskStrategy;
pub use normalize::Normalizer;
