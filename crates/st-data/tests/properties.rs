//! Property-based tests for the data substrate: interpolation, mask
//! strategies, missing injection and normalisation invariants.

use st_check::prelude::*;
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::interpolate::linear_interpolate;
use st_data::mask_strategy::MaskStrategy;
use st_data::missing::{eval_rate, inject_block_missing, inject_point_missing};
use st_data::normalize::Normalizer;
use st_tensor::NdArray;

fn window_and_mask() -> impl Strategy<Value = (NdArray, NdArray)> {
    (1usize..6, 2usize..16, 0u64..500).prop_map(|(n, l, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let vals = NdArray::randn(&[n, l], &mut rng).scale(5.0);
        let mask_data: Vec<f32> = (0..n * l)
            .map(|i| if (seed as usize + i * 7).is_multiple_of(3) { 0.0 } else { 1.0 })
            .collect();
        (vals, NdArray::from_vec(&[n, l], mask_data))
    })
}

properties! {
    /// Interpolation never alters observed values and always produces finite
    /// output within the per-row observed range (linear interpolation of a
    /// bounded set cannot overshoot).
    #[test]
    fn interpolation_exact_and_bounded((vals, mask) in window_and_mask()) {
        let out = linear_interpolate(&vals, &mask, 0.0);
        let (n, l) = (vals.shape()[0], vals.shape()[1]);
        for i in 0..n {
            let observed: Vec<f32> = (0..l)
                .filter(|&t| mask.at(&[i, t]) > 0.0)
                .map(|t| vals.at(&[i, t]))
                .collect();
            for t in 0..l {
                let v = out.at(&[i, t]);
                prop_assert!(v.is_finite());
                if mask.at(&[i, t]) > 0.0 {
                    prop_assert_eq!(v, vals.at(&[i, t]));
                } else if !observed.is_empty() {
                    let lo = observed.iter().cloned().fold(f32::MAX, f32::min);
                    let hi = observed.iter().cloned().fold(f32::MIN, f32::max);
                    prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4,
                        "interp {v} outside observed range [{lo}, {hi}]");
                }
            }
        }
    }

    /// Every mask strategy produces targets strictly inside the observed set
    /// and leaves at least one conditioning value when more than one value
    /// is observed.
    #[test]
    fn strategies_respect_observed((_vals, mask) in window_and_mask(), seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        for strat in [MaskStrategy::Point, MaskStrategy::Block, MaskStrategy::HybridBlock] {
            let target = strat.sample(&mask, &mut rng);
            for (t, o) in target.data().iter().zip(mask.data()) {
                prop_assert!(*t == 0.0 || *o > 0.0, "target outside observed");
            }
        }
    }

    /// Point injection rate is monotone in the requested rate.
    #[test]
    fn point_injection_monotone(seed in 0u64..100) {
        let obs = NdArray::ones(&[200, 10]);
        let lo = inject_point_missing(&obs, 0.1, seed);
        let hi = inject_point_missing(&obs, 0.5, seed.wrapping_add(1));
        prop_assert!(eval_rate(&obs, &lo) < eval_rate(&obs, &hi));
    }

    /// Block injection never exceeds the observed set and produces non-trivial
    /// coverage for non-trivial parameters.
    #[test]
    fn block_injection_within_observed(seed in 0u64..100) {
        let mut obs = NdArray::ones(&[300, 6]);
        for i in 0..100 {
            obs.data_mut()[i * 6] = 0.0;
        }
        let eval = inject_block_missing(&obs, 0.05, 0.01, 4, 12, seed);
        for (e, o) in eval.data().iter().zip(obs.data()) {
            prop_assert!(*e == 0.0 || *o > 0.0);
        }
        prop_assert!(eval_rate(&obs, &eval) > 0.0);
    }

    /// Normalize/denormalize is the identity (up to f32 rounding) on any
    /// window of any dataset.
    #[test]
    fn normalizer_round_trip(seed in 0u64..50, t0 in 0usize..100) {
        let data = generate_air_quality(&AirQualityConfig {
            n_nodes: 6,
            n_days: 7,
            seed,
            ..Default::default()
        });
        let norm = Normalizer::fit(&data);
        let t0 = t0.min(data.n_steps() - 12);
        let w = data.window_at(t0, 12);
        let mut z = w.values.clone();
        norm.normalize_window(&mut z);
        norm.denormalize_window(&mut z);
        for (a, b) in z.data().iter().zip(w.values.data()) {
            prop_assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    /// Window extraction indexes correctly: every window element equals the
    /// corresponding panel element.
    #[test]
    fn windows_match_panel(seed in 0u64..50, t0 in 0usize..80, len in 4usize..16) {
        let data = generate_air_quality(&AirQualityConfig {
            n_nodes: 5,
            n_days: 6,
            seed,
            ..Default::default()
        });
        let t0 = t0.min(data.n_steps() - len);
        let w = data.window_at(t0, len);
        let n = data.n_nodes();
        for i in 0..n {
            for t in 0..len {
                prop_assert_eq!(w.values.at(&[i, t]), data.values.data()[(t0 + t) * n + i]);
                prop_assert_eq!(w.observed.at(&[i, t]), data.observed_mask.data()[(t0 + t) * n + i]);
            }
        }
    }
}
