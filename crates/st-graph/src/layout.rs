//! Synthetic sensor placements.
//!
//! The paper's datasets place sensors either across a metropolitan area
//! (AQI-36 monitoring stations) or along highways (METR-LA / PEMS-BAY loop
//! detectors). Two layout generators reproduce those geometries.

use st_rand::StdRng;
use st_rand::{Rng, SeedableRng};

/// 2-D sensor coordinates in kilometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coord {
    /// East–west position (km).
    pub x: f64,
    /// North–south position (km).
    pub y: f64,
}

impl Coord {
    /// Euclidean distance to another coordinate.
    pub fn distance(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Scatter `n` sensors uniformly over an `extent × extent` km square with a
/// mild clustering tendency (air-quality stations cluster in urban cores).
pub fn random_plane_layout(n: usize, extent: f64, seed: u64) -> Vec<Coord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clusters = (n / 8).clamp(1, 6);
    let centers: Vec<Coord> = (0..n_clusters)
        .map(|_| Coord {
            x: rng.random_range(0.2 * extent..0.8 * extent),
            y: rng.random_range(0.2 * extent..0.8 * extent),
        })
        .collect();
    (0..n)
        .map(|_| {
            if rng.random_range(0.0..1.0) < 0.6 {
                let c = centers[rng.random_range(0..n_clusters)];
                Coord {
                    x: (c.x + rng.random_range(-0.12 * extent..0.12 * extent))
                        .clamp(0.0, extent),
                    y: (c.y + rng.random_range(-0.12 * extent..0.12 * extent))
                        .clamp(0.0, extent),
                }
            } else {
                Coord {
                    x: rng.random_range(0.0..extent),
                    y: rng.random_range(0.0..extent),
                }
            }
        })
        .collect()
}

/// Place `n` sensors along a branching highway: a main corridor with a couple
/// of branches, mimicking loop-detector deployments. Consecutive sensors along
/// a branch are near neighbours, giving the strong "upstream/downstream"
/// spatial structure traffic models exploit.
pub fn highway_chain_layout(n: usize, spacing_km: f64, seed: u64) -> Vec<Coord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(n);
    // Main corridor heading roughly east with curvature.
    let main_len = (2 * n) / 3;
    let mut pos = Coord { x: 0.0, y: 0.0 };
    let mut heading: f64 = 0.0;
    for _ in 0..main_len.min(n) {
        coords.push(pos);
        heading += rng.random_range(-0.25..0.25);
        pos = Coord {
            x: pos.x + spacing_km * heading.cos(),
            y: pos.y + spacing_km * heading.sin(),
        };
    }
    // Branches split from random points on the corridor.
    while coords.len() < n {
        let origin = coords[rng.random_range(0..main_len.min(coords.len()))];
        let mut bpos = origin;
        let mut bheading: f64 = rng.random_range(0.8..2.4);
        let blen = rng.random_range(3..(n / 4).max(4));
        for _ in 0..blen {
            if coords.len() >= n {
                break;
            }
            bheading += rng.random_range(-0.2..0.2);
            bpos = Coord {
                x: bpos.x + spacing_km * bheading.cos(),
                y: bpos.y + spacing_km * bheading.sin(),
            };
            coords.push(bpos);
        }
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_layout_in_bounds() {
        let coords = random_plane_layout(36, 40.0, 1);
        assert_eq!(coords.len(), 36);
        for c in &coords {
            assert!((0.0..=40.0).contains(&c.x));
            assert!((0.0..=40.0).contains(&c.y));
        }
    }

    #[test]
    fn plane_layout_deterministic() {
        assert_eq!(random_plane_layout(10, 20.0, 5), random_plane_layout(10, 20.0, 5));
        assert_ne!(random_plane_layout(10, 20.0, 5), random_plane_layout(10, 20.0, 6));
    }

    #[test]
    fn highway_layout_consecutive_sensors_close() {
        let coords = highway_chain_layout(48, 1.5, 2);
        assert_eq!(coords.len(), 48);
        // sensors along the main corridor are ~spacing apart
        for w in coords[..20].windows(2) {
            let d = w[0].distance(&w[1]);
            assert!(d < 3.0, "consecutive corridor sensors too far apart: {d}");
        }
    }

    #[test]
    fn distance_symmetry_and_identity() {
        let a = Coord { x: 1.0, y: 2.0 };
        let b = Coord { x: 4.0, y: 6.0 };
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}
