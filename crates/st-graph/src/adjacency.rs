//! Adjacency construction: thresholded Gaussian kernel (paper Section IV-A)
//! and the bidirectional transition matrices used for diffusion convolution.

use crate::layout::Coord;
use st_tensor::NdArray;

/// A sensor network: coordinates plus a weighted adjacency matrix.
#[derive(Debug, Clone)]
pub struct SensorGraph {
    /// Sensor coordinates (km).
    pub coords: Vec<Coord>,
    /// Weighted adjacency `[N, N]`, zero diagonal.
    pub adjacency: NdArray,
}

impl SensorGraph {
    /// Build from coordinates with the thresholded Gaussian kernel, using the
    /// distance standard deviation as the kernel width and dropping edges
    /// whose weight falls below `threshold` (the common 0.1 convention).
    pub fn from_coords(coords: Vec<Coord>, threshold: f64) -> Self {
        let adjacency = gaussian_kernel_adjacency(&coords, threshold);
        Self { coords, adjacency }
    }

    /// Number of sensors.
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Weighted degree (connectivity) of each node: row sums of `A`.
    pub fn connectivity(&self) -> Vec<f64> {
        let n = self.n_nodes();
        (0..n)
            .map(|i| self.adjacency.data()[i * n..(i + 1) * n].iter().map(|&w| w as f64).sum())
            .collect()
    }

    /// Index of the node with the highest weighted degree (Fig. 7's
    /// "highest connectivity" station).
    pub fn most_connected(&self) -> usize {
        argmax(&self.connectivity())
    }

    /// Index of the node with the lowest weighted degree.
    pub fn least_connected(&self) -> usize {
        argmin(&self.connectivity())
    }

    /// `k` nearest neighbours of node `i` by geographic distance.
    pub fn nearest_neighbors(&self, i: usize, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_nodes()).filter(|&j| j != i).collect();
        order.sort_by(|&a, &b| {
            self.coords[i]
                .distance(&self.coords[a])
                .partial_cmp(&self.coords[i].distance(&self.coords[b]))
                .unwrap()
        });
        order.truncate(k);
        order
    }

    /// Forward/backward transition matrices for diffusion convolution.
    pub fn transition_matrices(&self) -> (NdArray, NdArray) {
        transition_matrices(&self.adjacency)
    }
}

/// Thresholded Gaussian kernel adjacency (Shuman et al. 2013):
/// `W_ij = exp(-dist(i,j)² / σ²)` if `i ≠ j` and the weight exceeds
/// `threshold`, else 0, where `σ` is the standard deviation of all pairwise
/// distances.
pub fn gaussian_kernel_adjacency(coords: &[Coord], threshold: f64) -> NdArray {
    let n = coords.len();
    assert!(n > 1, "need at least two sensors");
    let mut dists = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            dists.push(coords[i].distance(&coords[j]));
        }
    }
    let mean = dists.iter().sum::<f64>() / dists.len() as f64;
    let var = dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dists.len() as f64;
    let sigma2 = var.max(1e-12);

    let mut a = NdArray::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = coords[i].distance(&coords[j]);
            let w = (-d * d / sigma2).exp();
            if w > threshold {
                a.data_mut()[i * n + j] = w as f32;
            }
        }
    }
    a
}

/// Row-normalised forward transition matrix `P = D⁻¹A` and backward
/// `P' = D'⁻¹Aᵀ` (Graph WaveNet / DCRNN convention). Rows with zero degree
/// become self-loops so the matrices stay stochastic.
pub fn transition_matrices(adjacency: &NdArray) -> (NdArray, NdArray) {
    assert_eq!(adjacency.ndim(), 2);
    let n = adjacency.shape()[0];
    assert_eq!(adjacency.shape(), &[n, n]);
    let fwd = row_normalise(adjacency, n);
    let at = adjacency.transpose2d();
    let bwd = row_normalise(&at, n);
    (fwd, bwd)
}

fn row_normalise(a: &NdArray, n: usize) -> NdArray {
    let mut out = a.clone();
    for i in 0..n {
        let row = &mut out.data_mut()[i * n..(i + 1) * n];
        let s: f32 = row.iter().sum();
        if s > 0.0 {
            for v in row.iter_mut() {
                *v /= s;
            }
        } else {
            row[i] = 1.0;
        }
    }
    out
}

fn argmax(v: &[f64]) -> usize {
    v.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i).unwrap()
}

fn argmin(v: &[f64]) -> usize {
    v.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{highway_chain_layout, random_plane_layout};

    #[test]
    fn adjacency_symmetric_zero_diag_nonneg() {
        let coords = random_plane_layout(20, 30.0, 3);
        let a = gaussian_kernel_adjacency(&coords, 0.1);
        let n = 20;
        for i in 0..n {
            assert_eq!(a.data()[i * n + i], 0.0, "diagonal must be zero");
            for j in 0..n {
                let w = a.data()[i * n + j];
                assert!((0.0..=1.0).contains(&w));
                assert!((w - a.data()[j * n + i]).abs() < 1e-6, "must be symmetric");
            }
        }
    }

    #[test]
    fn threshold_sparsifies() {
        let coords = random_plane_layout(24, 30.0, 4);
        let dense = gaussian_kernel_adjacency(&coords, 0.0);
        let sparse = gaussian_kernel_adjacency(&coords, 0.5);
        let nnz = |a: &NdArray| a.data().iter().filter(|&&w| w > 0.0).count();
        assert!(nnz(&sparse) < nnz(&dense));
    }

    #[test]
    fn closer_pairs_get_higher_weight() {
        let coords = vec![
            Coord { x: 0.0, y: 0.0 },
            Coord { x: 1.0, y: 0.0 },
            Coord { x: 10.0, y: 0.0 },
        ];
        let a = gaussian_kernel_adjacency(&coords, 0.0);
        assert!(a.at(&[0, 1]) > a.at(&[0, 2]));
    }

    #[test]
    fn transition_rows_stochastic() {
        let coords = highway_chain_layout(16, 1.0, 5);
        let g = SensorGraph::from_coords(coords, 0.1);
        let (fwd, bwd) = g.transition_matrices();
        for mat in [&fwd, &bwd] {
            for i in 0..16 {
                let s: f32 = mat.data()[i * 16..(i + 1) * 16].iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
                assert!(mat.data()[i * 16..(i + 1) * 16].iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn isolated_node_gets_self_loop() {
        let mut a = NdArray::zeros(&[3, 3]);
        *a.at_mut(&[0, 1]) = 1.0;
        *a.at_mut(&[1, 0]) = 1.0;
        let (fwd, _) = transition_matrices(&a);
        assert_eq!(fwd.at(&[2, 2]), 1.0);
    }

    #[test]
    fn connectivity_extremes() {
        let coords = random_plane_layout(36, 40.0, 6);
        let g = SensorGraph::from_coords(coords, 0.1);
        let conn = g.connectivity();
        let hi = g.most_connected();
        let lo = g.least_connected();
        assert!(conn[hi] >= conn[lo]);
        assert!(hi != lo);
    }

    #[test]
    fn nearest_neighbors_sorted_by_distance() {
        let coords = random_plane_layout(12, 20.0, 7);
        let g = SensorGraph::from_coords(coords.clone(), 0.0);
        let nn = g.nearest_neighbors(0, 5);
        assert_eq!(nn.len(), 5);
        for w in nn.windows(2) {
            assert!(
                coords[0].distance(&coords[w[0]]) <= coords[0].distance(&coords[w[1]]) + 1e-12
            );
        }
    }
}
