//! # st-graph
//!
//! Sensor-network graphs for spatiotemporal imputation: node layouts,
//! geographic distances, the thresholded-Gaussian-kernel adjacency used by
//! the paper for all three datasets (following Shuman et al. 2013, ref [25]),
//! and the forward/backward transition matrices consumed by the
//! Graph-WaveNet-style message passing in `st-tensor::nn::Mpnn`.

#![warn(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod adjacency;
pub mod layout;

pub use adjacency::{gaussian_kernel_adjacency, transition_matrices, SensorGraph};
pub use layout::{highway_chain_layout, random_plane_layout};
