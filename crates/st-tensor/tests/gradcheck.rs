//! Finite-difference verification of every autodiff gradient rule.
//!
//! For each op (and for composite layers), we build a scalar loss from a
//! named parameter, compute the analytic gradient with `Graph::backward`, and
//! compare it against central finite differences of the loss. All arithmetic
//! is f32, so tolerances are loose but tight enough to catch any wrong rule
//! (a sign error or transpose mistake produces O(1) disagreement).

use st_rand::StdRng;
use st_rand::SeedableRng;
use st_tensor::graph::Graph;
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{
    gated_activation, DilatedConv1d, GruCell, Linear, Mlp, Mpnn, MultiHeadAttention,
};
use st_tensor::param::ParamStore;

/// Numerically check d(loss)/d(param `name`) against `Graph::backward`.
///
/// `build` must construct the loss graph from the store and return the loss
/// tensor's scalar value along with the analytic gradient of `name`. The
/// finite-difference numerics live in `st_check::gradcheck`; this wrapper
/// adapts them to a named `ParamStore` entry.
fn check_param_grad(
    store: &mut ParamStore,
    name: &str,
    build: &dyn Fn(&ParamStore) -> (f32, Option<NdArray>),
    eps: f32,
    rtol: f32,
    atol: f32,
) {
    let (_, analytic) = build(store);
    let analytic = analytic.unwrap_or_else(|| panic!("no gradient produced for `{name}`"));
    let n = store.get(name).unwrap().numel();
    assert_eq!(analytic.numel(), n, "gradient shape mismatch for `{name}`");
    let cell = std::cell::RefCell::new(store);
    st_check::gradcheck::assert_grad_matches(
        name,
        n,
        |i| analytic.data()[i],
        |i, d| cell.borrow_mut().get_mut(name).unwrap().data_mut()[i] += d,
        || build(&cell.borrow()).0,
        eps,
        rtol,
        atol,
    );
}

/// Convenience: run a builder that returns a loss Tx, extract value + grad.
macro_rules! gradcheck {
    ($store:expr, $name:expr, |$g:ident| $body:block) => {{
        let name: &str = $name;
        let build = move |store: &ParamStore| -> (f32, Option<NdArray>) {
            let mut $g = Graph::new(store);
            let loss = $body;
            let v = $g.value(loss).data()[0];
            let grads = $g.backward(loss);
            (v, grads.get(name).cloned())
        };
        check_param_grad($store, name, &build, 1e-2, 2e-2, 2e-3);
    }};
}

fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn grad_matmul() {
    let mut rng = seeded(100);
    let mut store = ParamStore::new();
    store.insert("w", NdArray::randn(&[3, 4], &mut rng));
    let x = NdArray::randn(&[5, 3], &mut rng);
    let t = NdArray::randn(&[5, 4], &mut rng);
    gradcheck!(&mut store, "w", |g| {
        let w = g.param("w");
        let xi = g.input(x.clone());
        let y = g.matmul(xi, w);
        let ti = g.input(t.clone());
        let m = g.input(NdArray::ones(&[5, 4]));
        g.mse_masked(y, ti, m)
    });
}

#[test]
fn grad_matmul_lhs() {
    let mut rng = seeded(101);
    let mut store = ParamStore::new();
    store.insert("a", NdArray::randn(&[4, 3], &mut rng));
    let b = NdArray::randn(&[3, 2], &mut rng);
    let t = NdArray::randn(&[4, 2], &mut rng);
    gradcheck!(&mut store, "a", |g| {
        let a = g.param("a");
        let bi = g.input(b.clone());
        let y = g.matmul(a, bi);
        let ti = g.input(t.clone());
        let m = g.input(NdArray::ones(&[4, 2]));
        g.mse_masked(y, ti, m)
    });
}

#[test]
fn grad_batch_matmul_both_sides() {
    let mut rng = seeded(102);
    let mut store = ParamStore::new();
    store.insert("a", NdArray::randn(&[2, 3, 4], &mut rng));
    store.insert("b", NdArray::randn(&[2, 4, 3], &mut rng));
    let t = NdArray::randn(&[2, 3, 3], &mut rng);
    for p in ["a", "b"] {
        let t = t.clone();
        gradcheck!(&mut store, p, |g| {
            let a = g.param("a");
            let b = g.param("b");
            let y = g.batch_matmul(a, b);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 3, 3]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_batch_matmul_transb() {
    let mut rng = seeded(103);
    let mut store = ParamStore::new();
    store.insert("a", NdArray::randn(&[2, 3, 4], &mut rng));
    store.insert("b", NdArray::randn(&[2, 5, 4], &mut rng));
    let t = NdArray::randn(&[2, 3, 5], &mut rng);
    for p in ["a", "b"] {
        let t = t.clone();
        gradcheck!(&mut store, p, |g| {
            let a = g.param("a");
            let b = g.param("b");
            let y = g.batch_matmul_transb(a, b);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 3, 5]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_shared_left_matmul() {
    let mut rng = seeded(104);
    let mut store = ParamStore::new();
    store.insert("s", NdArray::randn(&[3, 3], &mut rng));
    store.insert("x", NdArray::randn(&[2, 3, 4], &mut rng));
    let t = NdArray::randn(&[2, 3, 4], &mut rng);
    for p in ["s", "x"] {
        let t = t.clone();
        gradcheck!(&mut store, p, |g| {
            let s = g.param("s");
            let x = g.param("x");
            let y = g.shared_left_matmul(s, x);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 3, 4]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_shared_left_matmul_rectangular() {
    let mut rng = seeded(105);
    let mut store = ParamStore::new();
    store.insert("s", NdArray::randn(&[2, 5], &mut rng));
    store.insert("x", NdArray::randn(&[3, 5, 4], &mut rng));
    let t = NdArray::randn(&[3, 2, 4], &mut rng);
    for p in ["s", "x"] {
        let t = t.clone();
        gradcheck!(&mut store, p, |g| {
            let s = g.param("s");
            let x = g.param("x");
            let y = g.shared_left_matmul(s, x);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[3, 2, 4]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_softmax() {
    let mut rng = seeded(106);
    let mut store = ParamStore::new();
    store.insert("x", NdArray::randn(&[3, 5], &mut rng));
    let t = NdArray::rand_uniform(&[3, 5], 0.0, 1.0, &mut rng);
    gradcheck!(&mut store, "x", |g| {
        let x = g.param("x");
        let y = g.softmax_last(x);
        let ti = g.input(t.clone());
        let m = g.input(NdArray::ones(&[3, 5]));
        g.mse_masked(y, ti, m)
    });
}

#[test]
fn grad_activations() {
    let mut rng = seeded(107);
    for (idx, act) in ["relu", "leaky", "sigmoid", "tanh", "silu", "exp"].iter().enumerate() {
        let mut store = ParamStore::new();
        // keep away from relu kink at 0 by offsetting
        let mut x = NdArray::randn(&[4, 4], &mut rng);
        x.map_inplace(|v| if v.abs() < 0.1 { v + 0.2 } else { v });
        store.insert("x", x);
        let t = NdArray::randn(&[4, 4], &mut rng);
        let _ = idx;
        let a = *act;
        gradcheck!(&mut store, "x", |g| {
            let x = g.param("x");
            let y = match a {
                "relu" => g.relu(x),
                "leaky" => g.leaky_relu(x, 0.1),
                "sigmoid" => g.sigmoid(x),
                "tanh" => g.tanh(x),
                "silu" => g.silu(x),
                _ => g.exp(x),
            };
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[4, 4]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_broadcast_add_mul() {
    let mut rng = seeded(108);
    let mut store = ParamStore::new();
    store.insert("b", NdArray::randn(&[4], &mut rng));
    store.insert("u", NdArray::randn(&[1, 3, 1], &mut rng));
    let x = NdArray::randn(&[2, 3, 4], &mut rng);
    let t = NdArray::randn(&[2, 3, 4], &mut rng);
    for p in ["b", "u"] {
        let (x, t) = (x.clone(), t.clone());
        gradcheck!(&mut store, p, |g| {
            let b = g.param("b");
            let u = g.param("u");
            let xi = g.input(x.clone());
            let s = g.add(xi, b);
            let y = g.mul(s, u);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 3, 4]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_permute_reshape_concat_slice() {
    let mut rng = seeded(109);
    let mut store = ParamStore::new();
    store.insert("x", NdArray::randn(&[2, 3, 4], &mut rng));
    let t = NdArray::randn(&[3, 4], &mut rng);
    gradcheck!(&mut store, "x", |g| {
        let x = g.param("x");
        let p = g.permute(x, &[1, 0, 2]); // [3,2,4]
        let r = g.reshape(p, &[3, 8]);
        let s1 = g.slice_last(r, 0, 2);
        let s2 = g.slice_last(r, 4, 2);
        let c = g.concat_last(&[s1, s2]); // [3,4]
        let ti = g.input(t.clone());
        let m = g.input(NdArray::ones(&[3, 4]));
        g.mse_masked(c, ti, m)
    });
}

#[test]
fn grad_layer_norm_all_inputs() {
    let mut rng = seeded(110);
    let mut store = ParamStore::new();
    store.insert("x", NdArray::randn(&[3, 6], &mut rng));
    store.insert("gain", NdArray::rand_uniform(&[6], 0.5, 1.5, &mut rng));
    store.insert("bias", NdArray::randn(&[6], &mut rng));
    let t = NdArray::randn(&[3, 6], &mut rng);
    for p in ["x", "gain", "bias"] {
        let t = t.clone();
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let gain = g.param("gain");
            let bias = g.param("bias");
            let y = g.layer_norm(x, gain, bias, 1e-5);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[3, 6]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_mae_masked() {
    let mut rng = seeded(111);
    let mut store = ParamStore::new();
    // keep |pred - target| away from 0 where the subgradient is undefined
    store.insert("x", NdArray::randn(&[4, 4], &mut rng).add_scalar(5.0));
    let t = NdArray::randn(&[4, 4], &mut rng);
    let mut mask = NdArray::ones(&[4, 4]);
    mask.data_mut()[3] = 0.0;
    mask.data_mut()[7] = 0.0;
    gradcheck!(&mut store, "x", |g| {
        let x = g.param("x");
        let ti = g.input(t.clone());
        let m = g.input(mask.clone());
        g.mae_masked(x, ti, m)
    });
}

#[test]
fn grad_mse_respects_mask() {
    let mut rng = seeded(112);
    let mut store = ParamStore::new();
    store.insert("x", NdArray::randn(&[2, 3], &mut rng));
    let t = NdArray::randn(&[2, 3], &mut rng);
    let mut mask = NdArray::ones(&[2, 3]);
    mask.data_mut()[0] = 0.0;
    let build = |store: &ParamStore| {
        let mut g = Graph::new(store);
        let x = g.param("x");
        let ti = g.input(t.clone());
        let m = g.input(mask.clone());
        let loss = g.mse_masked(x, ti, m);
        let grads = g.backward(loss);
        grads.get("x").cloned().unwrap()
    };
    let gx = build(&store);
    assert_eq!(gx.data()[0], 0.0, "masked-out position must have zero gradient");
    assert!(gx.data()[1] != 0.0);
}

#[test]
fn grad_gated_activation() {
    let mut rng = seeded(113);
    let mut store = ParamStore::new();
    store.insert("x", NdArray::randn(&[3, 8], &mut rng));
    let t = NdArray::randn(&[3, 4], &mut rng);
    gradcheck!(&mut store, "x", |g| {
        let x = g.param("x");
        let y = gated_activation(&mut g, x);
        let ti = g.input(t.clone());
        let m = g.input(NdArray::ones(&[3, 4]));
        g.mse_masked(y, ti, m)
    });
}

#[test]
fn grad_through_full_attention_block() {
    let mut rng = seeded(114);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "a", 4, 2, &mut rng);
    store.insert("x", NdArray::randn(&[2, 3, 4], &mut rng));
    let t = NdArray::randn(&[2, 3, 4], &mut rng);
    for p in ["x", "a.wq.w", "a.wv.w", "a.wo.w"] {
        let (t, attn) = (t.clone(), attn.clone());
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let y = attn.forward_self(&mut g, x);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 3, 4]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_through_downsampled_attention() {
    let mut rng = seeded(115);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new_downsampled(&mut store, "a", 4, 2, 6, 2, &mut rng);
    store.insert("x", NdArray::randn(&[2, 6, 4], &mut rng));
    let t = NdArray::randn(&[2, 6, 4], &mut rng);
    for p in ["x", "a.pk", "a.pv"] {
        let (t, attn) = (t.clone(), attn.clone());
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let y = attn.forward_self(&mut g, x);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 6, 4]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_through_mpnn() {
    let mut rng = seeded(116);
    let mut support = NdArray::rand_uniform(&[4, 4], 0.0, 1.0, &mut rng);
    for r in 0..4 {
        let row = &mut support.data_mut()[r * 4..(r + 1) * 4];
        let s: f32 = row.iter().sum();
        for v in row.iter_mut() {
            *v /= s;
        }
    }
    let mut store = ParamStore::new();
    let mpnn = Mpnn::new(&mut store, "mp", 3, vec![support], 4, 2, 2, &mut rng);
    store.insert("x", NdArray::randn(&[2, 4, 3], &mut rng));
    let t = NdArray::randn(&[2, 4, 3], &mut rng);
    for p in ["x", "mp.e1", "mp.e2", "mp.proj.w"] {
        let (t, mpnn) = (t.clone(), mpnn.clone());
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let y = mpnn.forward(&mut g, x);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 4, 3]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_through_conv1d() {
    let mut rng = seeded(117);
    let mut store = ParamStore::new();
    let conv = DilatedConv1d::new(&mut store, "c", 2, 2, 3, 2, &mut rng);
    store.insert("x", NdArray::randn(&[2, 5, 2], &mut rng));
    let t = NdArray::randn(&[2, 5, 3], &mut rng);
    for p in ["x", "c.w", "c.b"] {
        let (t, conv) = (t.clone(), conv.clone());
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let y = conv.forward(&mut g, x);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 5, 3]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_through_gru_step() {
    let mut rng = seeded(118);
    let mut store = ParamStore::new();
    let gru = GruCell::new(&mut store, "g", 2, 3, &mut rng);
    store.insert("x", NdArray::randn(&[2, 2], &mut rng));
    let t = NdArray::randn(&[2, 3], &mut rng);
    for p in ["x", "g.wz.w", "g.ur.w", "g.uh.w"] {
        let (t, gru) = (t.clone(), gru.clone());
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let h = g.input(NdArray::randn(&[2, 3], &mut StdRng::seed_from_u64(7)));
            let h2 = gru.step(&mut g, x, h);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 3]));
            g.mse_masked(h2, ti, m)
        });
    }
}

#[test]
fn grad_through_mlp_and_mean() {
    let mut rng = seeded(119);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "m", 3, 5, 2, &mut rng);
    store.insert("x", NdArray::randn(&[4, 3], &mut rng));
    for p in ["x", "m.l1.w", "m.l2.b"] {
        let mlp = mlp.clone();
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let y = mlp.forward(&mut g, x);
            let sq = g.square(y);
            g.mean_all(sq)
        });
    }
}

#[test]
fn grad_param_used_twice_accumulates() {
    // f(w) = sum(w*w) + sum(w) -> df/dw = 2w + 1
    let mut store = ParamStore::new();
    store.insert("w", NdArray::from_vec(&[3], vec![1.0, -2.0, 0.5]));
    let mut g = Graph::new(&store);
    let w1 = g.param("w");
    let w2 = g.param("w");
    let sq = g.mul(w1, w2);
    let s1 = g.sum_all(sq);
    let s2 = g.sum_all(w1);
    let loss = g.add(s1, s2);
    let grads = g.backward(loss);
    let gw = grads.get("w").unwrap();
    for (i, &wv) in [1.0f32, -2.0, 0.5].iter().enumerate() {
        assert!((gw.data()[i] - (2.0 * wv + 1.0)).abs() < 1e-5);
    }
}

#[test]
fn grad_through_linear_chain_matches_closed_form() {
    // loss = mean((x@w)^2); dl/dw = 2/N * x^T (x@w)
    let mut rng = seeded(120);
    let mut store = ParamStore::new();
    let lin = Linear::new_no_bias(&mut store, "l", 3, 2, &mut rng);
    let x = NdArray::randn(&[5, 3], &mut rng);
    let mut g = Graph::new(&store);
    let xi = g.input(x.clone());
    let y = lin.forward(&mut g, xi);
    let sq = g.square(y);
    let loss = g.mean_all(sq);
    let grads = g.backward(loss);
    let gw = grads.get("l.w").unwrap().clone();
    let w = store.get("l.w").unwrap();
    let xw = x.matmul(w);
    let expected = x.matmul_transa(&xw).scale(2.0 / 10.0);
    for (a, b) in gw.data().iter().zip(expected.data()) {
        assert!((a - b).abs() < 1e-4, "closed-form mismatch {a} vs {b}");
    }
}

#[test]
fn grad_through_attention_with_external_qk() {
    // PriSTI's prior-weighted attention: Q/K come from the interpolated
    // conditional prior while V comes from the noisy sample. Gradients must
    // flow into both sources and the projection weights.
    let mut rng = seeded(122);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "a", 4, 2, &mut rng);
    store.insert("qk", NdArray::randn(&[2, 3, 4], &mut rng));
    store.insert("v", NdArray::randn(&[2, 3, 4], &mut rng));
    let t = NdArray::randn(&[2, 3, 4], &mut rng);
    for p in ["qk", "v", "a.wq.w", "a.wk.w", "a.wv.w", "a.wo.w"] {
        let (t, attn) = (t.clone(), attn.clone());
        gradcheck!(&mut store, p, |g| {
            let qk = g.param("qk");
            let v = g.param("v");
            let y = attn.forward(&mut g, qk, v);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 3, 4]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_layer_norm_batched_3d() {
    // Layer norm over the last axis of a rank-3 activation, as used inside
    // the noise-estimation blocks; gain/bias broadcast across batch and time.
    let mut rng = seeded(123);
    let mut store = ParamStore::new();
    store.insert("x", NdArray::randn(&[2, 3, 6], &mut rng));
    store.insert("gain", NdArray::rand_uniform(&[6], 0.5, 1.5, &mut rng));
    store.insert("bias", NdArray::randn(&[6], &mut rng));
    let t = NdArray::randn(&[2, 3, 6], &mut rng);
    for p in ["x", "gain", "bias"] {
        let t = t.clone();
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let gain = g.param("gain");
            let bias = g.param("bias");
            let y = g.layer_norm(x, gain, bias, 1e-5);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 3, 6]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_gated_activation_after_linear() {
    // tanh·sigmoid gate composed with an upstream projection, batched: the
    // gradient must propagate through both gate halves into the weights.
    let mut rng = seeded(124);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, "l", 3, 8, &mut rng);
    store.insert("x", NdArray::randn(&[2, 4, 3], &mut rng));
    let t = NdArray::randn(&[2, 4, 4], &mut rng);
    for p in ["x", "l.w", "l.b"] {
        let (t, lin) = (t.clone(), lin.clone());
        gradcheck!(&mut store, p, |g| {
            let x = g.param("x");
            let h = lin.forward(&mut g, x);
            let y = gated_activation(&mut g, h);
            let ti = g.input(t.clone());
            let m = g.input(NdArray::ones(&[2, 4, 4]));
            g.mse_masked(y, ti, m)
        });
    }
}

#[test]
fn grad_softplus() {
    let mut rng = seeded(121);
    let mut store = ParamStore::new();
    store.insert("x", NdArray::randn(&[4, 4], &mut rng).scale(3.0));
    let t = NdArray::randn(&[4, 4], &mut rng);
    gradcheck!(&mut store, "x", |g| {
        let x = g.param("x");
        let y = g.softplus(x);
        let ti = g.input(t.clone());
        let m = g.input(NdArray::ones(&[4, 4]));
        g.mse_masked(y, ti, m)
    });
}
