//! Fused tape ops vs their unfused chains: bitwise equality, forward and
//! backward.
//!
//! The graph layer exposes four fused ops (`gated_unit`,
//! `scaled_softmax_last`, `add_scale`, `matmul_bias`) that each collapse a
//! chain of primitive nodes into one tape entry. Fusion is only sound here
//! because it is *bitwise invisible*: the fused forward performs the exact
//! same f32 operation sequence per element as the chain it replaces, and the
//! fused backward rule reproduces the chain's accumulated gradients to the
//! bit. This suite pins that contract by evaluating each fused op and its
//! unfused spelling in two graphs over identical parameters, driving a
//! non-uniform upstream gradient through both, and comparing the outputs and
//! every parameter gradient with `to_bits`.

use st_check::prelude::*;
use st_rand::SeedableRng;
use st_rand::StdRng;
use st_tensor::graph::{Graph, Tx};
use st_tensor::ndarray::NdArray;
use st_tensor::param::ParamStore;

fn assert_bits_equal(got: &NdArray, want: &NdArray, what: &str) -> Result<(), String> {
    prop_assert_eq!(got.shape(), want.shape(), "{} shape mismatch", what);
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{}: element {} diverges: {} vs {}",
            what,
            i,
            g,
            w
        );
    }
    Ok(())
}

/// Run `build` twice over the same store — once spelling the op fused, once
/// unfused — weight the output by a random mask (so the upstream gradient is
/// non-uniform), and assert outputs and all parameter gradients match
/// bitwise.
fn check_pair(
    store: &ParamStore,
    mask: &NdArray,
    build: &dyn Fn(&mut Graph, bool) -> Tx,
    what: &str,
) -> Result<(), String> {
    let mut outs = Vec::new();
    let mut grads = Vec::new();
    for fused in [true, false] {
        let mut g = Graph::new(store);
        let out = build(&mut g, fused);
        let mi = g.input(mask.clone());
        let weighted = g.mul(out, mi);
        let loss = g.sum_all(weighted);
        outs.push(g.value(out).clone());
        grads.push(g.backward(loss));
    }
    assert_bits_equal(&outs[0], &outs[1], &format!("{what} forward"))?;
    let (gf, gu) = (&grads[0], &grads[1]);
    prop_assert_eq!(gf.len(), gu.len(), "{} gradient count mismatch", what);
    for (name, fused_grad) in gf.iter() {
        let unfused_grad = gu
            .get(name)
            .ok_or_else(|| format!("{what}: unfused graph missing grad for `{name}`"))?;
        assert_bits_equal(fused_grad, unfused_grad, &format!("{what} grad `{name}`"))?;
    }
    Ok(())
}

properties! {
    /// `gated_unit(x)` == `tanh(x[.., :d]) * sigmoid(x[.., d:])`.
    #[test]
    fn gated_unit_matches_chain(rows in 1usize..12, d in 1usize..20, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        store.insert("x", NdArray::randn(&[rows, 2 * d], &mut rng));
        let mask = NdArray::randn(&[rows, d], &mut rng);
        check_pair(&store, &mask, &|g, fused| {
            let x = g.param("x");
            if fused {
                g.gated_unit(x)
            } else {
                let a = g.slice_last(x, 0, d);
                let b = g.slice_last(x, d, d);
                let t = g.tanh(a);
                let s = g.sigmoid(b);
                g.mul(t, s)
            }
        }, "gated_unit")?;
    }

    /// `scaled_softmax_last(x, c)` == `softmax_last(x * c)`.
    #[test]
    fn scaled_softmax_matches_chain(b in 1usize..6, rows in 1usize..8, d in 1usize..20, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = 1.0 / (d as f32).sqrt();
        let mut store = ParamStore::new();
        store.insert("x", NdArray::randn(&[b, rows, d], &mut rng));
        let mask = NdArray::randn(&[b, rows, d], &mut rng);
        check_pair(&store, &mask, &|g, fused| {
            let x = g.param("x");
            if fused {
                g.scaled_softmax_last(x, c)
            } else {
                let s = g.scale(x, c);
                g.softmax_last(s)
            }
        }, "scaled_softmax")?;
    }

    /// `add_scale(a, b, c)` == `(a + b) * c`.
    #[test]
    fn add_scale_matches_chain(rows in 1usize..12, d in 1usize..20, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = 0.5f32.sqrt();
        let mut store = ParamStore::new();
        store.insert("a", NdArray::randn(&[rows, d], &mut rng));
        store.insert("b", NdArray::randn(&[rows, d], &mut rng));
        let mask = NdArray::randn(&[rows, d], &mut rng);
        check_pair(&store, &mask, &|g, fused| {
            let a = g.param("a");
            let b = g.param("b");
            if fused {
                g.add_scale(a, b, c)
            } else {
                let s = g.add(a, b);
                g.scale(s, c)
            }
        }, "add_scale")?;
    }

    /// `matmul_bias(a, w, bias)` == `a @ w + bias` (broadcast add), with
    /// shapes sweeping past the `worthwhile` gate edges of the banded
    /// dispatch.
    #[test]
    fn matmul_bias_matches_chain(m in 1usize..34, k in 1usize..20, n in 1usize..24, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        store.insert("a", NdArray::randn(&[m, k], &mut rng));
        store.insert("w", NdArray::randn(&[k, n], &mut rng));
        store.insert("bias", NdArray::randn(&[n], &mut rng));
        let mask = NdArray::randn(&[m, n], &mut rng);
        check_pair(&store, &mask, &|g, fused| {
            let a = g.param("a");
            let w = g.param("w");
            let bias = g.param("bias");
            if fused {
                g.matmul_bias(a, w, bias)
            } else {
                let p = g.matmul(a, w);
                g.add(p, bias)
            }
        }, "matmul_bias")?;
    }
}
