//! Bit-exactness contracts for the tiled matmul kernels and the softmax
//! exponential.
//!
//! The blocked kernels in `ndarray.rs` promise more than approximate
//! equality: every output element is a single-f32-accumulator ascending-`p`
//! sum added to `out` once, which is exactly what the naive triple loop
//! computes. These properties pin that promise with `to_bits` comparisons
//! across shapes that exercise every tile path (full MR×NR tiles, the
//! fixed-width edge strips for 4/8/12/16, runtime-width strips, and the
//! small-`k` transpose fast path of `matmul_transb_kernel`).

use st_check::prelude::*;
use st_rand::SeedableRng;
use st_rand::StdRng;
use st_tensor::ndarray::{
    exp_nonpos, matmul_kernel, matmul_transa_kernel, matmul_transb_kernel, NdArray,
};

/// `out += a @ b` — the reference: one accumulator, ascending `p`.
fn naive_matmul(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] += acc;
        }
    }
}

/// `out += a @ b^T`, `b [n,k]`.
fn naive_transb(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[j * k + p];
            }
            out[i * n + j] += acc;
        }
    }
}

/// `out += a^T @ b`, `a [k,m]`.
fn naive_transa(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[p * n + j];
            }
            out[i * n + j] += acc;
        }
    }
}

fn rand_buf(len: usize, rng: &mut StdRng) -> Vec<f32> {
    NdArray::randn(&[len.max(1)], rng).into_vec()[..len].to_vec()
}

/// Assert two buffers agree to the bit, reporting the first divergence.
fn assert_bits_equal(tiled: &[f32], naive: &[f32]) -> Result<(), String> {
    for (i, (t, r)) in tiled.iter().zip(naive).enumerate() {
        prop_assert_eq!(
            t.to_bits(),
            r.to_bits(),
            "element {} diverges: tiled {} vs naive {}",
            i,
            t,
            r
        );
    }
    Ok(())
}

properties! {
    /// Tiled `matmul_kernel` is bit-identical to the naive reference,
    /// including its `+=` semantics on a pre-filled output.
    #[test]
    fn matmul_kernel_bit_equal(m in 1usize..34, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_buf(m * k, &mut rng);
        let b = rand_buf(k * n, &mut rng);
        let base = rand_buf(m * n, &mut rng);
        let mut tiled = base.clone();
        let mut naive = base;
        matmul_kernel(&mut tiled, &a, &b, m, k, n);
        naive_matmul(&mut naive, &a, &b, m, k, n);
        assert_bits_equal(&tiled, &naive)?;
    }

    /// Tiled `matmul_transb_kernel` (both the small-`k` transpose fast path
    /// and the dot-product tiling) matches the naive reference bit-for-bit.
    #[test]
    fn matmul_transb_kernel_bit_equal(m in 1usize..34, k in 1usize..40, n in 1usize..34, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_buf(m * k, &mut rng);
        let b = rand_buf(n * k, &mut rng);
        let base = rand_buf(m * n, &mut rng);
        let mut tiled = base.clone();
        let mut naive = base;
        matmul_transb_kernel(&mut tiled, &a, &b, m, k, n);
        naive_transb(&mut naive, &a, &b, m, k, n);
        assert_bits_equal(&tiled, &naive)?;
    }

    /// Tiled `matmul_transa_kernel` matches the naive reference bit-for-bit.
    #[test]
    fn matmul_transa_kernel_bit_equal(m in 1usize..34, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_buf(k * m, &mut rng);
        let b = rand_buf(k * n, &mut rng);
        let base = rand_buf(m * n, &mut rng);
        let mut tiled = base.clone();
        let mut naive = base;
        matmul_transa_kernel(&mut tiled, &a, &b, m, k, n);
        naive_transa(&mut naive, &a, &b, m, k, n);
        assert_bits_equal(&tiled, &naive)?;
    }

    /// The `NdArray`-level dispatch (band splitting, batch parallelism) never
    /// changes values relative to a direct single-kernel call, at any thread
    /// count the pool is set to.
    #[test]
    fn matmul_dispatch_thread_invariant(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Big enough that `worthwhile` trips and the band split engages.
        let a = NdArray::randn(&[96, 40], &mut rng);
        let b = NdArray::randn(&[40, 24], &mut rng);
        let mut reference = vec![0.0f32; 96 * 24];
        matmul_kernel(&mut reference, a.data(), b.data(), 96, 40, 24);
        for threads in [1usize, 2, 4] {
            st_par::set_threads(threads);
            let got = a.matmul(&b);
            st_par::set_threads(0);
            assert_bits_equal(got.data(), &reference)?;
        }
    }
}

/// Distance in units-in-the-last-place between two positive floats.
fn ulp_diff(a: f32, b: f32) -> u64 {
    assert!(a > 0.0 && b > 0.0);
    (i64::from(a.to_bits()) - i64::from(b.to_bits())).unsigned_abs()
}

#[test]
fn exp_nonpos_matches_libm_within_2_ulp() {
    // Dense sweep of the whole non-clamped domain (0 down to the underflow
    // clamp at ~-87.34) plus the exact endpoints.
    let mut worst = 0u64;
    for i in 0..=87_000 {
        let x = -(i as f32) * 1e-3;
        let got = exp_nonpos(x);
        let want = x.exp();
        assert!(got > 0.0 && got.is_finite(), "exp_nonpos({x}) = {got}");
        worst = worst.max(ulp_diff(got, want));
    }
    assert!(worst <= 2, "worst error {worst} ulp exceeds 2");
    assert_eq!(exp_nonpos(0.0).to_bits(), 1.0f32.to_bits());
}

#[test]
fn exp_nonpos_saturates_below_underflow_clamp() {
    for x in [-88.0f32, -1.0e3, -1.0e30, f32::MIN] {
        let got = exp_nonpos(x);
        // Clamped to exp(-87.336544) ~= the smallest positive normal; any
        // softmax row normalises this to zero weight.
        assert!(got > 0.0 && got < 1.3e-38, "exp_nonpos({x}) = {got}");
    }
}
