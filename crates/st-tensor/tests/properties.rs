//! Property-based tests (st-check) for the tensor substrate's algebraic
//! invariants, complementing the finite-difference checks in `gradcheck.rs`.

use st_check::prelude::*;
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_tensor::ndarray::{broadcast_shape, NdArray};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

properties! {
    /// Softmax rows are probability vectors for any input scale.
    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..6, cols in 1usize..8, scale in 0.1f32..50.0) {
        let mut rng = StdRng::seed_from_u64((rows * 31 + cols) as u64);
        let a = NdArray::randn(&[rows, cols], &mut rng).scale(scale);
        let s = a.softmax_last();
        for r in 0..rows {
            let row = &s.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    /// Any permutation followed by its inverse is the identity.
    #[test]
    fn permute_inverse_identity(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = NdArray::randn(&[2, 3, 4, 5], &mut rng);
        // generate a permutation from the seed
        let mut perm = vec![0usize, 1, 2, 3];
        for i in (1..4).rev() {
            let j = (seed as usize * 7 + i * 13) % (i + 1);
            perm.swap(i, j);
        }
        let mut inv = vec![0usize; 4];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        let round = a.permuted(&perm).permuted(&inv);
        prop_assert_eq!(round, a);
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributive(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = NdArray::randn(&[3, 4], &mut rng);
        let b = NdArray::randn(&[3, 4], &mut rng);
        let c = NdArray::randn(&[4, 2], &mut rng);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// reduce_to_shape inverts broadcasting: broadcasting b up to a's shape
    /// and reducing back is `b * (elements it was broadcast over)`.
    #[test]
    fn reduce_inverts_broadcast(lead in 1usize..5, d in 1usize..5) {
        let mut rng = StdRng::seed_from_u64((lead * 17 + d) as u64);
        let b = NdArray::randn(&[d], &mut rng);
        let zeros = NdArray::zeros(&[lead, d]);
        let broadcast = zeros.add(&b);
        let reduced = broadcast.reduce_to_shape(&[d]);
        for (r, orig) in reduced.data().iter().zip(b.data()) {
            prop_assert!((r - orig * lead as f32).abs() < 1e-4);
        }
    }

    /// Broadcast shapes are commutative and idempotent on equal shapes.
    #[test]
    fn broadcast_shape_laws(s in small_shape()) {
        prop_assert_eq!(broadcast_shape(&s, &s), Some(s.clone()));
        let with_one: Vec<usize> = s.iter().map(|_| 1).collect();
        prop_assert_eq!(broadcast_shape(&s, &with_one), Some(s.clone()));
        prop_assert_eq!(broadcast_shape(&with_one, &s), Some(s));
    }

    /// concat_last then slice_last recovers both parts exactly.
    #[test]
    fn concat_slice_round_trip(shape in small_shape(), extra in 1usize..4, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = NdArray::randn(&shape, &mut rng);
        let mut s2 = shape.clone();
        *s2.last_mut().unwrap() = extra;
        let b = NdArray::randn(&s2, &mut rng);
        let cat = NdArray::concat_last(&[&a, &b]);
        let wa = *a.shape().last().unwrap();
        let wb = *b.shape().last().unwrap();
        prop_assert_eq!(cat.slice_last(0, wa), a);
        prop_assert_eq!(cat.slice_last(wa, wb), b);
    }

    /// Batched matmul agrees with per-slice 2-D matmul.
    #[test]
    fn batch_matmul_matches_slices(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = NdArray::randn(&[3, 2, 4], &mut rng);
        let b = NdArray::randn(&[3, 4, 5], &mut rng);
        let c = a.batch_matmul(&b);
        for i in 0..3 {
            let ai = NdArray::from_vec(&[2, 4], a.data()[i * 8..(i + 1) * 8].to_vec());
            let bi = NdArray::from_vec(&[4, 5], b.data()[i * 20..(i + 1) * 20].to_vec());
            let ci = ai.matmul(&bi);
            for (x, y) in ci.data().iter().zip(&c.data()[i * 10..(i + 1) * 10]) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }

    /// Scaling commutes with summation (linearity of the accumulator).
    #[test]
    fn sum_linear_in_scale(shape in small_shape(), c in -5.0f32..5.0) {
        let n: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let a = NdArray::randn(&shape, &mut rng);
        let lhs = a.scale(c).sum();
        let rhs = a.sum() * c as f64;
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
    }
}
