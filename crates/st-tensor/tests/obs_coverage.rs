//! Every timed graph op must surface in the `st-obs` per-op report.
//!
//! In particular `shared_left_matmul` (the MPNN adjacency product, the one
//! batch-parallel op with its own `Op::kind()`) must appear in both forward
//! and backward phases — a regression here silently drops the hottest
//! message-passing op from the telemetry the bench harness reads.
//!
//! One `#[test]` per binary: the recorder is process-global.

use st_rand::SeedableRng;
use st_rand::StdRng;
use st_tensor::graph::Graph;
use st_tensor::ndarray::NdArray;
use st_tensor::param::ParamStore;
use std::io::Write;
use std::sync::{Arc, Mutex};

#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn op_report_covers_shared_left_matmul_and_kernels() {
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let guard = st_obs::install(vec![Box::new(st_obs::JsonlSink::from_writer(Box::new(
        buf.clone(),
    )))]);

    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    store.insert("w", NdArray::randn(&[6, 5], &mut rng));
    let x = NdArray::randn(&[2, 4, 6], &mut rng);
    let s = NdArray::randn(&[3, 4], &mut rng);
    {
        let mut g = Graph::new(&store);
        let w = g.param("w");
        let xt = g.input(x);
        let st = g.input(s);
        let conv = g.shared_left_matmul(st, xt); // [2,3,6]
        let flat = g.reshape(conv, &[6, 6]);
        let proj = g.matmul(flat, w);
        let sm = g.softmax_last(proj);
        let loss = g.mean_all(sm);
        let grads = g.backward(loss);
        assert!(grads.get("w").is_some());
    }

    st_obs::flush();
    drop(guard);
    let bytes = buf.0.lock().unwrap().clone();
    let report = String::from_utf8(bytes).expect("jsonl output is utf-8");

    let op_lines: Vec<&str> =
        report.lines().filter(|l| l.contains("\"ev\":\"op\"")).collect();
    for kind in ["shared_left_matmul", "matmul", "softmax_last"] {
        let needle = format!("\"kind\":\"{kind}\"");
        for phase in ["fwd", "bwd"] {
            let phase_needle = format!("\"phase\":\"{phase}\"");
            assert!(
                op_lines.iter().any(|l| l.contains(&needle) && l.contains(&phase_needle)),
                "no {phase} op entry for `{kind}` in report:\n{report}"
            );
        }
    }
}
