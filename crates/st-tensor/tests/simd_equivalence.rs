//! Cross-tier bit-equality for every SIMD kernel.
//!
//! `kernel_equivalence.rs` pins the *active-tier* kernels against naive
//! references; this suite pins the tiers against **each other** inside one
//! process: for every dispatchable kernel, the Scalar, Sse2 and Avx2 paths
//! (whichever the host supports) must produce bit-identical buffers over
//! shape sweeps that hit full `MR x NR` tiles, every fixed-width edge strip,
//! runtime-width tails, and sub-vector remainders. The same sweeps assert
//! that the overwriting `*_set` matmul variants match `+=` on a `+0.0`
//! buffer — the contract that lets the forward path skip output zeroing —
//! and that `NdArray`-level dispatch is invariant under `st_par` thread
//! counts 1 and 4.

use st_check::prelude::*;
use st_rand::SeedableRng;
use st_rand::StdRng;
use st_tensor::ndarray::NdArray;
use st_tensor::simd::{self, BinOp, Tier};

/// Every tier the host can actually run (Avx2 is detected, never assumed).
fn tiers() -> Vec<Tier> {
    let mut t = vec![Tier::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        t.push(Tier::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            t.push(Tier::Avx2);
        }
    }
    t
}

fn rand_buf(len: usize, rng: &mut StdRng) -> Vec<f32> {
    NdArray::randn(&[len.max(1)], rng).into_vec()[..len].to_vec()
}

/// Assert two buffers agree to the bit, reporting the first divergence.
fn assert_bits_equal(got: &[f32], want: &[f32], what: &str) -> Result<(), String> {
    prop_assert_eq!(got.len(), want.len(), "{} length mismatch", what);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{}: element {} diverges: {} vs {}",
            what,
            i,
            g,
            w
        );
    }
    Ok(())
}

properties! {
    /// All tiers of the three matmul kernels agree bitwise, `+=` and `set`
    /// flavours both, across tile-grid edge cases (m spans partial MR rows,
    /// n spans the 4/8/12/16 fixed strips plus odd tails).
    #[test]
    fn matmul_kernels_tier_bit_equal(m in 1usize..26, k in 1usize..20, n in 1usize..36, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_buf(m * k, &mut rng);
        let b = rand_buf(k * n, &mut rng);
        let bt = rand_buf(n * k, &mut rng);
        let at = rand_buf(k * m, &mut rng);
        let base = rand_buf(m * n, &mut rng);
        let ts = tiers();
        let (t0, rest) = ts.split_first().unwrap();

        // Accumulating flavour starts from a shared random prefill.
        let mut want = base.clone();
        simd::matmul_kernel_at(*t0, &mut want, &a, &b, m, k, n);
        for &t in rest {
            let mut got = base.clone();
            simd::matmul_kernel_at(t, &mut got, &a, &b, m, k, n);
            assert_bits_equal(&got, &want, &format!("matmul {t:?}"))?;
        }
        // Overwriting flavour must equal `+=` on a +0.0 output, every tier.
        let mut zeroed = vec![0.0f32; m * n];
        simd::matmul_kernel_at(*t0, &mut zeroed, &a, &b, m, k, n);
        for &t in &ts {
            let mut got = rand_buf(m * n, &mut rng); // dirty prefill: must be ignored
            simd::matmul_kernel_set_at(t, &mut got, &a, &b, m, k, n);
            assert_bits_equal(&got, &zeroed, &format!("matmul_set {t:?}"))?;
        }

        let mut want = base.clone();
        simd::matmul_transb_kernel_at(*t0, &mut want, &a, &bt, m, k, n);
        for &t in rest {
            let mut got = base.clone();
            simd::matmul_transb_kernel_at(t, &mut got, &a, &bt, m, k, n);
            assert_bits_equal(&got, &want, &format!("matmul_transb {t:?}"))?;
        }

        let mut want = base.clone();
        simd::matmul_transa_kernel_at(*t0, &mut want, &at, &b, m, k, n);
        for &t in rest {
            let mut got = base.clone();
            simd::matmul_transa_kernel_at(t, &mut got, &at, &b, m, k, n);
            assert_bits_equal(&got, &want, &format!("matmul_transa {t:?}"))?;
        }
    }

    /// Element-wise kernels: binary, scalar-broadcast binary (both operand
    /// orders), axpy, in-place scale and add — all tiers bit-identical over
    /// lengths spanning sub-vector, one-vector, and ragged multi-vector
    /// buffers.
    #[test]
    fn elementwise_tier_bit_equal(len in 1usize..70, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_buf(len, &mut rng);
        let b = rand_buf(len, &mut rng);
        let c = rand_buf(1, &mut rng)[0];
        let ts = tiers();
        let (t0, rest) = ts.split_first().unwrap();
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul] {
            let mut want = vec![0.0f32; len];
            simd::binary_at(*t0, op, &mut want, &a, &b);
            for &t in rest {
                let mut got = vec![0.0f32; len];
                simd::binary_at(t, op, &mut got, &a, &b);
                assert_bits_equal(&got, &want, &format!("binary {op:?} {t:?}"))?;
            }
            for scalar_left in [false, true] {
                let mut want = vec![0.0f32; len];
                simd::binary_scalar_at(*t0, op, &mut want, &a, c, scalar_left);
                for &t in rest {
                    let mut got = vec![0.0f32; len];
                    simd::binary_scalar_at(t, op, &mut got, &a, c, scalar_left);
                    assert_bits_equal(&got, &want, &format!("binary_scalar {op:?} {t:?}"))?;
                }
            }
        }
        let mut want = b.clone();
        simd::axpy_at(*t0, &mut want, c, &a);
        for &t in rest {
            let mut got = b.clone();
            simd::axpy_at(t, &mut got, c, &a);
            assert_bits_equal(&got, &want, &format!("axpy {t:?}"))?;
        }
        let mut want = a.clone();
        simd::scale_inplace_at(*t0, &mut want, c);
        for &t in rest {
            let mut got = a.clone();
            simd::scale_inplace_at(t, &mut got, c);
            assert_bits_equal(&got, &want, &format!("scale_inplace {t:?}"))?;
        }
        let mut want = a.clone();
        simd::add_inplace_at(*t0, &mut want, &b);
        for &t in rest {
            let mut got = a.clone();
            simd::add_inplace_at(t, &mut got, &b);
            assert_bits_equal(&got, &want, &format!("add_inplace {t:?}"))?;
        }
    }

    /// The softmax row pipeline — max / exp / sum reductions and the fused
    /// `softmax_row_at` — agrees bitwise across tiers, including rows with
    /// 4-lane and 8-lane remainders.
    #[test]
    fn softmax_rows_tier_bit_equal(len in 1usize..70, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let row = rand_buf(len, &mut rng);
        let ts = tiers();
        let (t0, rest) = ts.split_first().unwrap();
        let mx0 = simd::row_max_at(*t0, &row);
        let sum0 = simd::row_sum_at(*t0, &row);
        for &t in rest {
            prop_assert_eq!(simd::row_max_at(t, &row).to_bits(), mx0.to_bits(), "row_max {:?}", t);
            prop_assert_eq!(simd::row_sum_at(t, &row).to_bits(), sum0.to_bits(), "row_sum {:?}", t);
        }
        let mut want = row.clone();
        simd::exp_sub_inplace_at(*t0, &mut want, mx0);
        for &t in rest {
            let mut got = row.clone();
            simd::exp_sub_inplace_at(t, &mut got, mx0);
            assert_bits_equal(&got, &want, &format!("exp_sub_inplace {t:?}"))?;
        }
        let mut want = row.clone();
        simd::softmax_row_at(*t0, &mut want);
        for &t in rest {
            let mut got = row.clone();
            simd::softmax_row_at(t, &mut got);
            assert_bits_equal(&got, &want, &format!("softmax_row {t:?}"))?;
        }
        // The fused row must also equal the unfused sequence at every tier.
        for &t in &ts {
            let mut unfused = row.clone();
            let mx = simd::row_max_at(t, &unfused);
            simd::exp_sub_inplace_at(t, &mut unfused, mx);
            let inv = 1.0 / simd::row_sum_at(t, &unfused);
            simd::scale_inplace_at(t, &mut unfused, inv);
            let mut fused = row.clone();
            simd::softmax_row_at(t, &mut fused);
            assert_bits_equal(&fused, &unfused, &format!("softmax_row vs unfused {t:?}"))?;
        }
    }

    /// `NdArray`-level dispatch (banded matmul_bias, batched attention
    /// products, softmax) is bitwise invariant under `st_par` thread count:
    /// the chunking is shape-derived, so 1 and 4 threads see identical bands.
    #[test]
    fn ndarray_dispatch_thread_invariant(seed in 0u64..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Big enough that the matmul-family `worthwhile` gates are exercised.
        let x = NdArray::randn(&[96, 40], &mut rng);
        let w = NdArray::randn(&[40, 24], &mut rng);
        let bias = NdArray::randn(&[24], &mut rng);
        let q = NdArray::randn(&[6, 9, 5], &mut rng);
        let kk = NdArray::randn(&[6, 9, 5], &mut rng);
        st_par::set_threads(1);
        let mb1 = x.matmul_bias(&w, &bias);
        let sc1 = q.batch_matmul_transb(&kk).scaled_softmax_last(0.25);
        st_par::set_threads(4);
        let mb4 = x.matmul_bias(&w, &bias);
        let sc4 = q.batch_matmul_transb(&kk).scaled_softmax_last(0.25);
        st_par::set_threads(0);
        assert_bits_equal(mb1.data(), mb4.data(), "matmul_bias t1 vs t4")?;
        assert_bits_equal(sc1.data(), sc4.data(), "scaled_softmax t1 vs t4")?;
    }
}
