//! Gradient rules for every tape operation.
//!
//! [`backprop`] seeds the loss node with gradient 1 and walks the arena in
//! reverse topological order (which, for an append-only tape, is simply
//! reverse index order), accumulating into each input's gradient slot.
//! Each node's gradient rule is timed into the `bwd.<kind>` telemetry
//! aggregate, mirroring the `fwd.<kind>` timing taken in
//! [`crate::graph::Graph::push`].
//!
//! The walk also performs tape-buffer liveness reclamation: a node's
//! forward value is only ever read by the gradient rules of its consumers
//! (all at higher tape indices, already processed) and by its own rule, so
//! once the walk passes index `i` the value at `i` is dead. [`backprop`]
//! drops it there and then, returning the buffer to [`crate::pool`] where
//! the gradient allocations of the remaining (lower-index) nodes
//! immediately reuse it — roughly halving peak tape memory on a training
//! step. This is why the tape is taken `&mut` and why forward values must
//! be read *before* calling [`crate::graph::Graph::backward`].

use crate::graph::{sigmoid_f, Gradients, Node, Op, Tx};
use crate::ndarray::{matmul_transb_kernel, NdArray};

/// Compute parameter gradients for the scalar node `loss`. Frees each
/// node's forward value as the reverse walk passes it (see module docs).
pub(crate) fn backprop(nodes: &mut [Node], loss: Tx) -> Gradients {
    let mut grads: Vec<Option<NdArray>> = vec![None; nodes.len()];
    grads[loss.0] = Some(NdArray::ones(nodes[loss.0].value.shape()));
    let mut out = Gradients::default();

    for i in (0..=loss.0).rev() {
        let Some(g) = grads[i].take() else {
            // Off the loss path, but the value is equally dead: no rule
            // below index `i` can read it.
            nodes[i].value = NdArray::zeros(&[0]);
            continue;
        };
        let t0 = st_obs::op_start();
        let g_elems = g.numel() as u64;
        match &nodes[i].op {
            Op::Input => {}
            Op::Param(name) => out.insert_or_add(name, &g),
            Op::Add(a, b) => {
                acc(&mut grads, nodes, *a, &g.reduce_to_shape(nodes[a.0].value.shape()));
                acc(&mut grads, nodes, *b, &g.reduce_to_shape(nodes[b.0].value.shape()));
            }
            Op::Sub(a, b) => {
                acc(&mut grads, nodes, *a, &g.reduce_to_shape(nodes[a.0].value.shape()));
                let gb = g.scale(-1.0).reduce_to_shape(nodes[b.0].value.shape());
                acc(&mut grads, nodes, *b, &gb);
            }
            Op::Mul(a, b) => {
                let ga = g.mul(&nodes[b.0].value).reduce_to_shape(nodes[a.0].value.shape());
                let gb = g.mul(&nodes[a.0].value).reduce_to_shape(nodes[b.0].value.shape());
                acc(&mut grads, nodes, *a, &ga);
                acc(&mut grads, nodes, *b, &gb);
            }
            Op::Scale(a, c) => acc(&mut grads, nodes, *a, &g.scale(*c)),
            Op::AddScalar(a) => acc(&mut grads, nodes, *a, &g),
            Op::Exp(a) => {
                // d exp(x) = exp(x) dx; the forward value *is* exp(x).
                acc(&mut grads, nodes, *a, &g.mul(&nodes[i].value));
            }
            Op::Matmul(a, b) => {
                let ga = g.matmul_transb(&nodes[b.0].value);
                let gb = nodes[a.0].value.matmul_transa(&g);
                acc(&mut grads, nodes, *a, &ga);
                acc(&mut grads, nodes, *b, &gb);
            }
            Op::MatmulBias { a, w, bias } => {
                // Same rules as the unfused Matmul + broadcast-Add pair:
                // the add passes the gradient through untouched, so a/w get
                // the Op::Matmul rules and the bias gets the Add rule's
                // row-sum reduction.
                let ga = g.matmul_transb(&nodes[w.0].value);
                let gw = nodes[a.0].value.matmul_transa(&g);
                let gbias = g.reduce_to_shape(nodes[bias.0].value.shape());
                acc(&mut grads, nodes, *a, &ga);
                acc(&mut grads, nodes, *w, &gw);
                acc(&mut grads, nodes, *bias, &gbias);
            }
            Op::BatchMatmul(a, b) => {
                let ga = g.batch_matmul_transb(&nodes[b.0].value);
                let gb = nodes[a.0].value.batch_matmul_transa(&g);
                acc(&mut grads, nodes, *a, &ga);
                acc(&mut grads, nodes, *b, &gb);
            }
            Op::BatchMatmulTransB(a, b) => {
                // out = a @ b^T; ga = g @ b; gb = g^T @ a
                let ga = g.batch_matmul(&nodes[b.0].value);
                let gb = g.batch_matmul_transa(&nodes[a.0].value);
                acc(&mut grads, nodes, *a, &ga);
                acc(&mut grads, nodes, *b, &gb);
            }
            Op::SharedLeftMatmul { s, x } => {
                // out[b] = S @ x[b]; gx[b] = S^T @ g[b]; gS = sum_b g[b] @ x[b]^T
                let sv = &nodes[s.0].value;
                let xv = &nodes[x.0].value;
                let st = sv.transpose2d();
                let gx = g.matmul_shared_left(&st);
                let (bs, n, d) = (xv.shape()[0], sv.shape()[0], xv.shape()[2]);
                let np = sv.shape()[1];
                // Per-batch partials folded in batch order: each batch's
                // contribution is added to gS exactly once either way, so
                // the parallel path is bit-identical to the serial one.
                let gd = g.data();
                let xd = xv.data();
                let mut gs = NdArray::zeros(&[n, np]);
                let gsd = gs.data_mut();
                if st_par::worthwhile("mpnn_bwd_gs", bs * n * d * np) && bs > 1 {
                    let partials = st_par::par_map("mpnn_bwd_gs", bs, |bi| {
                        let mut part = vec![0.0f32; n * np];
                        matmul_transb_kernel(
                            &mut part,
                            &gd[bi * n * d..(bi + 1) * n * d],
                            &xd[bi * np * d..(bi + 1) * np * d],
                            n,
                            d,
                            np,
                        );
                        part
                    });
                    for part in &partials {
                        for (o, &p) in gsd.iter_mut().zip(part) {
                            *o += p;
                        }
                    }
                } else {
                    for bi in 0..bs {
                        matmul_transb_kernel(
                            gsd,
                            &gd[bi * n * d..(bi + 1) * n * d],
                            &xd[bi * np * d..(bi + 1) * np * d],
                            n,
                            d,
                            np,
                        );
                    }
                }
                acc(&mut grads, nodes, *x, &gx);
                acc(&mut grads, nodes, *s, &gs);
            }
            Op::Permute(a, perm) => {
                let inv = invert_perm(perm);
                acc(&mut grads, nodes, *a, &g.permuted(&inv));
            }
            Op::Reshape(a) => {
                acc(&mut grads, nodes, *a, &g.reshaped(nodes[a.0].value.shape()));
            }
            Op::ConcatLast(parts) => {
                let mut start = 0usize;
                for p in parts {
                    let w = *nodes[p.0].value.shape().last().unwrap();
                    acc(&mut grads, nodes, *p, &g.slice_last(start, w));
                    start += w;
                }
            }
            Op::SliceLast { x, start, len } => {
                let xshape = nodes[x.0].value.shape();
                let last = *xshape.last().unwrap();
                let rows = nodes[x.0].value.numel() / last;
                let mut gx = NdArray::zeros(xshape);
                for r in 0..rows {
                    gx.data_mut()[r * last + start..r * last + start + len]
                        .copy_from_slice(&g.data()[r * len..(r + 1) * len]);
                }
                acc(&mut grads, nodes, *x, &gx);
            }
            Op::SoftmaxLast(a) => {
                // y = softmax(x); dx = y * (g - sum(g*y)) per row.
                let y = &nodes[i].value;
                let d = *y.shape().last().unwrap();
                let rows = y.numel() / d;
                let mut gx = NdArray::zeros(y.shape());
                for r in 0..rows {
                    let yrow = &y.data()[r * d..(r + 1) * d];
                    let grow = &g.data()[r * d..(r + 1) * d];
                    let dot: f32 = yrow.iter().zip(grow).map(|(&yv, &gv)| yv * gv).sum();
                    let orow = &mut gx.data_mut()[r * d..(r + 1) * d];
                    for ((o, &yv), &gv) in orow.iter_mut().zip(yrow).zip(grow) {
                        *o = yv * (gv - dot);
                    }
                }
                acc(&mut grads, nodes, *a, &gx);
            }
            Op::Relu(a) => {
                let gx = g.zip_map(&nodes[a.0].value, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                acc(&mut grads, nodes, *a, &gx);
            }
            Op::LeakyRelu(a, slope) => {
                let s = *slope;
                let gx = g.zip_map(&nodes[a.0].value, |gv, xv| if xv > 0.0 { gv } else { s * gv });
                acc(&mut grads, nodes, *a, &gx);
            }
            Op::Sigmoid(a) => {
                let gx = g.zip_map(&nodes[i].value, |gv, yv| gv * yv * (1.0 - yv));
                acc(&mut grads, nodes, *a, &gx);
            }
            Op::Tanh(a) => {
                let gx = g.zip_map(&nodes[i].value, |gv, yv| gv * (1.0 - yv * yv));
                acc(&mut grads, nodes, *a, &gx);
            }
            Op::Silu(a) => {
                let gx = g.zip_map(&nodes[a.0].value, |gv, xv| {
                    let s = sigmoid_f(xv);
                    gv * s * (1.0 + xv * (1.0 - s))
                });
                acc(&mut grads, nodes, *a, &gx);
            }
            Op::Softplus(a) => {
                let gx = g.zip_map(&nodes[a.0].value, |gv, xv| gv * sigmoid_f(xv));
                acc(&mut grads, nodes, *a, &gx);
            }
            Op::LayerNorm { x, gain, bias, eps } => {
                layer_norm_backward(nodes, &mut grads, &mut out, &g, *x, *gain, *bias, *eps);
            }
            Op::Dropout { x, mask } => {
                acc(&mut grads, nodes, *x, &g.mul(mask));
            }
            Op::SumAll(a) => {
                let gv = g.data()[0];
                acc(&mut grads, nodes, *a, &NdArray::full(nodes[a.0].value.shape(), gv));
            }
            Op::MeanAll(a) => {
                let n = nodes[a.0].value.numel().max(1);
                let gv = g.data()[0] / n as f32;
                acc(&mut grads, nodes, *a, &NdArray::full(nodes[a.0].value.shape(), gv));
            }
            Op::MseMasked { pred, target, mask } => {
                let p = &nodes[pred.0].value;
                let t = &nodes[target.0].value;
                let m = &nodes[mask.0].value;
                let denom = m.sum().max(1.0) as f32;
                let gv = g.data()[0];
                let mut gp = NdArray::zeros(p.shape());
                for (((o, &pv), &tv), &mv) in
                    gp.data_mut().iter_mut().zip(p.data()).zip(t.data()).zip(m.data())
                {
                    *o = gv * 2.0 * mv * (pv - tv) / denom;
                }
                acc(&mut grads, nodes, *pred, &gp);
            }
            Op::MaeMasked { pred, target, mask } => {
                let p = &nodes[pred.0].value;
                let t = &nodes[target.0].value;
                let m = &nodes[mask.0].value;
                let denom = m.sum().max(1.0) as f32;
                let gv = g.data()[0];
                let mut gp = NdArray::zeros(p.shape());
                for (((o, &pv), &tv), &mv) in
                    gp.data_mut().iter_mut().zip(p.data()).zip(t.data()).zip(m.data())
                {
                    *o = gv * mv * (pv - tv).signum() / denom;
                }
                acc(&mut grads, nodes, *pred, &gp);
            }
            Op::Conv1dCausal { x, w, b, dilation } => {
                conv1d_backward(nodes, &mut grads, &g, *x, *w, *b, *dilation);
            }
            Op::GatedUnit(x) => {
                // Unfused chain: slice, slice, tanh, sigmoid, mul. tanh(a)
                // and σ(b) are recomputed from the input (deterministic, and
                // cheaper than keeping both activations on the tape). Each
                // half's expression tree matches the unfused rules exactly —
                // mul backward feeding the tanh/sigmoid zip_maps — including
                // the trailing `+ 0.0` both halves pick up when the two
                // slice-backwards scatter into a zeroed buffer (which
                // normalises any -0.0 product to +0.0).
                let xv = &nodes[x.0].value;
                let last = *xv.shape().last().unwrap();
                let half = last / 2;
                let rows = xv.numel() / last;
                let mut gx = NdArray::zeros(xv.shape());
                let xd = xv.data();
                let gd = g.data();
                let gxd = gx.data_mut();
                for r in 0..rows {
                    let xrow = &xd[r * last..(r + 1) * last];
                    let grow = &gd[r * half..(r + 1) * half];
                    let orow = &mut gxd[r * last..(r + 1) * last];
                    for j in 0..half {
                        let ta = xrow[j].tanh();
                        let sb = sigmoid_f(xrow[half + j]);
                        let gv = grow[j];
                        orow[j] = (gv * sb) * (1.0 - ta * ta) + 0.0;
                        orow[half + j] = ((gv * ta) * sb) * (1.0 - sb) + 0.0;
                    }
                }
                acc(&mut grads, nodes, *x, &gx);
            }
            Op::ScaledSoftmax(a, c) => {
                // y = softmax(c·x); unfused: softmax backward
                // (`yv * (gv - dot)`, sequential row dot) feeding a scale
                // backward (`* c`) — fused into one pass with no
                // intermediate gradient buffer.
                let c = *c;
                let y = &nodes[i].value;
                let d = *y.shape().last().unwrap();
                let rows = y.numel() / d;
                let mut gx = NdArray::zeros(y.shape());
                for r in 0..rows {
                    let yrow = &y.data()[r * d..(r + 1) * d];
                    let grow = &g.data()[r * d..(r + 1) * d];
                    let dot: f32 = yrow.iter().zip(grow).map(|(&yv, &gv)| yv * gv).sum();
                    let orow = &mut gx.data_mut()[r * d..(r + 1) * d];
                    for ((o, &yv), &gv) in orow.iter_mut().zip(yrow).zip(grow) {
                        *o = (yv * (gv - dot)) * c;
                    }
                }
                acc(&mut grads, nodes, *a, &gx);
            }
            Op::AddScale(a, b, c) => {
                // Unfused: scale backward (`g * c`) feeding an add backward
                // whose reduce-to-shape is the identity (shapes asserted
                // equal at the forward), so both operands get the same
                // scaled gradient.
                let gs = g.scale(*c);
                acc(&mut grads, nodes, *a, &gs);
                acc(&mut grads, nodes, *b, &gs);
            }
        }
        st_obs::record_op(st_obs::Phase::Bwd, nodes[i].op.kind(), t0, g_elems);
        // Liveness: every consumer of node `i` sits at a higher index and
        // has already run; drop the forward value so the pool can serve it
        // back as a gradient buffer for the nodes still to come.
        nodes[i].value = NdArray::zeros(&[0]);
    }
    out
}

fn acc(grads: &mut [Option<NdArray>], nodes: &[Node], t: Tx, g: &NdArray) {
    debug_assert_eq!(
        nodes[t.0].value.shape(),
        g.shape(),
        "gradient shape mismatch for node {} ({:?})",
        t.0,
        nodes[t.0].op
    );
    match &mut grads[t.0] {
        Some(existing) => existing.axpy(1.0, g),
        slot @ None => *slot = Some(g.clone()),
    }
}

fn invert_perm(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[allow(clippy::too_many_arguments)]
fn layer_norm_backward(
    nodes: &[Node],
    grads: &mut [Option<NdArray>],
    out: &mut Gradients,
    g: &NdArray,
    x: Tx,
    gain: Tx,
    bias: Tx,
    eps: f32,
) {
    let xv = &nodes[x.0].value;
    let gv = &nodes[gain.0].value;
    let d = *xv.shape().last().unwrap();
    let rows = xv.numel() / d;
    let mut gx = NdArray::zeros(xv.shape());
    let mut ggain = NdArray::zeros(&[d]);
    let mut gbias = NdArray::zeros(&[d]);
    for r in 0..rows {
        let xrow = &xv.data()[r * d..(r + 1) * d];
        let grow = &g.data()[r * d..(r + 1) * d];
        let mean = xrow.iter().sum::<f32>() / d as f32;
        let var = xrow.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + eps).sqrt();
        // xhat and dxhat
        let mut sum_dxhat = 0.0f32;
        let mut sum_dxhat_xhat = 0.0f32;
        let mut xhat = vec![0.0f32; d];
        let mut dxhat = vec![0.0f32; d];
        for j in 0..d {
            xhat[j] = (xrow[j] - mean) * inv;
            dxhat[j] = grow[j] * gv.data()[j];
            sum_dxhat += dxhat[j];
            sum_dxhat_xhat += dxhat[j] * xhat[j];
            ggain.data_mut()[j] += grow[j] * xhat[j];
            gbias.data_mut()[j] += grow[j];
        }
        let inv_d = 1.0 / d as f32;
        let gxrow = &mut gx.data_mut()[r * d..(r + 1) * d];
        for j in 0..d {
            gxrow[j] = inv * (dxhat[j] - inv_d * sum_dxhat - xhat[j] * inv_d * sum_dxhat_xhat);
        }
    }
    acc(grads, nodes, x, &gx);
    // gain/bias may themselves be params or computed tensors; accumulate normally.
    match &nodes[gain.0].op {
        Op::Param(name) => out.insert_or_add(name, &ggain),
        _ => acc(grads, nodes, gain, &ggain),
    }
    match &nodes[bias.0].op {
        Op::Param(name) => out.insert_or_add(name, &gbias),
        _ => acc(grads, nodes, bias, &gbias),
    }
}

fn conv1d_backward(
    nodes: &[Node],
    grads: &mut [Option<NdArray>],
    g: &NdArray,
    x: Tx,
    w: Tx,
    b: Tx,
    dilation: usize,
) {
    let xv = &nodes[x.0].value;
    let wv = &nodes[w.0].value;
    let (bs, l, cin) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
    let (k, _, cout) = (wv.shape()[0], wv.shape()[1], wv.shape()[2]);
    let xd = xv.data();
    let wd = wv.data();
    let gd = g.data();
    // Per-batch partials, always — so the (gx, gw, gb) summation order is a
    // function of the batch split alone and identical at every thread count
    // (par_map runs the same per-batch closures inline when single-threaded).
    let per_batch = st_par::par_map("conv1d_bwd", bs, |bi| {
        let mut gxb = vec![0.0f32; l * cin];
        let mut gwb = vec![0.0f32; k * cin * cout];
        let mut gbb = vec![0.0f32; cout];
        for t in 0..l {
            let grow = &gd[(bi * l + t) * cout..(bi * l + t + 1) * cout];
            for (co, &gvv) in grow.iter().enumerate() {
                gbb[co] += gvv;
            }
            for ki in 0..k {
                let Some(src) = t.checked_sub(ki * dilation) else { break };
                let xrow = &xd[(bi * l + src) * cin..(bi * l + src + 1) * cin];
                for ci in 0..cin {
                    let wrow = &wd[(ki * cin + ci) * cout..(ki * cin + ci + 1) * cout];
                    let mut acc_gx = 0.0f32;
                    let gw_base = (ki * cin + ci) * cout;
                    for (co, &gvv) in grow.iter().enumerate() {
                        acc_gx += gvv * wrow[co];
                        gwb[gw_base + co] += gvv * xrow[ci];
                    }
                    gxb[src * cin + ci] += acc_gx;
                }
            }
        }
        (gxb, gwb, gbb)
    });
    let mut gx = NdArray::zeros(xv.shape());
    let mut gw = NdArray::zeros(wv.shape());
    let mut gb = NdArray::zeros(&[cout]);
    let gxd = gx.data_mut();
    let gwd = gw.data_mut();
    let gbd = gb.data_mut();
    for (bi, (gxb, gwb, gbb)) in per_batch.iter().enumerate() {
        gxd[bi * l * cin..(bi + 1) * l * cin].copy_from_slice(gxb);
        for (o, &p) in gwd.iter_mut().zip(gwb) {
            *o += p;
        }
        for (o, &p) in gbd.iter_mut().zip(gbb) {
            *o += p;
        }
    }
    acc(grads, nodes, x, &gx);
    acc(grads, nodes, w, &gw);
    acc(grads, nodes, b, &gb);
}
