//! Optimizers and learning-rate schedules.

use crate::graph::Gradients;
use crate::ndarray::NdArray;
use crate::param::ParamStore;
use std::collections::HashMap;

/// Adam optimizer (Kingma & Ba, 2015) with optional decoupled weight decay.
#[derive(Debug)]
pub struct Adam {
    /// Current learning rate (mutable so schedules can adjust it).
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<String, NdArray>,
    v: HashMap<String, NdArray>,
}

impl Adam {
    /// Create an Adam optimizer with standard moment coefficients
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8) and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Builder-style decoupled weight decay (AdamW).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update to every parameter that has a gradient.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        let t0 = st_obs::op_start();
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (name, g) in grads.iter() {
            let p = store
                .get_mut(name)
                .unwrap_or_else(|| panic!("gradient for unknown parameter `{name}`"));
            let m = self.m.entry(name.clone()).or_insert_with(|| NdArray::zeros(g.shape()));
            let v = self.v.entry(name.clone()).or_insert_with(|| NdArray::zeros(g.shape()));
            let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
            for i in 0..g.numel() {
                let gi = g.data()[i];
                let mi = b1 * m.data()[i] + (1.0 - b1) * gi;
                let vi = b2 * v.data()[i] + (1.0 - b2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let pd = p.data_mut();
                pd[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * pd[i]);
            }
        }
        st_obs::record_op(st_obs::Phase::Opt, "adam_step", t0, grads.numel() as u64);
    }
}

/// Clip gradients so their global L2 norm does not exceed `max_norm`.
///
/// Returns the pre-clip norm. The norm is accumulated in f64
/// ([`Gradients::global_norm`]) and the rescale factor is *applied* in f64 as
/// well ([`Gradients::scale_all_f64`]): rounding the factor to f32 first and
/// multiplying in f32 re-rounds every element twice, which left the post-clip
/// norm drifting a few ULP past `max_norm` for norms just above the boundary
/// (regression-pinned by the `clip_*` tests below).
pub fn clip_grad_norm(grads: &mut Gradients, max_norm: f64) -> f64 {
    let t0 = st_obs::op_start();
    let norm = grads.global_norm();
    if norm > max_norm && norm > 0.0 {
        grads.scale_all_f64(max_norm / norm);
    }
    st_obs::record_op(st_obs::Phase::Opt, "clip_grad_norm", t0, grads.numel() as u64);
    norm
}

/// The paper's learning-rate schedule: base rate, decayed ×0.1 at 75 % of
/// training and ×0.1 again at 90 % (Section IV-D).
pub fn pristi_lr(base: f32, epoch: usize, total_epochs: usize) -> f32 {
    let frac = (epoch as f64 + 1.0) / total_epochs.max(1) as f64;
    if frac > 0.9 {
        base * 0.01
    } else if frac > 0.75 {
        base * 0.1
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::ndarray::NdArray;

    /// Adam should drive a quadratic bowl `(w - 3)^2` close to its minimum.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.insert("w", NdArray::from_vec(&[1], vec![-2.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let grads = {
                let mut g = Graph::new(&store);
                let w = g.param("w");
                let target = g.input(NdArray::from_vec(&[1], vec![3.0]));
                let mask = g.input(NdArray::ones(&[1]));
                let loss = g.mse_masked(w, target, mask);
                g.backward(loss)
            };
            opt.step(&mut store, &grads);
        }
        let w = store.get("w").unwrap().data()[0];
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn clip_reduces_norm() {
        let mut store = ParamStore::new();
        store.insert("w", NdArray::from_vec(&[2], vec![0.0, 0.0]));
        let mut g = Graph::new(&store);
        let w = g.param("w");
        let t = g.input(NdArray::from_vec(&[2], vec![100.0, 100.0]));
        let m = g.input(NdArray::ones(&[2]));
        let loss = g.mse_masked(w, t, m);
        let mut grads = g.backward(loss);
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!(pre > 1.0);
        assert!((grads.global_norm() - 1.0).abs() < 1e-5);
    }

    /// Helper: build a `Gradients` holding exactly the given flat vector.
    fn grads_of(values: Vec<f32>) -> Gradients {
        let mut store = ParamStore::new();
        let n = values.len();
        store.insert("w", NdArray::zeros(&[n]));
        let mut g = Graph::new(&store);
        let w = g.param("w");
        // loss = mse(w, -target) with mask all-ones has gradient 2*(w-t)/n;
        // easier: drive the gradient directly through SumAll of w*c.
        let c = g.input(NdArray::from_vec(&[n], values));
        let prod = g.mul(w, c);
        let loss = g.sum_all(prod);
        g.backward(loss) // d loss / d w = c, exactly the requested values
    }

    /// A gradient whose norm is *exactly* the clip threshold must pass
    /// through bitwise untouched (the boundary is exclusive).
    #[test]
    fn clip_exactly_at_boundary_is_identity() {
        // 3-4-5 triangle: ||(3,4)|| = 5 exactly in both f32 and f64.
        let mut grads = grads_of(vec![3.0, 4.0]);
        let pre = clip_grad_norm(&mut grads, 5.0);
        assert_eq!(pre, 5.0);
        let g = grads.get("w").unwrap();
        assert_eq!(g.data(), &[3.0, 4.0], "exactly-at-clip gradients must not be rescaled");
    }

    /// Norms just above the boundary must come back within one f32 rounding
    /// of `max_norm` — the f32 factor round-trip used to overshoot.
    #[test]
    fn clip_lands_on_max_norm_without_f32_drift() {
        for scale in [1.0 + 1e-7, 1.5, 10.0, 1e6] {
            let mut grads = grads_of(vec![3.0 * scale, 4.0 * scale, 0.12 * scale, -0.7 * scale]);
            let max_norm = 2.5;
            let pre = clip_grad_norm(&mut grads, max_norm);
            assert!(pre > max_norm);
            let post = grads.global_norm();
            // One f32 rounding per element: relative error bounded by ~2^-23.
            assert!(
                (post - max_norm).abs() <= max_norm * 2.0 * f32::EPSILON as f64,
                "post-clip norm {post} drifted from {max_norm} (pre {pre}, scale {scale})"
            );
            assert!(post <= max_norm * (1.0 + 2.0 * f32::EPSILON as f64));
        }
    }

    /// Tiny norms (far below the threshold) are untouched — no spurious
    /// rescale, no underflow.
    #[test]
    fn clip_tiny_norm_is_identity() {
        let mut grads = grads_of(vec![1e-20, -1e-20]);
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!(pre > 0.0 && pre < 1e-19);
        assert_eq!(grads.get("w").unwrap().data(), &[1e-20, -1e-20]);
    }

    /// All-zero gradients: norm 0, no NaN from 0/0, values untouched.
    #[test]
    fn clip_zero_grad_is_identity() {
        let mut grads = grads_of(vec![0.0, 0.0, 0.0]);
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert_eq!(pre, 0.0);
        assert!(grads.get("w").unwrap().data().iter().all(|&v| v == 0.0));
        assert!(grads.global_norm() == 0.0);
    }

    /// f64 scaling path: applying the factor in f64 then rounding once must
    /// agree with the mathematically scaled value for every element.
    #[test]
    fn scale_all_f64_rounds_once() {
        let values = vec![3.0f32, -4.0, 1.25e-3, 7.5e4];
        let mut grads = grads_of(values.clone());
        let c = 1.0f64 / 3.0;
        grads.scale_all_f64(c);
        let g = grads.get("w").unwrap();
        for (got, want) in g.data().iter().zip(&values) {
            assert_eq!(*got, ((*want as f64) * c) as f32);
        }
    }

    #[test]
    fn lr_schedule_steps_down() {
        assert_eq!(pristi_lr(0.001, 0, 100), 0.001);
        assert_eq!(pristi_lr(0.001, 74, 100), 0.001);
        assert!((pristi_lr(0.001, 80, 100) - 0.0001).abs() < 1e-9);
        assert!((pristi_lr(0.001, 95, 100) - 0.00001).abs() < 1e-9);
    }
}
