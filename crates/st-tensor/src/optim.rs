//! Optimizers and learning-rate schedules.

use crate::graph::Gradients;
use crate::ndarray::NdArray;
use crate::param::ParamStore;
use std::collections::HashMap;

/// Adam optimizer (Kingma & Ba, 2015) with optional decoupled weight decay.
#[derive(Debug)]
pub struct Adam {
    /// Current learning rate (mutable so schedules can adjust it).
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<String, NdArray>,
    v: HashMap<String, NdArray>,
}

impl Adam {
    /// Create an Adam optimizer with standard moment coefficients
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8) and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Builder-style decoupled weight decay (AdamW).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update to every parameter that has a gradient.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (name, g) in grads.iter() {
            let p = store
                .get_mut(name)
                .unwrap_or_else(|| panic!("gradient for unknown parameter `{name}`"));
            let m = self.m.entry(name.clone()).or_insert_with(|| NdArray::zeros(g.shape()));
            let v = self.v.entry(name.clone()).or_insert_with(|| NdArray::zeros(g.shape()));
            let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
            for i in 0..g.numel() {
                let gi = g.data()[i];
                let mi = b1 * m.data()[i] + (1.0 - b1) * gi;
                let vi = b2 * v.data()[i] + (1.0 - b2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let pd = p.data_mut();
                pd[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * pd[i]);
            }
        }
    }
}

/// Clip gradients so their global L2 norm does not exceed `max_norm`.
///
/// Returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut Gradients, max_norm: f64) -> f64 {
    let norm = grads.global_norm();
    if norm > max_norm && norm > 0.0 {
        grads.scale_all((max_norm / norm) as f32);
    }
    norm
}

/// The paper's learning-rate schedule: base rate, decayed ×0.1 at 75 % of
/// training and ×0.1 again at 90 % (Section IV-D).
pub fn pristi_lr(base: f32, epoch: usize, total_epochs: usize) -> f32 {
    let frac = (epoch as f64 + 1.0) / total_epochs.max(1) as f64;
    if frac > 0.9 {
        base * 0.01
    } else if frac > 0.75 {
        base * 0.1
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::ndarray::NdArray;

    /// Adam should drive a quadratic bowl `(w - 3)^2` close to its minimum.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.insert("w", NdArray::from_vec(&[1], vec![-2.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let grads = {
                let mut g = Graph::new(&store);
                let w = g.param("w");
                let target = g.input(NdArray::from_vec(&[1], vec![3.0]));
                let mask = g.input(NdArray::ones(&[1]));
                let loss = g.mse_masked(w, target, mask);
                g.backward(loss)
            };
            opt.step(&mut store, &grads);
        }
        let w = store.get("w").unwrap().data()[0];
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn clip_reduces_norm() {
        let mut store = ParamStore::new();
        store.insert("w", NdArray::from_vec(&[2], vec![0.0, 0.0]));
        let mut g = Graph::new(&store);
        let w = g.param("w");
        let t = g.input(NdArray::from_vec(&[2], vec![100.0, 100.0]));
        let m = g.input(NdArray::ones(&[2]));
        let loss = g.mse_masked(w, t, m);
        let mut grads = g.backward(loss);
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!(pre > 1.0);
        assert!((grads.global_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn lr_schedule_steps_down() {
        assert_eq!(pristi_lr(0.001, 0, 100), 0.001);
        assert_eq!(pristi_lr(0.001, 74, 100), 0.001);
        assert!((pristi_lr(0.001, 80, 100) - 0.0001).abs() < 1e-9);
        assert!((pristi_lr(0.001, 95, 100) - 0.00001).abs() < 1e-9);
    }
}
