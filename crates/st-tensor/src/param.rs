//! Named parameter storage with initialisation schemes and a simple binary
//! checkpoint format.

use crate::ndarray::NdArray;
use st_rand::Rng;
use std::collections::BTreeMap;

/// Owns all learnable parameters of a model, keyed by hierarchical names
/// such as `"noise_est.layer0.attn_t.wq"`.
///
/// A [`crate::graph::Graph`] borrows the store immutably during the forward
/// pass; the optimizer mutates it between passes.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    params: BTreeMap<String, NdArray>,
}

impl ParamStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a parameter; panics on duplicate names (which would silently
    /// alias two layers).
    pub fn insert(&mut self, name: impl Into<String>, value: NdArray) {
        let name = name.into();
        assert!(
            self.params.insert(name.clone(), value).is_none(),
            "duplicate parameter name `{name}`"
        );
    }

    /// Look up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&NdArray> {
        self.params.get(name)
    }

    /// Mutable access to a parameter.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut NdArray> {
        self.params.get_mut(name)
    }

    /// Whether a parameter exists.
    pub fn contains(&self, name: &str) -> bool {
        self.params.contains_key(name)
    }

    /// All parameter names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.params.keys().map(String::as_str)
    }

    /// Iterate over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &NdArray)> {
        self.params.iter()
    }

    /// Total number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.params.values().map(NdArray::numel).sum()
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Serialize to a simple length-prefixed binary blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for (name, arr) in &self.params {
            let nb = name.as_bytes();
            out.extend_from_slice(&(nb.len() as u64).to_le_bytes());
            out.extend_from_slice(nb);
            out.extend_from_slice(&(arr.ndim() as u64).to_le_bytes());
            for &d in arr.shape() {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &v in arr.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize from [`Self::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let read_u64 = |bytes: &[u8], pos: &mut usize| -> Result<u64, String> {
            let end = *pos + 8;
            let sl = bytes.get(*pos..end).ok_or("truncated checkpoint")?;
            *pos = end;
            Ok(u64::from_le_bytes(sl.try_into().unwrap()))
        };
        let count = read_u64(bytes, &mut pos)? as usize;
        let mut store = Self::new();
        for _ in 0..count {
            let name_len = read_u64(bytes, &mut pos)? as usize;
            let name = std::str::from_utf8(
                bytes.get(pos..pos + name_len).ok_or("truncated checkpoint")?,
            )
            .map_err(|e| e.to_string())?
            .to_string();
            pos += name_len;
            let rank = read_u64(bytes, &mut pos)? as usize;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(read_u64(bytes, &mut pos)? as usize);
            }
            let numel: usize = shape.iter().product();
            let mut data = Vec::with_capacity(numel);
            for _ in 0..numel {
                let end = pos + 4;
                let sl = bytes.get(pos..end).ok_or("truncated checkpoint")?;
                pos = end;
                data.push(f32::from_le_bytes(sl.try_into().unwrap()));
            }
            store.insert(name, NdArray::from_vec(&shape, data));
        }
        Ok(store)
    }
}

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> NdArray {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    NdArray::rand_uniform(&[fan_in, fan_out], -limit, limit, rng)
}

/// Kaiming/He normal initialisation (for ReLU-family activations).
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> NdArray {
    let std = (2.0 / fan_in as f32).sqrt();
    let mut a = NdArray::randn(&[fan_in, fan_out], rng);
    a.map_inplace(|x| x * std);
    a
}

/// Small-scale normal initialisation with the given standard deviation.
pub fn normal_init<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> NdArray {
    let mut a = NdArray::randn(shape, rng);
    a.map_inplace(|x| x * std);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn insert_get_round_trip() {
        let mut s = ParamStore::new();
        s.insert("a.w", NdArray::ones(&[2, 3]));
        assert!(s.contains("a.w"));
        assert_eq!(s.get("a.w").unwrap().shape(), &[2, 3]);
        assert_eq!(s.numel(), 6);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.insert("w", NdArray::ones(&[1]));
        s.insert("w", NdArray::ones(&[1]));
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = ParamStore::new();
        s.insert("layer.w", NdArray::randn(&[3, 4], &mut rng));
        s.insert("layer.b", NdArray::randn(&[4], &mut rng));
        let blob = s.to_bytes();
        let back = ParamStore::from_bytes(&blob).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("layer.w"), s.get("layer.w"));
        assert_eq!(back.get("layer.b"), s.get("layer.b"));
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let mut s = ParamStore::new();
        s.insert("w", NdArray::ones(&[2, 2]));
        let blob = s.to_bytes();
        assert!(ParamStore::from_bytes(&blob[..blob.len() - 3]).is_err());
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(10);
        let w = xavier_uniform(64, 64, &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= limit));
    }
}
