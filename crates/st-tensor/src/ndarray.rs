//! Dense, row-major, f32 n-dimensional array.
//!
//! This is the storage type underneath the autodiff [`Graph`](crate::graph::Graph).
//! It deliberately supports only the operations the PriSTI computation graph
//! needs (element-wise arithmetic with NumPy-style broadcasting, 2-D and
//! batched 3-D matrix multiplication, permutation, concatenation, softmax),
//! implemented with cache-friendly loops rather than a general einsum engine.

use st_rand::Rng;
use st_rand::{Distribution, Normal, Uniform};

/// A dense row-major tensor of `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct NdArray {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl NdArray {
    /// Create an array of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// Create an array of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Create an array filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![value; n] }
    }

    /// Create a rank-0-like scalar stored as shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Self { shape: vec![1], data: vec![value] }
    }

    /// Create an array from a flat buffer; panics if sizes disagree.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "NdArray::from_vec: shape {shape:?} does not match data length {}",
            data.len()
        );
        Self { shape: shape.to_vec(), data }
    }

    /// Standard-normal random array.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Self {
        let dist = Normal::new(0.0f32, 1.0).expect("valid normal");
        let n = shape.iter().product();
        let data = (0..n).map(|_| dist.sample(rng)).collect();
        Self { shape: shape.to_vec(), data }
    }

    /// Uniform random array over `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let dist = Uniform::new(lo, hi).expect("valid uniform range");
        let n = shape.iter().product();
        let data = (0..n).map(|_| dist.sample(rng)).collect();
        Self { shape: shape.to_vec(), data }
    }

    /// The shape of the array.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat data buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Serialize to a one-line text form: `shape;data` with space-separated
    /// fields. Values are written via `f32 -> bits` hex so the round-trip is
    /// bitwise exact (plain decimal formatting would lose precision).
    pub fn to_text(&self) -> String {
        let shape = self.shape.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(" ");
        let data =
            self.data.iter().map(|v| format!("{:08x}", v.to_bits())).collect::<Vec<_>>().join(" ");
        format!("{shape};{data}")
    }

    /// Parse [`Self::to_text`] output back into an array.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let (shape_part, data_part) =
            text.split_once(';').ok_or("NdArray text form must contain `;`")?;
        let shape = shape_part
            .split_whitespace()
            .map(|t| t.parse::<usize>().map_err(|e| format!("bad dim `{t}`: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let data = data_part
            .split_whitespace()
            .map(|t| {
                u32::from_str_radix(t, 16)
                    .map(f32::from_bits)
                    .map_err(|e| format!("bad value `{t}`: {e}"))
            })
            .collect::<Result<Vec<f32>, _>>()?;
        if shape.iter().product::<usize>() != data.len() {
            return Err(format!(
                "shape {shape:?} does not match {} data values",
                data.len()
            ));
        }
        Ok(Self { shape, data })
    }

    /// Serialize to a length-prefixed little-endian binary blob
    /// (same layout as `ParamStore::to_bytes` uses per tensor).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 * self.ndim() + 4 * self.data.len());
        out.extend_from_slice(&(self.ndim() as u64).to_le_bytes());
        for &d in &self.shape {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`Self::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let read_u64 = |bytes: &[u8], pos: &mut usize| -> Result<u64, String> {
            let sl = bytes.get(*pos..*pos + 8).ok_or("truncated NdArray blob")?;
            *pos += 8;
            Ok(u64::from_le_bytes(sl.try_into().unwrap()))
        };
        let ndim = read_u64(bytes, &mut pos)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u64(bytes, &mut pos)? as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let sl = bytes.get(pos..pos + 4).ok_or("truncated NdArray blob")?;
            pos += 4;
            data.push(f32::from_le_bytes(sl.try_into().unwrap()));
        }
        if pos != bytes.len() {
            return Err(format!("{} trailing bytes after NdArray blob", bytes.len() - pos));
        }
        Ok(Self { shape, data })
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        strides_of(&self.shape)
    }

    /// Element accessor by multi-index (debug/test convenience; not for hot loops).
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Mutable element accessor by multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data[i]
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let strides = self.strides();
        idx.iter()
            .zip(&self.shape)
            .zip(&strides)
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for dim of size {d}");
                i * s
            })
            .sum()
    }

    /// Return a copy with a new shape (same number of elements).
    pub fn reshaped(&self, shape: &[usize]) -> NdArray {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.numel(),
            "reshape from {:?} to {shape:?} changes element count",
            self.shape
        );
        NdArray { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// In-place reshape (no data movement).
    pub fn reshape_inplace(&mut self, shape: &[usize]) {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.numel(),
            "reshape from {:?} to {shape:?} changes element count",
            self.shape
        );
        self.shape = shape.to_vec();
    }

    /// Apply `f` element-wise, producing a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> NdArray {
        NdArray { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Apply `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combine two same-shaped arrays.
    pub fn zip_map(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        NdArray { shape: self.shape.clone(), data }
    }

    /// Sum of all elements (accumulated in f64 for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute value (0 for empty arrays).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    // ---------------------------------------------------------------------
    // Broadcasting element-wise arithmetic
    // ---------------------------------------------------------------------

    /// NumPy-style broadcast binary operation.
    pub fn broadcast_binary(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        if self.shape == other.shape {
            return self.zip_map(other, f);
        }
        let out_shape = broadcast_shape(&self.shape, &other.shape).unwrap_or_else(|| {
            panic!("cannot broadcast {:?} with {:?}", self.shape, other.shape)
        });
        let mut out = NdArray::zeros(&out_shape);
        let a_strides = broadcast_strides(&self.shape, &out_shape);
        let b_strides = broadcast_strides(&other.shape, &out_shape);
        let mut idx = vec![0usize; out_shape.len()];
        for o in out.data.iter_mut() {
            let mut ai = 0;
            let mut bi = 0;
            for (d, &i) in idx.iter().enumerate() {
                ai += i * a_strides[d];
                bi += i * b_strides[d];
            }
            *o = f(self.data[ai], other.data[bi]);
            // increment multi-index
            for d in (0..out_shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }

    /// Element-wise addition with broadcasting.
    pub fn add(&self, other: &NdArray) -> NdArray {
        self.broadcast_binary(other, |a, b| a + b)
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(&self, other: &NdArray) -> NdArray {
        self.broadcast_binary(other, |a, b| a - b)
    }

    /// Element-wise multiplication with broadcasting.
    pub fn mul(&self, other: &NdArray) -> NdArray {
        self.broadcast_binary(other, |a, b| a * b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, c: f32) -> NdArray {
        self.map(|x| x * c)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, c: f32) -> NdArray {
        self.map(|x| x + c)
    }

    /// Accumulate `other * scale` into `self` (same shape).
    pub fn axpy(&mut self, scale: f32, other: &NdArray) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Sum `self` down to `target_shape` (inverse of broadcasting).
    ///
    /// `target_shape` must be broadcast-compatible with `self.shape` and
    /// obtainable from it by summing over expanded axes.
    pub fn reduce_to_shape(&self, target_shape: &[usize]) -> NdArray {
        if self.shape == target_shape {
            return self.clone();
        }
        let out_rank = self.ndim();
        // Left-pad target with 1s to the same rank.
        let mut padded = vec![1usize; out_rank];
        let offset = out_rank - target_shape.len();
        padded[offset..].copy_from_slice(target_shape);

        let mut out = NdArray::zeros(&padded);
        let out_strides = out.strides();
        let src_shape = self.shape.clone();
        let mut idx = vec![0usize; out_rank];
        for &v in &self.data {
            let mut oi = 0;
            for d in 0..out_rank {
                let i = if padded[d] == 1 { 0 } else { idx[d] };
                oi += i * out_strides[d];
            }
            out.data[oi] += v;
            for d in (0..out_rank).rev() {
                idx[d] += 1;
                if idx[d] < src_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out.reshape_inplace(target_shape);
        out
    }

    // ---------------------------------------------------------------------
    // Matrix multiplication
    // ---------------------------------------------------------------------

    /// 2-D matrix product `self [m,k] @ other [k,n] -> [m,n]`.
    pub fn matmul(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {:?} vs {:?}", self.shape, other.shape);
        let mut out = NdArray::zeros(&[m, n]);
        matmul_kernel(&mut out.data, &self.data, &other.data, m, k, n);
        out
    }

    /// 2-D product with transposed rhs: `self [m,k] @ other^T` where `other [n,k]`.
    pub fn matmul_transb(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transb inner dims: {:?} vs {:?}", self.shape, other.shape);
        let mut out = NdArray::zeros(&[m, n]);
        matmul_transb_kernel(&mut out.data, &self.data, &other.data, m, k, n);
        out
    }

    /// 2-D product with transposed lhs: `self^T @ other` where `self [k,m]`, `other [k,n]`.
    pub fn matmul_transa(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transa inner dims: {:?} vs {:?}", self.shape, other.shape);
        let mut out = NdArray::zeros(&[m, n]);
        matmul_transa_kernel(&mut out.data, &self.data, &other.data, m, k, n);
        out
    }

    /// Batched 3-D matmul: `[B,m,k] @ [B,k,n] -> [B,m,n]`.
    pub fn batch_matmul(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3, "batch_matmul lhs must be 3-D");
        assert_eq!(other.ndim(), 3, "batch_matmul rhs must be 3-D");
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "batch dims differ");
        assert_eq!(k, k2, "inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = NdArray::zeros(&[b, m, n]);
        for i in 0..b {
            matmul_kernel(
                &mut out.data[i * m * n..(i + 1) * m * n],
                &self.data[i * m * k..(i + 1) * m * k],
                &other.data[i * k * n..(i + 1) * k * n],
                m,
                k,
                n,
            );
        }
        out
    }

    /// Batched matmul with transposed rhs: `[B,m,k] @ [B,n,k]^T -> [B,m,n]`.
    pub fn batch_matmul_transb(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3);
        assert_eq!(other.ndim(), 3);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, n, k2) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "batch dims differ");
        assert_eq!(k, k2, "inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = NdArray::zeros(&[b, m, n]);
        for i in 0..b {
            matmul_transb_kernel(
                &mut out.data[i * m * n..(i + 1) * m * n],
                &self.data[i * m * k..(i + 1) * m * k],
                &other.data[i * n * k..(i + 1) * n * k],
                m,
                k,
                n,
            );
        }
        out
    }

    /// Batched matmul with transposed lhs: `[B,k,m]^T @ [B,k,n] -> [B,m,n]`.
    pub fn batch_matmul_transa(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3);
        assert_eq!(other.ndim(), 3);
        let (b, k, m) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "batch dims differ");
        assert_eq!(k, k2, "inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut out = NdArray::zeros(&[b, m, n]);
        for i in 0..b {
            matmul_transa_kernel(
                &mut out.data[i * m * n..(i + 1) * m * n],
                &self.data[i * k * m..(i + 1) * k * m],
                &other.data[i * k * n..(i + 1) * k * n],
                m,
                k,
                n,
            );
        }
        out
    }

    /// Shared-left matmul: `s [n,n'] @ self [B,n',d] -> [B,n,d]` applied per batch.
    pub fn matmul_shared_left(&self, s: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3, "matmul_shared_left input must be 3-D");
        assert_eq!(s.ndim(), 2, "shared matrix must be 2-D");
        let (b, np, d) = (self.shape[0], self.shape[1], self.shape[2]);
        let (n, np2) = (s.shape[0], s.shape[1]);
        assert_eq!(np, np2, "shared matmul inner dims: s {:?} x {:?}", s.shape, self.shape);
        let mut out = NdArray::zeros(&[b, n, d]);
        for i in 0..b {
            matmul_kernel(
                &mut out.data[i * n * d..(i + 1) * n * d],
                &s.data,
                &self.data[i * np * d..(i + 1) * np * d],
                n,
                np,
                d,
            );
        }
        out
    }

    /// 2-D transpose.
    pub fn transpose2d(&self) -> NdArray {
        assert_eq!(self.ndim(), 2);
        self.permuted(&[1, 0])
    }

    /// General permutation of axes.
    pub fn permuted(&self, perm: &[usize]) -> NdArray {
        assert_eq!(perm.len(), self.ndim(), "perm rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = self.strides();
        // stride in the input for each output axis
        let perm_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let mut out = NdArray::zeros(&out_shape);
        let rank = out_shape.len();
        let mut idx = vec![0usize; rank];
        let mut src = 0usize;
        for o in out.data.iter_mut() {
            *o = self.data[src];
            for d in (0..rank).rev() {
                idx[d] += 1;
                src += perm_strides[d];
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
                src -= out_shape[d] * perm_strides[d];
            }
        }
        out
    }

    /// Concatenate along the last axis. All leading dims must match.
    pub fn concat_last(parts: &[&NdArray]) -> NdArray {
        assert!(!parts.is_empty(), "concat of zero arrays");
        let lead = &parts[0].shape[..parts[0].ndim() - 1];
        let mut last_total = 0usize;
        for p in parts {
            assert_eq!(&p.shape[..p.ndim() - 1], lead, "concat leading dims differ");
            last_total += *p.shape.last().unwrap();
        }
        let rows: usize = lead.iter().product();
        let mut shape = lead.to_vec();
        shape.push(last_total);
        let mut out = NdArray::zeros(&shape);
        let mut col_off = 0usize;
        for p in parts {
            let w = *p.shape.last().unwrap();
            for r in 0..rows {
                out.data[r * last_total + col_off..r * last_total + col_off + w]
                    .copy_from_slice(&p.data[r * w..(r + 1) * w]);
            }
            col_off += w;
        }
        out
    }

    /// Slice `[start, start+len)` of the last axis.
    pub fn slice_last(&self, start: usize, len: usize) -> NdArray {
        let last = *self.shape.last().expect("slice_last on 0-rank array");
        assert!(start + len <= last, "slice_last out of range: {start}+{len} > {last}");
        let rows = self.numel() / last;
        let mut shape = self.shape.clone();
        *shape.last_mut().unwrap() = len;
        let mut out = NdArray::zeros(&shape);
        for r in 0..rows {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&self.data[r * last + start..r * last + start + len]);
        }
        out
    }

    /// Softmax over the last axis (numerically stabilised).
    pub fn softmax_last(&self) -> NdArray {
        let last = *self.shape.last().expect("softmax on 0-rank array");
        let rows = self.numel() / last;
        let mut out = self.clone();
        for r in 0..rows {
            let row = &mut out.data[r * last..(r + 1) * last];
            let mx = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - mx).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }
}

/// Row-major strides for a shape.
pub fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// NumPy broadcast result shape, or `None` when incompatible.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let ad = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let bd = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if ad == bd {
            ad
        } else if ad == 1 {
            bd
        } else if bd == 1 {
            ad
        } else {
            return None;
        };
    }
    Some(out)
}

/// Strides of `shape` viewed as broadcast to `out_shape` (0 for expanded axes).
fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let own = strides_of(shape);
    let rank = out_shape.len();
    let pad = rank - shape.len();
    let mut s = vec![0usize; rank];
    for i in 0..shape.len() {
        s[pad + i] = if shape[i] == 1 { 0 } else { own[i] };
    }
    s
}

/// `out += a @ b` for row-major buffers, ikj loop order.
#[inline]
pub fn matmul_kernel(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out += a @ b^T` where `a [m,k]`, `b [n,k]`.
#[inline]
pub fn matmul_transb_kernel(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] += acc;
        }
    }
}

/// `out += a^T @ b` where `a [k,m]`, `b [k,n]`.
#[inline]
pub fn matmul_transa_kernel(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    for p in 0..k {
        let brow = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let av = a[p * m + i];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn zeros_ones_full() {
        let z = NdArray::zeros(&[2, 3]);
        assert_eq!(z.shape(), &[2, 3]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = NdArray::ones(&[4]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = NdArray::full(&[2, 2], 7.5);
        assert!(f.data().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn indexing_round_trip() {
        let mut a = NdArray::zeros(&[2, 3, 4]);
        *a.at_mut(&[1, 2, 3]) = 42.0;
        assert_eq!(a.at(&[1, 2, 3]), 42.0);
        assert_eq!(a.data()[12 + 2 * 4 + 3], 42.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = NdArray::zeros(&[2, 2]);
        a.at(&[0, 2]);
    }

    #[test]
    fn matmul_small_known() {
        let a = NdArray::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = NdArray::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = NdArray::randn(&[4, 5], &mut rng);
        let b = NdArray::randn(&[3, 5], &mut rng);
        let c1 = a.matmul_transb(&b);
        let c2 = a.matmul(&b.transpose2d());
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = NdArray::randn(&[5, 4], &mut rng);
        let b = NdArray::randn(&[5, 3], &mut rng);
        let c1 = a.matmul_transa(&b);
        let c2 = a.transpose2d().matmul(&b);
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_matmul_matches_loop() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = NdArray::randn(&[3, 2, 4], &mut rng);
        let b = NdArray::randn(&[3, 4, 5], &mut rng);
        let c = a.batch_matmul(&b);
        assert_eq!(c.shape(), &[3, 2, 5]);
        for i in 0..3 {
            let ai = NdArray::from_vec(&[2, 4], a.data()[i * 8..(i + 1) * 8].to_vec());
            let bi = NdArray::from_vec(&[4, 5], b.data()[i * 20..(i + 1) * 20].to_vec());
            let ci = ai.matmul(&bi);
            for (x, y) in ci.data().iter().zip(&c.data()[i * 10..(i + 1) * 10]) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shared_left_matmul_matches_per_batch() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = NdArray::randn(&[3, 3], &mut rng);
        let x = NdArray::randn(&[2, 3, 4], &mut rng);
        let y = x.matmul_shared_left(&s);
        for b in 0..2 {
            let xb = NdArray::from_vec(&[3, 4], x.data()[b * 12..(b + 1) * 12].to_vec());
            let yb = s.matmul(&xb);
            for (u, v) in yb.data().iter().zip(&y.data()[b * 12..(b + 1) * 12]) {
                assert!((u - v).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shared_left_matmul_rectangular() {
        // Downsampling shape: s [k,n] @ x [B,n,d] -> [B,k,d]
        let mut rng = StdRng::seed_from_u64(5);
        let s = NdArray::randn(&[2, 5], &mut rng);
        let x = NdArray::randn(&[3, 5, 4], &mut rng);
        let y = x.matmul_shared_left(&s);
        assert_eq!(y.shape(), &[3, 2, 4]);
    }

    #[test]
    fn permute_round_trip() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = NdArray::randn(&[2, 3, 4, 5], &mut rng);
        let p = a.permuted(&[2, 0, 3, 1]);
        assert_eq!(p.shape(), &[4, 2, 5, 3]);
        // inverse permutation of [2,0,3,1] is [1,3,0,2]
        let back = p.permuted(&[1, 3, 0, 2]);
        assert_eq!(back, a);
    }

    #[test]
    fn permute_values_correct() {
        let a = NdArray::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.permuted(&[1, 0]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn broadcast_add_bias() {
        let a = NdArray::from_vec(&[2, 3], vec![0., 0., 0., 1., 1., 1.]);
        let b = NdArray::from_vec(&[3], vec![10., 20., 30.]);
        let c = a.add(&b);
        assert_eq!(c.data(), &[10., 20., 30., 11., 21., 31.]);
    }

    #[test]
    fn broadcast_middle_ones() {
        let a = NdArray::from_vec(&[2, 1, 2], vec![1., 2., 3., 4.]);
        let b = NdArray::from_vec(&[1, 3, 1], vec![10., 20., 30.]);
        let c = a.add(&b);
        assert_eq!(c.shape(), &[2, 3, 2]);
        assert_eq!(c.at(&[0, 0, 0]), 11.);
        assert_eq!(c.at(&[0, 2, 1]), 32.);
        assert_eq!(c.at(&[1, 1, 0]), 23.);
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        let g = NdArray::ones(&[2, 3, 4]);
        let r = g.reduce_to_shape(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert!(r.data().iter().all(|&x| (x - 6.0).abs() < 1e-6));
        let r2 = g.reduce_to_shape(&[1, 3, 1]);
        assert_eq!(r2.shape(), &[1, 3, 1]);
        assert!(r2.data().iter().all(|&x| (x - 8.0).abs() < 1e-6));
    }

    #[test]
    fn concat_and_slice_inverse() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = NdArray::randn(&[2, 3], &mut rng);
        let b = NdArray::randn(&[2, 5], &mut rng);
        let c = NdArray::concat_last(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 8]);
        assert_eq!(c.slice_last(0, 3), a);
        assert_eq!(c.slice_last(3, 5), b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = NdArray::randn(&[4, 7], &mut rng).scale(3.0);
        let s = a.softmax_last();
        for r in 0..4 {
            let sum: f32 = s.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.data()[r * 7..(r + 1) * 7].iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_handles_large_values() {
        let a = NdArray::from_vec(&[1, 3], vec![1000., 1000., 1000.]);
        let s = a.softmax_last();
        for &v in s.data() {
            assert!((v - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn reshape_checks_numel() {
        let a = NdArray::zeros(&[2, 6]);
        let b = a.reshaped(&[3, 4]);
        assert_eq!(b.shape(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_bad_numel_panics() {
        NdArray::zeros(&[2, 6]).reshaped(&[5]);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_of(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_of(&[5]), vec![1]);
        assert_eq!(strides_of(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_shape_rules() {
        assert_eq!(broadcast_shape(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shape(&[2, 1, 4], &[3, 1]), Some(vec![2, 3, 4]));
        assert_eq!(broadcast_shape(&[2, 3], &[4]), None);
    }

    #[test]
    fn text_round_trip_is_bitwise_exact() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = NdArray::randn(&[2, 3, 4], &mut rng);
        let b = NdArray::from_text(&a.to_text()).unwrap();
        assert_eq!(a, b);
        // subnormals / specials survive too
        let odd = NdArray::from_vec(&[4], vec![f32::MIN_POSITIVE / 2.0, -0.0, 1e-38, 3.5]);
        let rt = NdArray::from_text(&odd.to_text()).unwrap();
        assert_eq!(odd.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                   rt.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn text_rejects_malformed() {
        assert!(NdArray::from_text("no separator").is_err());
        assert!(NdArray::from_text("2 2;00000000").is_err()); // count mismatch
        assert!(NdArray::from_text("1;zz").is_err());
    }

    #[test]
    fn bytes_round_trip_is_bitwise_exact() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = NdArray::rand_uniform(&[3, 5], -2.0, 2.0, &mut rng);
        let bytes = a.to_bytes();
        assert_eq!(NdArray::from_bytes(&bytes).unwrap(), a);
        assert!(NdArray::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(NdArray::from_bytes(&extra).is_err());
    }
}
